//! Hierarchical spans: where does the methodology's budget go?
//!
//! The paper's phase-1/phase-2 split exists because cycle-accurate ISS
//! time is the scarce resource; this module gives the flow a structured
//! answer to "where did it go" without giving up the workspace's
//! byte-identity contract. Every span carries **two clocks**:
//!
//! - **Deterministic fields** — a `seq` interval from a per-tree
//!   monotone counter (every enter, exit, leaf and event consumes one
//!   tick), simulated ISS `cycles`, and a `tasks` count. These are
//!   functions of the workload alone: all deterministic span mutations
//!   happen on the serial orchestration thread (task planning before a
//!   fan-out, submission-order merge after it), so the tree is
//!   byte-identical for `WSP_THREADS=1` and `=8`.
//! - **Wall-clock fields** — `start_wall_ms` / `wall_ms` measured
//!   against the tree's epoch. Host noise by definition; the names end
//!   in `wall_ms` precisely so [`crate::report::normalize`] strips
//!   them.
//!
//! Per-worker execution spans (queue wait, busy fraction) cannot be
//! deterministic — the worker count *is* the thread count — so they are
//! marked `wall_only: true`, consume **no** sequence ticks, and are
//! dropped wholesale by report normalization.
//!
//! A [`Spans`] tree is shared by reference (`&Spans`; interior
//! mutability) and serialized with [`Spans::to_json_roots`] into the
//! schema-5 `spans` array of a [`crate::RunReport`]. Serialization
//! rolls exclusive cycle/task contributions up the tree: a span's
//! reported `cycles` is **inclusive** of its children, so the root of a
//! flow tree equals the summed phase metrics (the contract
//! [`validate_span_json`] and the CI smoke test check).

use std::sync::Mutex;
use std::time::Instant;

use crate::json::Json;

/// One recorded event inside a span (a degradation, a gate verdict, a
/// retry) — a point on the deterministic sequence axis.
#[derive(Debug, Clone)]
struct SpanEvent {
    name: String,
    seq: u64,
    attrs: Json,
}

/// One node of the span tree.
#[derive(Debug, Clone)]
struct SpanNode {
    name: String,
    /// True for host-execution spans (per-worker): no deterministic
    /// fields, dropped by report normalization.
    wall_only: bool,
    seq_start: u64,
    /// `None` while the span is open; snapshot serialization closes it
    /// at the current sequence value.
    seq_end: Option<u64>,
    /// Exclusive simulated cycles credited directly to this span;
    /// serialization reports the inclusive rollup.
    cycles: f64,
    /// Exclusive task count credited directly to this span.
    tasks: u64,
    attrs: Vec<(String, Json)>,
    events: Vec<SpanEvent>,
    children: Vec<usize>,
    start_wall_ms: f64,
    wall_ms: Option<f64>,
}

#[derive(Debug, Default)]
struct SpanState {
    nodes: Vec<SpanNode>,
    roots: Vec<usize>,
    stack: Vec<usize>,
    seq: u64,
}

/// A shareable hierarchical span tree (see the module docs for the
/// dual-clock determinism contract).
#[derive(Debug)]
pub struct Spans {
    epoch: Instant,
    inner: Mutex<SpanState>,
}

impl Default for Spans {
    fn default() -> Self {
        Spans::new()
    }
}

impl Spans {
    /// An empty tree whose wall clock starts now.
    pub fn new() -> Self {
        Spans {
            epoch: Instant::now(),
            inner: Mutex::new(SpanState::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SpanState> {
        self.inner.lock().expect("span state poisoned")
    }

    /// Milliseconds since the tree's epoch (the wall axis spans are
    /// stamped on).
    pub fn elapsed_ms(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e3
    }

    /// True when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.lock().nodes.is_empty()
    }

    /// Opens a span as a child of the innermost open span (or as a
    /// root) and returns the guard that closes it on drop.
    pub fn enter(&self, name: impl Into<String>) -> SpanGuard<'_> {
        let start_wall_ms = self.elapsed_ms();
        let mut st = self.lock();
        let id = st.nodes.len();
        let seq_start = st.seq;
        st.seq += 1;
        st.nodes.push(SpanNode {
            name: name.into(),
            wall_only: false,
            seq_start,
            seq_end: None,
            cycles: 0.0,
            tasks: 0,
            attrs: Vec::new(),
            events: Vec::new(),
            children: Vec::new(),
            start_wall_ms,
            wall_ms: None,
        });
        match st.stack.last().copied() {
            Some(parent) => st.nodes[parent].children.push(id),
            None => st.roots.push(id),
        }
        st.stack.push(id);
        SpanGuard {
            spans: self,
            id,
            closed: false,
        }
    }

    fn exit(&self, id: usize) {
        let wall = self.elapsed_ms();
        let mut st = self.lock();
        // Close any span the caller forgot to drop first, then `id`
        // itself; a guard dropped twice is a no-op.
        while let Some(top) = st.stack.pop() {
            let seq_end = st.seq;
            st.seq += 1;
            let node = &mut st.nodes[top];
            node.seq_end = Some(seq_end);
            node.wall_ms = Some(wall - node.start_wall_ms);
            if top == id {
                break;
            }
        }
    }

    /// Records an already-measured unit of work as a **closed** child
    /// of the innermost open span: the shape every per-kernel ISS
    /// measurement takes when the serial merge publishes results in
    /// submission order.
    pub fn leaf(&self, name: impl Into<String>, cycles: f64, tasks: u64, wall_ms: Option<f64>) {
        self.leaf_with(name, cycles, tasks, wall_ms, &[]);
    }

    /// [`Spans::leaf`] with deterministic attributes attached — e.g.
    /// `fidelity: "fast" | "accurate"` recording which execution engine
    /// produced the measurement. Attributes survive normalization, so
    /// they must not carry host-timing values.
    pub fn leaf_with(
        &self,
        name: impl Into<String>,
        cycles: f64,
        tasks: u64,
        wall_ms: Option<f64>,
        attrs: &[(&str, Json)],
    ) {
        let now = self.elapsed_ms();
        let mut st = self.lock();
        let id = st.nodes.len();
        let seq_start = st.seq;
        st.seq += 2;
        st.nodes.push(SpanNode {
            name: name.into(),
            wall_only: false,
            seq_start,
            seq_end: Some(seq_start + 1),
            cycles,
            tasks,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            events: Vec::new(),
            children: Vec::new(),
            start_wall_ms: (now - wall_ms.unwrap_or(0.0)).max(0.0),
            wall_ms,
        });
        match st.stack.last().copied() {
            Some(parent) => st.nodes[parent].children.push(id),
            None => st.roots.push(id),
        }
    }

    /// Records a host-execution span (`wall_only: true`) under the
    /// innermost open span. Consumes no sequence ticks; dropped by
    /// report normalization. `start_wall_ms` is on this tree's epoch
    /// (see [`Spans::elapsed_ms`]).
    pub fn wall_span(
        &self,
        name: impl Into<String>,
        start_wall_ms: f64,
        wall_ms: f64,
        attrs: &[(&str, Json)],
    ) {
        let mut st = self.lock();
        let id = st.nodes.len();
        st.nodes.push(SpanNode {
            name: name.into(),
            wall_only: true,
            seq_start: 0,
            seq_end: Some(0),
            cycles: 0.0,
            tasks: 0,
            attrs: attrs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
            events: Vec::new(),
            children: Vec::new(),
            start_wall_ms,
            wall_ms: Some(wall_ms),
        });
        match st.stack.last().copied() {
            Some(parent) => st.nodes[parent].children.push(id),
            None => st.roots.push(id),
        }
    }

    /// Credits simulated cycles to the innermost open span.
    pub fn add_cycles(&self, cycles: f64) {
        let mut st = self.lock();
        if let Some(&id) = st.stack.last() {
            st.nodes[id].cycles += cycles;
        }
    }

    /// Credits completed tasks to the innermost open span.
    pub fn add_tasks(&self, tasks: u64) {
        let mut st = self.lock();
        if let Some(&id) = st.stack.last() {
            st.nodes[id].tasks += tasks;
        }
    }

    /// Sets (or replaces) a deterministic attribute on the innermost
    /// open span.
    pub fn set_attr(&self, key: &str, value: impl Into<Json>) {
        let mut st = self.lock();
        if let Some(&id) = st.stack.last() {
            let attrs = &mut st.nodes[id].attrs;
            let value = value.into();
            match attrs.iter_mut().find(|(k, _)| k == key) {
                Some(slot) => slot.1 = value,
                None => attrs.push((key.to_owned(), value)),
            }
        }
    }

    /// Records a point event (degradation, gate verdict, retry) on the
    /// innermost open span. `attrs` should be a JSON object.
    pub fn event(&self, name: impl Into<String>, attrs: Json) {
        let mut st = self.lock();
        let seq = st.seq;
        st.seq += 1;
        if let Some(&id) = st.stack.last() {
            st.nodes[id].events.push(SpanEvent {
                name: name.into(),
                seq,
                attrs,
            });
        }
    }

    /// Serializes the root spans with inclusive cycle/task rollups.
    /// Open spans are closed at the snapshot's sequence value without
    /// consuming ticks, so a mid-flight snapshot stays well-formed.
    pub fn to_json_roots(&self) -> Vec<Json> {
        let st = self.lock();
        st.roots.iter().map(|&r| node_json(&st, r)).collect()
    }

    /// Inclusive simulated cycles of every root summed — the figure the
    /// CI smoke check compares against the flow's phase counters.
    pub fn total_cycles(&self) -> f64 {
        let st = self.lock();
        st.roots.iter().map(|&r| inclusive(&st, r).0).sum()
    }
}

fn inclusive(st: &SpanState, id: usize) -> (f64, u64) {
    let node = &st.nodes[id];
    let mut cycles = node.cycles;
    let mut tasks = node.tasks;
    for &c in &node.children {
        if st.nodes[c].wall_only {
            continue;
        }
        let (cc, ct) = inclusive(st, c);
        cycles += cc;
        tasks += ct;
    }
    (cycles, tasks)
}

fn node_json(st: &SpanState, id: usize) -> Json {
    let node = &st.nodes[id];
    if node.wall_only {
        let mut obj = Json::obj()
            .set("name", node.name.as_str())
            .set("wall_only", true);
        if !node.attrs.is_empty() {
            let mut attrs = Json::obj();
            for (k, v) in &node.attrs {
                attrs = attrs.set(k, v.clone());
            }
            obj = obj.set("attrs", attrs);
        }
        obj = obj.set("start_wall_ms", node.start_wall_ms);
        if let Some(w) = node.wall_ms {
            obj = obj.set("wall_ms", w);
        }
        return obj;
    }
    let (cycles, tasks) = inclusive(st, id);
    let mut obj = Json::obj()
        .set("name", node.name.as_str())
        .set("seq_start", node.seq_start)
        .set("seq_end", node.seq_end.unwrap_or(st.seq))
        .set("cycles", cycles)
        .set("tasks", tasks);
    if !node.attrs.is_empty() {
        let mut attrs = Json::obj();
        for (k, v) in &node.attrs {
            attrs = attrs.set(k, v.clone());
        }
        obj = obj.set("attrs", attrs);
    }
    if !node.events.is_empty() {
        let events: Vec<Json> = node
            .events
            .iter()
            .map(|e| {
                let mut ev = Json::obj().set("name", e.name.as_str()).set("seq", e.seq);
                if !matches!(&e.attrs, Json::Obj(pairs) if pairs.is_empty()) {
                    ev = ev.set("attrs", e.attrs.clone());
                }
                ev
            })
            .collect();
        obj = obj.set("events", events);
    }
    obj = obj.set("start_wall_ms", node.start_wall_ms);
    if let Some(w) = node.wall_ms {
        obj = obj.set("wall_ms", w);
    }
    if !node.children.is_empty() {
        let children: Vec<Json> = node.children.iter().map(|&c| node_json(st, c)).collect();
        obj = obj.set("children", children);
    }
    obj
}

/// Closes its span on drop (stamping `seq_end` and `wall_ms`). Spans
/// still open *inside* it are closed first, so a forgotten inner guard
/// cannot corrupt the tree shape.
#[must_use = "dropping the guard immediately closes the span"]
pub struct SpanGuard<'a> {
    spans: &'a Spans,
    id: usize,
    closed: bool,
}

impl SpanGuard<'_> {
    /// Closes the span now instead of at end of scope.
    pub fn end(mut self) {
        self.close();
    }

    fn close(&mut self) {
        if !self.closed {
            self.closed = true;
            self.spans.exit(self.id);
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.close();
    }
}

// ---------------------------------------------------------------------
// Serialized-tree helpers (shared by report validation and the
// `xr32-trace spans`/`chrome` subcommands).
// ---------------------------------------------------------------------

/// Checks one serialized span (as found in a schema-5 `spans` array)
/// for well-formedness: a non-empty string name; for deterministic
/// spans a strictly increasing `seq_start < seq_end` interval, children
/// strictly nested inside the parent and mutually ordered, events
/// inside the interval, and inclusive `cycles`/`tasks` no smaller than
/// the children's sum; numeric wall fields when present.
pub fn validate_span_json(span: &Json) -> Result<(), String> {
    if !matches!(span, Json::Obj(_)) {
        return Err("span must be an object".into());
    }
    let name = span
        .get("name")
        .and_then(Json::as_str)
        .ok_or("span missing string `name`")?;
    if name.is_empty() {
        return Err("span has empty name".into());
    }
    for key in ["start_wall_ms", "wall_ms"] {
        if let Some(v) = span.get(key) {
            if v.as_f64().is_none() {
                return Err(format!("span `{name}`: {key} must be a number"));
            }
        }
    }
    if span.get("wall_only") == Some(&Json::Bool(true)) {
        return Ok(()); // host-execution span: no deterministic fields.
    }
    let (start, end) = span_interval(span)
        .ok_or_else(|| format!("span `{name}`: missing numeric seq_start/seq_end"))?;
    if start >= end {
        return Err(format!(
            "span `{name}`: seq interval [{start}, {end}] is not increasing"
        ));
    }
    let cycles = span
        .get("cycles")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("span `{name}`: missing numeric cycles"))?;
    let tasks = span
        .get("tasks")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("span `{name}`: missing numeric tasks"))?;
    if cycles < 0.0 || tasks < 0.0 {
        return Err(format!("span `{name}`: negative cycles/tasks"));
    }
    if let Some(events) = span.get("events") {
        let arr = events
            .as_arr()
            .ok_or_else(|| format!("span `{name}`: events must be an array"))?;
        for ev in arr {
            let seq = ev
                .get("seq")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("span `{name}`: event missing numeric seq"))?;
            if ev.get("name").and_then(Json::as_str).is_none() {
                return Err(format!("span `{name}`: event missing string name"));
            }
            if seq <= start || seq >= end {
                return Err(format!(
                    "span `{name}`: event seq {seq} outside ({start}, {end})"
                ));
            }
        }
    }
    let mut child_cycles = 0.0;
    let mut prev_end = start;
    if let Some(children) = span.get("children") {
        let arr = children
            .as_arr()
            .ok_or_else(|| format!("span `{name}`: children must be an array"))?;
        for child in arr {
            validate_span_json(child)?;
            if child.get("wall_only") == Some(&Json::Bool(true)) {
                continue;
            }
            let (cs, ce) = span_interval(child).expect("validated child has interval");
            if cs <= prev_end || ce >= end {
                return Err(format!(
                    "span `{name}`: child interval [{cs}, {ce}] not nested after {prev_end} \
                     and inside [{start}, {end}]"
                ));
            }
            prev_end = ce;
            child_cycles += child.get("cycles").and_then(Json::as_f64).unwrap_or(0.0);
        }
    }
    if child_cycles > cycles * (1.0 + 1e-9) + 1e-6 {
        return Err(format!(
            "span `{name}`: inclusive cycles {cycles} below children's sum {child_cycles}"
        ));
    }
    Ok(())
}

fn span_interval(span: &Json) -> Option<(f64, f64)> {
    Some((
        span.get("seq_start").and_then(Json::as_f64)?,
        span.get("seq_end").and_then(Json::as_f64)?,
    ))
}

/// Renders a serialized span forest as an indented text tree (the
/// `xr32-trace spans` output).
pub fn render_tree(spans: &[Json]) -> String {
    let mut out = String::new();
    for span in spans {
        render_node(span, 0, &mut out);
    }
    out
}

fn render_node(span: &Json, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
    if span.get("wall_only") == Some(&Json::Bool(true)) {
        out.push_str(&format!("{indent}{name} [wall-only"));
        if let Some(w) = span.get("wall_ms").and_then(Json::as_f64) {
            out.push_str(&format!(" {w:.2}ms"));
        }
        out.push(']');
    } else {
        let cycles = span.get("cycles").and_then(Json::as_f64).unwrap_or(0.0);
        let tasks = span.get("tasks").and_then(Json::as_f64).unwrap_or(0.0);
        out.push_str(&format!("{indent}{name}  cycles={cycles} tasks={tasks}"));
        if let Some(w) = span.get("wall_ms").and_then(Json::as_f64) {
            out.push_str(&format!(" wall={w:.2}ms"));
        }
        if span_fidelity(span) == Some("fast") {
            out.push_str(" [fast]");
        }
    }
    if let Some(attrs) = span.get("attrs") {
        out.push_str(&format!("  {}", attrs.to_string_compact()));
    }
    out.push('\n');
    if let Some(events) = span.get("events").and_then(Json::as_arr) {
        for ev in events {
            let ev_name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
            out.push_str(&format!("{indent}  ! {ev_name}"));
            if let Some(attrs) = ev.get("attrs") {
                out.push_str(&format!("  {}", attrs.to_string_compact()));
            }
            out.push('\n');
        }
    }
    if let Some(children) = span.get("children").and_then(Json::as_arr) {
        for child in children {
            render_node(child, depth + 1, out);
        }
    }
}

/// Converts a serialized span forest into Chrome trace-event JSON
/// (`chrome://tracing` / Perfetto's legacy loader). Spans with wall
/// timestamps become complete (`ph:"X"`) events on their wall
/// interval; spans without become 1-tick events on the deterministic
/// sequence axis. Worker (`wall_only`) spans land on separate tracks
/// (`tid` ≥ 2); events become instants (`ph:"i"`).
pub fn to_chrome_trace(spans: &[Json]) -> Json {
    let mut events = Vec::new();
    for span in spans {
        chrome_node(span, &mut events);
    }
    Json::obj()
        .set("traceEvents", events)
        .set("displayTimeUnit", "ms")
}

/// The span's `fidelity` attribute, when present.
fn span_fidelity(span: &Json) -> Option<&str> {
    span.get("attrs")
        .and_then(|a| a.get("fidelity"))
        .and_then(Json::as_str)
}

fn chrome_node(span: &Json, out: &mut Vec<Json>) {
    let name = span.get("name").and_then(Json::as_str).unwrap_or("?");
    let wall_only = span.get("wall_only") == Some(&Json::Bool(true));
    let tid: u64 = if wall_only {
        2 + span
            .get("attrs")
            .and_then(|a| a.get("worker"))
            .and_then(Json::as_f64)
            .unwrap_or(0.0) as u64
    } else {
        1
    };
    // Wall interval when stamped, else the deterministic seq interval
    // (1 tick = 1 µs) so cycle-only trees still render.
    let (ts_us, dur_us) = match (
        span.get("start_wall_ms").and_then(Json::as_f64),
        span.get("wall_ms").and_then(Json::as_f64),
    ) {
        (Some(s), Some(d)) => (s * 1e3, (d * 1e3).max(0.01)),
        _ => match span_interval(span) {
            Some((s, e)) => (s, (e - s).max(0.01)),
            None => (0.0, 0.01),
        },
    };
    let mut args = Json::obj();
    for key in ["cycles", "tasks"] {
        if let Some(v) = span.get(key) {
            args = args.set(key, v.clone());
        }
    }
    if let Some(Json::Obj(pairs)) = span.get("attrs") {
        for (k, v) in pairs {
            args = args.set(k, v.clone());
        }
    }
    let mut event = Json::obj()
        .set("name", name)
        .set("ph", "X")
        .set("pid", 1u64)
        .set("tid", tid)
        .set("ts", ts_us)
        .set("dur", dur_us)
        .set("args", args);
    // Fast-path tracks render in a distinct color so dual-fidelity
    // timelines separate at a glance ("cname" is a Chrome trace-viewer
    // reserved color name).
    if span_fidelity(span) == Some("fast") {
        event = event.set("cname", "good");
    }
    out.push(event);
    if let Some(evs) = span.get("events").and_then(Json::as_arr) {
        for ev in evs {
            let ev_name = ev.get("name").and_then(Json::as_str).unwrap_or("?");
            let mut inst = Json::obj()
                .set("name", format!("{name}:{ev_name}"))
                .set("ph", "i")
                .set("pid", 1u64)
                .set("tid", tid)
                .set("ts", ts_us)
                .set("s", "t");
            if let Some(attrs) = ev.get("attrs") {
                inst = inst.set("args", attrs.clone());
            }
            out.push(inst);
        }
    }
    if let Some(children) = span.get("children").and_then(Json::as_arr) {
        for child in children {
            chrome_node(child, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enter_exit_builds_nested_intervals() {
        let spans = Spans::new();
        {
            let _flow = spans.enter("flow");
            {
                let _p1 = spans.enter("phase1");
                spans.leaf("mpn_add_n.r4", 100.0, 3, Some(0.5));
                spans.leaf("mpn_sub_n.r4", 50.0, 3, None);
            }
            spans.event("degradation", Json::obj().set("action", "bad-fit"));
        }
        let roots = spans.to_json_roots();
        assert_eq!(roots.len(), 1);
        validate_span_json(&roots[0]).unwrap();
        // Inclusive rollup: flow == phase1 == 150 cycles, 6 tasks.
        assert_eq!(roots[0].get("cycles").and_then(Json::as_f64), Some(150.0));
        assert_eq!(roots[0].get("tasks").and_then(Json::as_f64), Some(6.0));
        assert_eq!(spans.total_cycles(), 150.0);
        let p1 = &roots[0].get("children").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(p1.get("cycles").and_then(Json::as_f64), Some(150.0));
        let ev = &roots[0].get("events").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(ev.get("name").and_then(Json::as_str), Some("degradation"));
    }

    #[test]
    fn wall_spans_carry_no_deterministic_fields() {
        let spans = Spans::new();
        {
            let _p = spans.enter("phase");
            spans.wall_span(
                "xpar.worker-0",
                0.0,
                1.25,
                &[
                    ("worker", Json::from(0u64)),
                    ("busy_fraction", Json::from(0.8)),
                ],
            );
        }
        let roots = spans.to_json_roots();
        validate_span_json(&roots[0]).unwrap();
        let w = &roots[0].get("children").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(w.get("wall_only"), Some(&Json::Bool(true)));
        assert!(w.get("seq_start").is_none());
        assert!(w.get("cycles").is_none());
        // Wall-only children do not pollute the parent rollup.
        assert_eq!(roots[0].get("cycles").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn forgotten_inner_guard_still_yields_wellformed_tree() {
        let spans = Spans::new();
        let outer = spans.enter("outer");
        let _inner = spans.enter("inner");
        outer.end(); // closes inner first, then outer
        let roots = spans.to_json_roots();
        assert_eq!(roots.len(), 1);
        validate_span_json(&roots[0]).unwrap();
    }

    #[test]
    fn snapshot_of_open_span_is_wellformed() {
        let spans = Spans::new();
        let _g = spans.enter("open");
        spans.leaf("done", 10.0, 1, None);
        let roots = spans.to_json_roots();
        validate_span_json(&roots[0]).unwrap();
    }

    #[test]
    fn validator_rejects_overlapping_siblings() {
        let bad = crate::json::parse(
            r#"{"name":"p","seq_start":0,"seq_end":9,"cycles":0,"tasks":0,"children":[
                {"name":"a","seq_start":1,"seq_end":5,"cycles":0,"tasks":0},
                {"name":"b","seq_start":4,"seq_end":8,"cycles":0,"tasks":0}]}"#,
        )
        .unwrap();
        assert!(validate_span_json(&bad).unwrap_err().contains("nested"));
    }

    #[test]
    fn validator_rejects_cycles_below_children() {
        let bad = crate::json::parse(
            r#"{"name":"p","seq_start":0,"seq_end":9,"cycles":5,"tasks":0,"children":[
                {"name":"a","seq_start":1,"seq_end":2,"cycles":50,"tasks":0}]}"#,
        )
        .unwrap();
        assert!(validate_span_json(&bad).unwrap_err().contains("below"));
    }

    #[test]
    fn tree_and_chrome_render() {
        let spans = Spans::new();
        {
            let _f = spans.enter("flow");
            spans.leaf("k", 10.0, 1, Some(0.25));
            spans.wall_span("xpar.worker-1", 0.1, 0.2, &[("worker", Json::from(1u64))]);
        }
        let roots = spans.to_json_roots();
        let text = render_tree(&roots);
        assert!(text.contains("flow"));
        assert!(text.contains("cycles=10"));
        assert!(text.contains("wall-only"));
        let chrome = to_chrome_trace(&roots);
        let evs = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(evs.len(), 3);
        assert!(evs.iter().all(|e| e.get("ph").is_some()));
        // The worker span lands on its own track.
        assert_eq!(evs[2].get("tid").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn fidelity_attr_marks_renders_and_colors_chrome_tracks() {
        let spans = Spans::new();
        {
            let _f = spans.enter("flow");
            spans.leaf_with(
                "verify.k",
                0.0,
                4,
                None,
                &[("fidelity", Json::from("fast"))],
            );
            spans.leaf_with(
                "measure.k",
                10.0,
                1,
                None,
                &[("fidelity", Json::from("accurate"))],
            );
        }
        let roots = spans.to_json_roots();
        validate_span_json(&roots[0]).unwrap();
        let text = render_tree(&roots);
        assert!(text.contains("verify.k  cycles=0 tasks=4 [fast]"), "{text}");
        assert!(text.contains(r#"{"fidelity":"fast"}"#), "{text}");
        assert!(
            !text.contains("measure.k  cycles=10 tasks=1 [fast]"),
            "{text}"
        );
        let chrome = to_chrome_trace(&roots);
        let evs = chrome.get("traceEvents").and_then(Json::as_arr).unwrap();
        let fast = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("verify.k"))
            .unwrap();
        assert_eq!(fast.get("cname").and_then(Json::as_str), Some("good"));
        let slow = evs
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("measure.k"))
            .unwrap();
        assert!(slow.get("cname").is_none());
        assert_eq!(
            slow.get("args").and_then(|a| a.get("fidelity")),
            Some(&Json::from("accurate"))
        );
    }
}
