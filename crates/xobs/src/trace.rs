//! ISS event tracing: the [`TraceSink`] trait and in-memory sinks.
//!
//! The XR32 executor offers hook points (instruction retire, interlock
//! stalls, taken branches, cache accesses, custom-instruction dispatch,
//! call/return) behind an `Option<&mut dyn TraceSink>`: with no sink
//! attached the hot interpreter loop pays one predictable branch per
//! hook site, so tracing is zero-overhead-when-disabled in the sense
//! that matters (< 2 % on kernel throughput, pinned by the bench
//! harness).
//!
//! Events borrow label names from the running program
//! ([`TraceEvent`]); sinks that outlive the run own their copies
//! ([`OwnedEvent`]). The streaming binary format lives in
//! [`crate::bintrace`]; call-tree reconstruction in [`crate::attrib`].

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Which cache a [`TraceEvent::Cache`] access went through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheSide {
    /// Instruction fetch.
    Instruction,
    /// Data load/store.
    Data,
}

/// One simulator event. `cycle` stamps are the core's cumulative cycle
/// counter at the instant the event was produced, so a sink observing a
/// whole co-simulation sees a single non-decreasing timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent<'a> {
    /// An instruction finished executing. `pc` is the instruction
    /// index; `cycle` the counter *after* the instruction's cost.
    Retire {
        /// Instruction index.
        pc: u32,
        /// Cycle counter after retirement.
        cycle: u64,
    },
    /// A source-operand interlock stalled issue (load-use delay or
    /// multiplier latency).
    Stall {
        /// Stalled instruction index.
        pc: u32,
        /// Cycles lost to the stall.
        cycles: u32,
        /// Cycle counter after the stall resolved.
        cycle: u64,
    },
    /// A taken branch/jump/call/return paid the pipeline refill
    /// penalty.
    TakenBranch {
        /// Branch instruction index.
        pc: u32,
        /// Destination instruction index.
        target: u32,
        /// Refill cycles charged.
        penalty: u32,
        /// Cycle counter after the penalty.
        cycle: u64,
    },
    /// A cache access. Misses allocate (fill) the line, so `hit ==
    /// false` is also the fill event.
    Cache {
        /// Instruction or data side.
        side: CacheSide,
        /// Byte address accessed.
        addr: u64,
        /// Whether the access hit.
        hit: bool,
        /// Cycle counter after any miss penalty.
        cycle: u64,
    },
    /// A custom (TIE) instruction was dispatched to its datapath.
    Custom {
        /// Instruction index.
        pc: u32,
        /// The custom instruction's registered name.
        name: &'a str,
        /// Its registered latency.
        latency: u32,
        /// Cycle counter at dispatch.
        cycle: u64,
    },
    /// Control entered a function: an executed `call`, or the synthetic
    /// frame the executor opens for the run entry point.
    Call {
        /// Call-site instruction index (entry frames use the entry pc).
        pc: u32,
        /// Callee label (`<anon>` for unlabeled targets).
        callee: &'a str,
        /// Cycle counter at entry.
        cycle: u64,
    },
    /// Control left a function: an executed `ret`, or the synthetic
    /// close of the run-entry frame at halt.
    Ret {
        /// Return instruction index.
        pc: u32,
        /// Cycle counter at exit.
        cycle: u64,
    },
}

impl TraceEvent<'_> {
    /// The event's cycle stamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            TraceEvent::Retire { cycle, .. }
            | TraceEvent::Stall { cycle, .. }
            | TraceEvent::TakenBranch { cycle, .. }
            | TraceEvent::Cache { cycle, .. }
            | TraceEvent::Custom { cycle, .. }
            | TraceEvent::Call { cycle, .. }
            | TraceEvent::Ret { cycle, .. } => cycle,
        }
    }

    /// An owning copy of the event.
    pub fn to_owned_event(&self) -> OwnedEvent {
        match *self {
            TraceEvent::Retire { pc, cycle } => OwnedEvent::Retire { pc, cycle },
            TraceEvent::Stall { pc, cycles, cycle } => OwnedEvent::Stall { pc, cycles, cycle },
            TraceEvent::TakenBranch {
                pc,
                target,
                penalty,
                cycle,
            } => OwnedEvent::TakenBranch {
                pc,
                target,
                penalty,
                cycle,
            },
            TraceEvent::Cache {
                side,
                addr,
                hit,
                cycle,
            } => OwnedEvent::Cache {
                side,
                addr,
                hit,
                cycle,
            },
            TraceEvent::Custom {
                pc,
                name,
                latency,
                cycle,
            } => OwnedEvent::Custom {
                pc,
                name: name.to_owned(),
                latency,
                cycle,
            },
            TraceEvent::Call { pc, callee, cycle } => OwnedEvent::Call {
                pc,
                callee: callee.to_owned(),
                cycle,
            },
            TraceEvent::Ret { pc, cycle } => OwnedEvent::Ret { pc, cycle },
        }
    }
}

/// An owning mirror of [`TraceEvent`] for sinks and trace files.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedEvent {
    /// See [`TraceEvent::Retire`].
    Retire {
        /// Instruction index.
        pc: u32,
        /// Cycle stamp.
        cycle: u64,
    },
    /// See [`TraceEvent::Stall`].
    Stall {
        /// Instruction index.
        pc: u32,
        /// Cycles lost.
        cycles: u32,
        /// Cycle stamp.
        cycle: u64,
    },
    /// See [`TraceEvent::TakenBranch`].
    TakenBranch {
        /// Branch instruction index.
        pc: u32,
        /// Destination instruction index.
        target: u32,
        /// Refill cycles charged.
        penalty: u32,
        /// Cycle stamp.
        cycle: u64,
    },
    /// See [`TraceEvent::Cache`].
    Cache {
        /// Instruction or data side.
        side: CacheSide,
        /// Byte address accessed.
        addr: u64,
        /// Whether the access hit.
        hit: bool,
        /// Cycle stamp.
        cycle: u64,
    },
    /// See [`TraceEvent::Custom`].
    Custom {
        /// Instruction index.
        pc: u32,
        /// Custom instruction name.
        name: String,
        /// Registered latency.
        latency: u32,
        /// Cycle stamp.
        cycle: u64,
    },
    /// See [`TraceEvent::Call`].
    Call {
        /// Call-site instruction index.
        pc: u32,
        /// Callee label.
        callee: String,
        /// Cycle stamp.
        cycle: u64,
    },
    /// See [`TraceEvent::Ret`].
    Ret {
        /// Return instruction index.
        pc: u32,
        /// Cycle stamp.
        cycle: u64,
    },
}

impl OwnedEvent {
    /// Borrows the event back as a [`TraceEvent`] (for replay into any
    /// sink).
    pub fn as_event(&self) -> TraceEvent<'_> {
        match self {
            OwnedEvent::Retire { pc, cycle } => TraceEvent::Retire {
                pc: *pc,
                cycle: *cycle,
            },
            OwnedEvent::Stall { pc, cycles, cycle } => TraceEvent::Stall {
                pc: *pc,
                cycles: *cycles,
                cycle: *cycle,
            },
            OwnedEvent::TakenBranch {
                pc,
                target,
                penalty,
                cycle,
            } => TraceEvent::TakenBranch {
                pc: *pc,
                target: *target,
                penalty: *penalty,
                cycle: *cycle,
            },
            OwnedEvent::Cache {
                side,
                addr,
                hit,
                cycle,
            } => TraceEvent::Cache {
                side: *side,
                addr: *addr,
                hit: *hit,
                cycle: *cycle,
            },
            OwnedEvent::Custom {
                pc,
                name,
                latency,
                cycle,
            } => TraceEvent::Custom {
                pc: *pc,
                name,
                latency: *latency,
                cycle: *cycle,
            },
            OwnedEvent::Call { pc, callee, cycle } => TraceEvent::Call {
                pc: *pc,
                callee,
                cycle: *cycle,
            },
            OwnedEvent::Ret { pc, cycle } => TraceEvent::Ret {
                pc: *pc,
                cycle: *cycle,
            },
        }
    }
}

/// Receiver of simulator events.
///
/// Implementations must be cheap: the executor calls
/// [`TraceSink::on_event`] from the interpreter hot loop whenever a
/// sink is attached.
pub trait TraceSink {
    /// Handles one event.
    fn on_event(&mut self, ev: &TraceEvent<'_>);

    /// Flushes any buffered output (binary writers). Default: no-op.
    fn flush(&mut self) {}
}

/// A sink that records every event in memory (tests, small traces).
#[derive(Debug, Default)]
pub struct VecSink {
    events: Vec<OwnedEvent>,
}

impl VecSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded events, in arrival order.
    pub fn events(&self) -> &[OwnedEvent] {
        &self.events
    }

    /// Consumes the sink, returning the events.
    pub fn into_events(self) -> Vec<OwnedEvent> {
        self.events
    }
}

impl TraceSink for VecSink {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        self.events.push(ev.to_owned_event());
    }
}

/// A bounded ring buffer keeping the most recent events — the
/// "flight recorder" for inspecting the tail of a long simulation
/// without unbounded memory.
#[derive(Debug)]
pub struct RingSink {
    buf: Vec<OwnedEvent>,
    capacity: usize,
    next: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a ring holding up to `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        RingSink {
            buf: Vec::with_capacity(capacity),
            capacity,
            next: 0,
            dropped: 0,
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted to make room (total seen = `len() + dropped()`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<&OwnedEvent> {
        let (newer, older) = self.buf.split_at(self.next);
        older.iter().chain(newer.iter()).collect()
    }
}

impl TraceSink for RingSink {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        let owned = ev.to_owned_event();
        if self.buf.len() < self.capacity {
            self.buf.push(owned);
        } else {
            self.buf[self.next] = owned;
            self.next = (self.next + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Fans one event stream out to several sinks.
#[derive(Default)]
pub struct TeeSink<'s> {
    sinks: Vec<&'s mut dyn TraceSink>,
}

impl<'s> TeeSink<'s> {
    /// Builds a tee over the given sinks.
    pub fn new(sinks: Vec<&'s mut dyn TraceSink>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink<'_> {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        for s in &mut self.sinks {
            s.on_event(ev);
        }
    }

    fn flush(&mut self) {
        for s in &mut self.sinks {
            s.flush();
        }
    }
}

/// A shared handle to a sink, for components that take ownership of
/// their sink (e.g. `secproc::IssMpn::set_trace_sink`) while the caller
/// keeps access to the accumulated state.
///
/// `Shared` is `Rc`-based and therefore confined to one thread: it is
/// deliberately `!Send`, so handing a traced component to an
/// `xpar::Pool` worker is a compile error rather than a data race. Use
/// [`SyncShared`] when the sink must cross threads.
///
/// ```
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use xobs::trace::{Shared, TraceSink, TraceEvent, VecSink};
///
/// let inner = Rc::new(RefCell::new(VecSink::new()));
/// let mut handle: Box<dyn TraceSink> = Box::new(Shared::new(inner.clone()));
/// handle.on_event(&TraceEvent::Retire { pc: 0, cycle: 1 });
/// assert_eq!(inner.borrow().events().len(), 1);
/// ```
///
/// The thread-confinement is compiler-enforced:
///
/// ```compile_fail
/// use std::cell::RefCell;
/// use std::rc::Rc;
/// use xobs::trace::{Shared, VecSink};
///
/// let handle = Shared::new(Rc::new(RefCell::new(VecSink::new())));
/// std::thread::spawn(move || drop(handle)); // `Rc` is !Send
/// ```
pub struct Shared<S: TraceSink>(Rc<RefCell<S>>);

impl<S: TraceSink> Shared<S> {
    /// Wraps a shared sink.
    pub fn new(inner: Rc<RefCell<S>>) -> Self {
        Shared(inner)
    }
}

impl<S: TraceSink> TraceSink for Shared<S> {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        self.0.borrow_mut().on_event(ev);
    }

    fn flush(&mut self) {
        self.0.borrow_mut().flush();
    }
}

/// The thread-safe counterpart of [`Shared`]: an `Arc<Mutex<_>>`-backed
/// handle that is `Send + Sync` whenever the inner sink is `Send`, so
/// one sink can serve components running on different `xpar::Pool`
/// workers. Events from different threads interleave at event
/// granularity (the mutex is held per event, never across events).
///
/// Prefer [`Shared`] inside one thread — it skips the lock.
///
/// ```
/// use std::sync::{Arc, Mutex};
/// use xobs::trace::{SyncShared, TraceSink, TraceEvent, VecSink};
///
/// let inner = Arc::new(Mutex::new(VecSink::new()));
/// let mut handle: Box<dyn TraceSink> = Box::new(SyncShared::new(inner.clone()));
/// handle.on_event(&TraceEvent::Retire { pc: 0, cycle: 1 });
/// assert_eq!(inner.lock().unwrap().events().len(), 1);
/// ```
pub struct SyncShared<S: TraceSink>(Arc<Mutex<S>>);

impl<S: TraceSink> SyncShared<S> {
    /// Wraps a shared sink.
    pub fn new(inner: Arc<Mutex<S>>) -> Self {
        SyncShared(inner)
    }
}

impl<S: TraceSink> Clone for SyncShared<S> {
    fn clone(&self) -> Self {
        SyncShared(Arc::clone(&self.0))
    }
}

impl<S: TraceSink> TraceSink for SyncShared<S> {
    fn on_event(&mut self, ev: &TraceEvent<'_>) {
        self.0.lock().expect("trace sink poisoned").on_event(ev);
    }

    fn flush(&mut self) {
        self.0.lock().expect("trace sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn retire(pc: u32, cycle: u64) -> TraceEvent<'static> {
        TraceEvent::Retire { pc, cycle }
    }

    #[test]
    fn owned_round_trip_preserves_event() {
        let call = TraceEvent::Call {
            pc: 3,
            callee: "feistel",
            cycle: 99,
        };
        assert_eq!(call.to_owned_event().as_event(), call);
        let cache = TraceEvent::Cache {
            side: CacheSide::Data,
            addr: 0x104,
            hit: false,
            cycle: 7,
        };
        assert_eq!(cache.to_owned_event().as_event(), cache);
    }

    #[test]
    fn vec_sink_records_in_order() {
        let mut s = VecSink::new();
        s.on_event(&retire(0, 1));
        s.on_event(&retire(1, 2));
        assert_eq!(s.events().len(), 2);
        assert_eq!(s.events()[1].as_event().cycle(), 2);
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let mut r = RingSink::new(3);
        for i in 0..5u64 {
            r.on_event(&retire(i as u32, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let cycles: Vec<u64> = r.events().iter().map(|e| e.as_event().cycle()).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn tee_duplicates_events() {
        let mut a = VecSink::new();
        let mut b = VecSink::new();
        {
            let mut tee = TeeSink::new(vec![&mut a, &mut b]);
            tee.on_event(&retire(0, 5));
        }
        assert_eq!(a.events().len(), 1);
        assert_eq!(b.events().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_ring_rejected() {
        let _ = RingSink::new(0);
    }

    #[test]
    fn sync_shared_ring_survives_concurrent_writers() {
        // Four threads hammer one flight recorder through SyncShared.
        // Every event must land exactly once: retained + dropped events
        // account for all sends, and the ring invariants hold.
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        const CAPACITY: usize = 64;
        let ring = Arc::new(Mutex::new(RingSink::new(CAPACITY)));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let mut handle = SyncShared::new(Arc::clone(&ring));
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        handle.on_event(&TraceEvent::Retire {
                            pc: t as u32,
                            cycle: t * PER_THREAD + i,
                        });
                    }
                    handle.flush();
                });
            }
        });
        let ring = ring.lock().unwrap();
        assert_eq!(ring.len(), CAPACITY, "full ring retains capacity events");
        assert_eq!(
            ring.len() as u64 + ring.dropped(),
            THREADS * PER_THREAD,
            "no event lost or double-counted under contention"
        );
        // Each retained event is one that some thread actually sent.
        for ev in ring.events() {
            let TraceEvent::Retire { pc, cycle } = ev.as_event() else {
                panic!("only retire events were sent");
            };
            assert!((pc as u64) < THREADS);
            assert!(cycle >= pc as u64 * PER_THREAD);
            assert!(cycle < (pc as u64 + 1) * PER_THREAD);
        }
    }
}
