//! xobs: observability for the wireless security processing platform.
//!
//! The paper's whole methodology is measurement — per-function cycle
//! profiles feed macro-models, annotated call graphs feed A-D
//! propagation, and the §4.3 accuracy claims compare estimators against
//! ISS ground truth. This crate turns the simulator from a number
//! printer into an inspectable instrument, in four layers:
//!
//! - **Event tracing** ([`trace`]): the [`TraceSink`] trait the XR32
//!   executor feeds (instruction retire, interlock stalls, taken
//!   branches, I/D-cache hit/miss, custom-instruction dispatch,
//!   call/ret), plus in-memory sinks — a recorder, a bounded flight
//!   recorder, a tee, and a shared handle.
//! - **Binary traces** ([`bintrace`]): a streaming compact `.xtrace`
//!   writer and its reader, with interned names and a versioned header.
//! - **Cycle attribution** ([`attrib`]): call-stack reconstruction into
//!   an exclusive/inclusive per-function cycle tree, exported as
//!   folded-stack (flamegraph-compatible) text and a top-N hot-function
//!   report; plus an event tally for cache/stall/branch behaviour.
//! - **Hierarchical spans** ([`span`]): enter/exit phase and task
//!   spans with dual clocks — deterministic sequence/ISS-cycle fields
//!   kept separate from wall time so the thread-count byte-identity
//!   contract survives — serialized into schema-5 reports and
//!   renderable as a text tree or Chrome trace-event JSON.
//! - **Metrics & reports** ([`metrics`], [`report`], [`json`]):
//!   counters/gauges/histograms for the 4-phase flow, snapshot into a
//!   schema-versioned [`RunReport`] serialized by a hand-rolled
//!   dependency-free JSON module (writer *and* parser, so CI can
//!   validate what harnesses emit).
//!
//! The crate depends on nothing (not even the vendored shims), so every
//! other crate in the workspace can adopt it without cycles.
//!
//! # Example: attributing cycles from a recorded event stream
//!
//! ```
//! use xobs::attrib::Attribution;
//! use xobs::trace::{TraceEvent, TraceSink};
//!
//! let mut attr = Attribution::new();
//! attr.on_event(&TraceEvent::Call { pc: 0, callee: "des_block", cycle: 0 });
//! attr.on_event(&TraceEvent::Call { pc: 7, callee: "feistel", cycle: 10 });
//! attr.on_event(&TraceEvent::Ret { pc: 31, cycle: 90 });
//! attr.on_event(&TraceEvent::Ret { pc: 40, cycle: 100 });
//! assert_eq!(attr.total_cycles(), 100);
//! let flat = attr.flat();
//! assert_eq!(flat[0].name, "feistel"); // hottest by exclusive cycles
//! assert_eq!(flat[0].exclusive, 80);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attrib;
pub mod bintrace;
pub mod frames;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use attrib::{Attribution, EventStats, FlatEntry};
pub use bintrace::{read_trace, BinaryTraceWriter, TraceReadError};
pub use frames::{Assembler, Frame, FrameError};
pub use json::Json;
pub use metrics::{Counter, Gauge, Histogram, MetricsSnapshot, Registry};
pub use report::{RunReport, SCHEMA_VERSION};
pub use span::{SpanGuard, Spans};
pub use trace::{CacheSide, OwnedEvent, RingSink, Shared, TraceEvent, TraceSink, VecSink};
