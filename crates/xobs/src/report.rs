//! Versioned structured run reports.
//!
//! Every bench harness emits a [`RunReport`] under `--json`: the
//! harness's headline results, a metrics snapshot, and the simulated
//! core's configuration fingerprint, wrapped in a schema-versioned
//! envelope so downstream tooling (`scripts/bench_report.sh`, trend
//! dashboards) can reject reports it does not understand instead of
//! mis-parsing them.
//!
//! Versioning policy: `schema_version` bumps only on breaking changes
//! (removing or re-typing a field). Adding fields is backward
//! compatible and does not bump the version; consumers must ignore
//! fields they do not know.
//!
//! Schema 2 adds the optional wall-clock envelope fields `wall_ms`,
//! `threads`, and `memo_hit_rate` (the parallel-execution trajectory).
//! Schema 3 adds the optional resilience arrays `degradations` (the
//! flow's recorded recovery events: retries, fault-free fallbacks,
//! quarantines, model-estimate substitutions) and `fault_campaign`
//! (per-unit outcomes of an `xr32-fault` injection sweep). Both are
//! omitted from a healthy run.
//! Schema 4 adds the optional `generated_variants` array: one object
//! per kernel × accelerator level produced by the `xopt` optimizing
//! pipeline, carrying the gate verdicts (`lint_ok`, `golden_ok`,
//! `admitted`) and generated-vs-hand-written cycle counts.
//! Schema 5 adds the optional `spans` array: the flow's hierarchical
//! span tree (see [`crate::span`]), each span carrying deterministic
//! sequence/cycle/task fields alongside wall-clock fields, plus
//! `wall_only` host-execution (per-worker) spans.
//! Schema 6 adds the optional `fidelity_summary` object: how a
//! dual-fidelity run split its work between the cycle-accurate
//! pipeline and the pre-decoded fast path (e.g. sweep and retired
//! instruction counts per engine). Omitted by single-fidelity runs.
//! Schema 7 adds the optional `core_configs` array: one object per
//! core model a cross-product (core config × accelerator level) run
//! swept, each carrying at least a string `id` (`"io"`, `"ooo-…"`)
//! and typically the core's structural gate cost; per-point results
//! reference these ids via their own `core` fields. Omitted by
//! single-core runs.
//! Schema 8 adds the optional `job` object: the serialized job spec a
//! run was driven by (the serving layer's `JobSpec`), carrying at
//! least a string `kind` plus the canonical spec and its digest. Only
//! spec-derived fields appear, so a daemon-run job and the equivalent
//! CLI run stamp identical bytes. Omitted by runs not driven through
//! a job spec.
//! Version-1 through -7 reports remain valid; [`validate`] accepts all
//! eight, and [`normalize`] strips everything host-timing-dependent so
//! two runs of the same workload can be compared byte-for-byte (the
//! resilience and variant arrays are seed-determined workload facts
//! and survive normalization; span wall fields and `wall_only` spans
//! are stripped, the deterministic span skeleton survives).

use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// Current report schema version.
pub const SCHEMA_VERSION: u64 = 8;

/// Oldest schema version [`validate`] still accepts.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// A structured record of one harness run.
#[derive(Debug, Clone)]
pub struct RunReport {
    name: String,
    config_fingerprint: Option<u64>,
    results: Json,
    metrics: Option<MetricsSnapshot>,
    wall_ms: Option<f64>,
    threads: Option<usize>,
    memo_hit_rate: Option<f64>,
    kernel_errors: Vec<String>,
    degradations: Vec<Json>,
    fault_campaign: Vec<Json>,
    generated_variants: Vec<Json>,
    spans: Vec<Json>,
    fidelity_summary: Option<Json>,
    core_configs: Vec<Json>,
    job: Option<Json>,
}

impl RunReport {
    /// Starts a report for the named harness.
    pub fn new(name: &str) -> Self {
        RunReport {
            name: name.to_owned(),
            config_fingerprint: None,
            results: Json::obj(),
            metrics: None,
            wall_ms: None,
            threads: None,
            memo_hit_rate: None,
            kernel_errors: Vec::new(),
            degradations: Vec::new(),
            fault_campaign: Vec::new(),
            generated_variants: Vec::new(),
            spans: Vec::new(),
            fidelity_summary: None,
            core_configs: Vec::new(),
            job: None,
        }
    }

    /// Records the simulated core's configuration fingerprint.
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.config_fingerprint = Some(fingerprint);
        self
    }

    /// Adds (or replaces) one headline result.
    pub fn result(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.results = self.results.set(key, value);
        self
    }

    /// Attaches a metrics snapshot.
    pub fn with_metrics(mut self, snapshot: MetricsSnapshot) -> Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Records the harness's host wall-clock time in milliseconds
    /// (schema 2).
    pub fn with_wall_ms(mut self, wall_ms: f64) -> Self {
        self.wall_ms = Some(wall_ms);
        self
    }

    /// Records the worker-pool thread count the harness ran with
    /// (schema 2).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Records the kernel-cycle memo-cache hit rate of the run
    /// (schema 2).
    pub fn with_memo_hit_rate(mut self, rate: f64) -> Self {
        self.memo_hit_rate = Some(rate);
        self
    }

    /// Records kernel-layer failures observed during the run (rendered
    /// divergences or unsupported-operation errors). Serialized as the
    /// `kernel_errors` string array when non-empty; a healthy run omits
    /// the field (schema 2).
    pub fn with_kernel_errors<I, S>(mut self, errors: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: ToString,
    {
        self.kernel_errors
            .extend(errors.into_iter().map(|e| e.to_string()));
        self
    }

    /// Records the flow's resilience events (retries, fault-free
    /// fallbacks, quarantine substitutions). Each entry is a rendered
    /// JSON object, as produced by the flow's degradation log; entries
    /// that fail to parse are kept as JSON strings rather than dropped.
    /// Serialized as the `degradations` array when non-empty; a run
    /// that degraded nothing omits the field (schema 3).
    pub fn with_degradations<I, S>(mut self, events: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        self.degradations.extend(
            events
                .into_iter()
                .map(|e| crate::json::parse(e.as_ref()).unwrap_or_else(|_| Json::from(e.as_ref()))),
        );
        self
    }

    /// Records the per-unit outcomes of a fault-injection campaign
    /// (one JSON object per seed x site x kernel unit). Serialized as
    /// the `fault_campaign` array when non-empty (schema 3).
    pub fn with_fault_campaign<I>(mut self, units: I) -> Self
    where
        I: IntoIterator<Item = Json>,
    {
        self.fault_campaign.extend(units);
        self
    }

    /// Records the optimizing pipeline's per-level outcomes (one JSON
    /// object per kernel x accelerator level: gate verdicts and
    /// generated-vs-hand-written cycles). Serialized as the
    /// `generated_variants` array when non-empty; a run with no
    /// generated kernels omits the field (schema 4).
    pub fn with_generated_variants<I>(mut self, rows: I) -> Self
    where
        I: IntoIterator<Item = Json>,
    {
        self.generated_variants.extend(rows);
        self
    }

    /// Records the flow's hierarchical span tree (one object per root
    /// span, as serialized by [`crate::span::Spans::to_json_roots`]).
    /// Serialized as the `spans` array when non-empty; a run that
    /// recorded no spans omits the field (schema 5).
    pub fn with_spans<I>(mut self, roots: I) -> Self
    where
        I: IntoIterator<Item = Json>,
    {
        self.spans.extend(roots);
        self
    }

    /// Records how a dual-fidelity run split its work between the
    /// cycle-accurate pipeline and the pre-decoded fast path. `summary`
    /// should be a JSON object of deterministic counts (e.g.
    /// `{"fast": {"sweeps": 64, "insns": 1.2e6}, "accurate": ...}`).
    /// Serialized as the `fidelity_summary` field; single-fidelity runs
    /// omit it (schema 6).
    pub fn with_fidelity_summary(mut self, summary: Json) -> Self {
        self.fidelity_summary = Some(summary);
        self
    }

    /// Records the core models a cross-product run swept (one JSON
    /// object per core configuration, each with at least a string
    /// `id`; per-point results reference these ids via their own
    /// `core` fields). Serialized as the `core_configs` array when
    /// non-empty; single-core runs omit the field (schema 7).
    pub fn with_core_configs<I>(mut self, configs: I) -> Self
    where
        I: IntoIterator<Item = Json>,
    {
        self.core_configs.extend(configs);
        self
    }

    /// Records the serialized job spec this run was driven by (a JSON
    /// object with at least a string `kind`; see schema 8). Runs not
    /// driven through a job spec omit the field.
    pub fn with_job(mut self, job: Json) -> Self {
        self.job = Some(job);
        self
    }

    /// Serializes the report envelope.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("report", self.name.as_str());
        if let Some(job) = &self.job {
            obj = obj.set("job", job.clone());
        }
        if let Some(fp) = self.config_fingerprint {
            obj = obj.set("config_fingerprint", format!("{fp:016x}"));
        }
        if let Some(ms) = self.wall_ms {
            obj = obj.set("wall_ms", ms);
        }
        if let Some(t) = self.threads {
            obj = obj.set("threads", t as u64);
        }
        if let Some(r) = self.memo_hit_rate {
            obj = obj.set("memo_hit_rate", r);
        }
        if !self.kernel_errors.is_empty() {
            obj = obj.set(
                "kernel_errors",
                Json::Arr(
                    self.kernel_errors
                        .iter()
                        .map(|e| Json::from(e.as_str()))
                        .collect(),
                ),
            );
        }
        if !self.degradations.is_empty() {
            obj = obj.set("degradations", Json::Arr(self.degradations.clone()));
        }
        if !self.fault_campaign.is_empty() {
            obj = obj.set("fault_campaign", Json::Arr(self.fault_campaign.clone()));
        }
        if !self.generated_variants.is_empty() {
            obj = obj.set(
                "generated_variants",
                Json::Arr(self.generated_variants.clone()),
            );
        }
        if !self.spans.is_empty() {
            obj = obj.set("spans", Json::Arr(self.spans.clone()));
        }
        if let Some(fs) = &self.fidelity_summary {
            obj = obj.set("fidelity_summary", fs.clone());
        }
        if !self.core_configs.is_empty() {
            obj = obj.set("core_configs", Json::Arr(self.core_configs.clone()));
        }
        obj = obj.set("results", self.results.clone());
        if let Some(m) = &self.metrics {
            obj = obj.set("metrics", m.to_json());
        }
        obj
    }

    /// The report rendered as pretty-printed JSON text.
    pub fn render(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// Checks that a parsed JSON value is a well-formed report envelope of
/// a supported schema version ([`MIN_SCHEMA_VERSION`] through
/// [`SCHEMA_VERSION`]). Returns a human-readable description of the
/// first violation.
pub fn validate(json: &Json) -> Result<(), String> {
    let version = json
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing numeric schema_version")?;
    if version < MIN_SCHEMA_VERSION as f64 || version > SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} unsupported (validator supports \
             {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION})"
        ));
    }
    let name = json
        .get("report")
        .and_then(Json::as_str)
        .ok_or("missing string field: report")?;
    if name.is_empty() {
        return Err("empty report name".into());
    }
    let results = json.get("results").ok_or("missing field: results")?;
    if results.as_str().is_some() || results.as_f64().is_some() || results.as_arr().is_some() {
        return Err("results must be an object".into());
    }
    if let Some(fp) = json.get("config_fingerprint") {
        let s = fp.as_str().ok_or("config_fingerprint must be a string")?;
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("config_fingerprint {s:?} is not 16 hex digits"));
        }
    }
    for key in ["wall_ms", "memo_hit_rate", "threads"] {
        if let Some(v) = json.get(key) {
            if v.as_f64().is_none() {
                return Err(format!("{key} must be a number"));
            }
        }
    }
    if let Some(errors) = json.get("kernel_errors") {
        let arr = errors.as_arr().ok_or("kernel_errors must be an array")?;
        if arr.iter().any(|e| e.as_str().is_none()) {
            return Err("kernel_errors entries must be strings".into());
        }
    }
    for key in ["degradations", "fault_campaign"] {
        if let Some(events) = json.get(key) {
            let arr = events
                .as_arr()
                .ok_or_else(|| format!("{key} must be an array"))?;
            if arr
                .iter()
                .any(|e| !matches!(e, Json::Obj(_)) && e.as_str().is_none())
            {
                return Err(format!("{key} entries must be objects"));
            }
        }
    }
    if let Some(rows) = json.get("generated_variants") {
        let arr = rows.as_arr().ok_or("generated_variants must be an array")?;
        for row in arr {
            if !matches!(row, Json::Obj(_)) {
                return Err("generated_variants entries must be objects".into());
            }
            for key in ["kernel", "tag"] {
                if row.get(key).is_none_or(|v| v.as_str().is_none()) {
                    return Err(format!("generated_variants entries need a string `{key}`"));
                }
            }
            if row
                .get("admitted")
                .is_none_or(|v| !matches!(v, Json::Bool(_)))
            {
                return Err("generated_variants entries need a boolean `admitted`".into());
            }
        }
    }
    if let Some(spans) = json.get("spans") {
        let arr = spans.as_arr().ok_or("spans must be an array")?;
        for span in arr {
            crate::span::validate_span_json(span).map_err(|e| format!("spans: {e}"))?;
        }
    }
    if let Some(fs) = json.get("fidelity_summary") {
        if !matches!(fs, Json::Obj(_)) {
            return Err("fidelity_summary must be an object".into());
        }
    }
    if let Some(job) = json.get("job") {
        if !matches!(job, Json::Obj(_)) {
            return Err("job must be an object".into());
        }
        if job.get("kind").is_none_or(|v| v.as_str().is_none()) {
            return Err("job needs a string `kind`".into());
        }
    }
    if let Some(cores) = json.get("core_configs") {
        let arr = cores.as_arr().ok_or("core_configs must be an array")?;
        for core in arr {
            if !matches!(core, Json::Obj(_)) {
                return Err("core_configs entries must be objects".into());
            }
            if core.get("id").is_none_or(|v| v.as_str().is_none()) {
                return Err("core_configs entries need a string `id`".into());
            }
        }
    }
    Ok(())
}

/// True for a key whose value depends on host timing, thread count or
/// cache warmth rather than on the simulated workload. Exported so
/// downstream tooling (the `bench_diff` envelope differ) classifies
/// metrics exactly the way normalization does.
pub fn is_volatile_key(key: &str) -> bool {
    key == "wall_ms"
        || key == "threads"
        || key == "memo_hit_rate"
        || key == "estimation_speedup"
        || key == "mean_estimation_speedup"
        || key == "fast_path_speedup"
        || key == "busy_fraction"
        || key == "queue_wait_ms"
        || key == "jobs_per_s"
        || key == "queries_per_s"
        || key == "p50_ms"
        || key == "p99_ms"
        || key.ends_with("wall_ms")
        || key.starts_with("xpar.")
        || key.starts_with("kcache.")
        || key.starts_with("xserve.")
}

/// True for an array element normalization drops entirely: a
/// `wall_only` span, whose existence (one per pool worker) depends on
/// the thread count rather than on the workload.
fn volatile_entry(json: &Json) -> bool {
    json.get("wall_only") == Some(&Json::Bool(true))
}

/// Returns the report with every host-timing-dependent field removed,
/// recursively: the schema-2 envelope fields (`wall_ms`, `threads`,
/// `memo_hit_rate`), wall-clock-derived results
/// (`estimation_speedup`, `mean_estimation_speedup`, any `*wall_ms`
/// key — including the schema-5 span fields `start_wall_ms` /
/// `wall_ms`), the `xpar.*` / `kcache.*` metrics, and whole `wall_only`
/// (per-worker) spans. Two runs of the same simulated workload —
/// whatever the thread count or cache state — normalize to
/// byte-identical JSON.
pub fn normalize(json: &Json) -> Json {
    match json {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !is_volatile_key(k))
                .map(|(k, v)| (k.clone(), normalize(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(
            items
                .iter()
                .filter(|item| !volatile_entry(item))
                .map(normalize)
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::Registry;

    #[test]
    fn kernel_errors_serialize_and_validate() {
        let healthy = RunReport::new("r").with_kernel_errors(Vec::<String>::new());
        assert!(healthy.to_json().get("kernel_errors").is_none());

        let report = RunReport::new("r").with_kernel_errors(["kernel `x` diverged"]);
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        let arr = parsed.get("kernel_errors").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 1);

        let bad =
            json::parse(r#"{"schema_version":2,"report":"r","results":{},"kernel_errors":[3]}"#)
                .unwrap();
        assert!(validate(&bad).unwrap_err().contains("kernel_errors"));
        // Divergences are workload facts, not host noise: normalize keeps them.
        assert!(normalize(&parsed).get("kernel_errors").is_some());
    }

    #[test]
    fn report_round_trips_and_validates() {
        let reg = Registry::new();
        reg.counter("flow.candidates").add(450);
        let report = RunReport::new("table1_speedups")
            .with_fingerprint(0xdead_beef_cafe_f00d)
            .result("rsa_bits", 1024u64)
            .result("speedup_des", 5.2)
            .with_metrics(reg.snapshot());
        let text = report.render();
        let parsed = json::parse(&text).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(
            parsed.get("report").and_then(Json::as_str),
            Some("table1_speedups")
        );
        assert_eq!(
            parsed.get("config_fingerprint").and_then(Json::as_str),
            Some("deadbeefcafef00d")
        );
        assert_eq!(
            parsed
                .get("results")
                .and_then(|r| r.get("speedup_des"))
                .and_then(Json::as_f64),
            Some(5.2)
        );
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("flow.candidates"))
                .and_then(|c| c.get("value"))
                .and_then(Json::as_f64),
            Some(450.0)
        );
    }

    #[test]
    fn wall_clock_fields_serialize_and_validate() {
        let report = RunReport::new("sec43")
            .with_wall_ms(123.5)
            .with_threads(8)
            .with_memo_hit_rate(0.75);
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(
            parsed.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(parsed.get("wall_ms").and_then(Json::as_f64), Some(123.5));
        assert_eq!(parsed.get("threads").and_then(Json::as_f64), Some(8.0));
        assert_eq!(
            parsed.get("memo_hit_rate").and_then(Json::as_f64),
            Some(0.75)
        );
    }

    #[test]
    fn degradations_and_fault_campaign_serialize_and_validate() {
        let healthy = RunReport::new("r").with_degradations(Vec::<String>::new());
        assert!(healthy.to_json().get("degradations").is_none());
        assert!(healthy.to_json().get("fault_campaign").is_none());

        let report = RunReport::new("r")
            .with_degradations([
                r#"{"phase":"curves","kernel":"mpn_add_n","action":"fallback-fault-free"}"#,
            ])
            .with_fault_campaign([Json::obj()
                .set("seed", 7u64)
                .set("site", "data_mem")
                .set("outcome", "detected")]);
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        let degr = parsed.get("degradations").and_then(Json::as_arr).unwrap();
        assert_eq!(
            degr[0].get("kernel").and_then(Json::as_str),
            Some("mpn_add_n")
        );
        let camp = parsed.get("fault_campaign").and_then(Json::as_arr).unwrap();
        assert_eq!(
            camp[0].get("outcome").and_then(Json::as_str),
            Some("detected")
        );

        let bad = json::parse(r#"{"schema_version":3,"report":"r","results":{},"degradations":7}"#)
            .unwrap();
        assert!(validate(&bad).unwrap_err().contains("degradations"));
        // Resilience events are seed-determined workload facts: keep them.
        assert!(normalize(&parsed).get("degradations").is_some());
        assert!(normalize(&parsed).get("fault_campaign").is_some());
    }

    #[test]
    fn generated_variants_serialize_and_validate() {
        let healthy = RunReport::new("r").with_generated_variants(Vec::<Json>::new());
        assert!(healthy.to_json().get("generated_variants").is_none());

        let report = RunReport::new("fig5_adcurves").with_generated_variants([Json::obj()
            .set("kernel", "mpn_add_n")
            .set("family", "add")
            .set("lanes", 4u64)
            .set("tag", "gen-a4m1")
            .set("lint_ok", true)
            .set("golden_ok", true)
            .set("admitted", true)
            .set("cycles_hand", 100.0)
            .set("cycles_generated", 92.0)]);
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        let rows = parsed
            .get("generated_variants")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rows[0].get("tag").and_then(Json::as_str), Some("gen-a4m1"));
        assert_eq!(
            rows[0].get("cycles_generated").and_then(Json::as_f64),
            Some(92.0)
        );
        // Simulated-cycle facts, not host noise: normalize keeps them.
        assert!(normalize(&parsed).get("generated_variants").is_some());

        let bad =
            json::parse(r#"{"schema_version":4,"report":"r","results":{},"generated_variants":7}"#)
                .unwrap();
        assert!(validate(&bad).unwrap_err().contains("generated_variants"));
        let bad_row = json::parse(
            r#"{"schema_version":4,"report":"r","results":{},
                "generated_variants":[{"kernel":"mpn_add_n","tag":"gen-a4m1"}]}"#,
        )
        .unwrap();
        assert!(validate(&bad_row).unwrap_err().contains("admitted"));
        let bad_kernel = json::parse(
            r#"{"schema_version":4,"report":"r","results":{},
                "generated_variants":[{"tag":"gen-a4m1","admitted":true}]}"#,
        )
        .unwrap();
        assert!(validate(&bad_kernel).unwrap_err().contains("kernel"));
    }

    #[test]
    fn spans_serialize_validate_and_normalize() {
        let healthy = RunReport::new("r").with_spans(Vec::<Json>::new());
        assert!(healthy.to_json().get("spans").is_none());

        let spans = crate::span::Spans::new();
        {
            let _flow = spans.enter("flow");
            {
                let _p1 = spans.enter("phase1.characterize");
                spans.leaf("mpn_add_n.r4", 120.0, 3, Some(0.4));
                spans.wall_span(
                    "xpar.worker-0",
                    0.0,
                    0.3,
                    &[
                        ("worker", Json::from(0u64)),
                        ("busy_fraction", Json::from(0.9)),
                    ],
                );
            }
        }
        let report = RunReport::new("fig5_adcurves").with_spans(spans.to_json_roots());
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        let n = normalize(&parsed);
        let roots = n.get("spans").and_then(Json::as_arr).unwrap();
        let flow = &roots[0];
        // Deterministic skeleton survives…
        assert_eq!(flow.get("cycles").and_then(Json::as_f64), Some(120.0));
        assert!(flow.get("seq_start").is_some());
        // …wall fields and per-worker spans do not.
        assert!(flow.get("wall_ms").is_none());
        assert!(flow.get("start_wall_ms").is_none());
        let p1 = &flow.get("children").and_then(Json::as_arr).unwrap()[0];
        let kids = p1.get("children").and_then(Json::as_arr).unwrap();
        assert_eq!(kids.len(), 1, "wall_only worker span must be dropped");
        assert_eq!(
            kids[0].get("name").and_then(Json::as_str),
            Some("mpn_add_n.r4")
        );
        // Normalized form still validates and is idempotent.
        validate(&n).unwrap();
        assert_eq!(normalize(&n).to_string_compact(), n.to_string_compact());
    }

    #[test]
    fn validate_rejects_malformed_span_trees() {
        let bad = json::parse(
            r#"{"schema_version":5,"report":"r","results":{},"spans":[
                {"name":"p","seq_start":0,"seq_end":9,"cycles":0,"tasks":0,"children":[
                    {"name":"a","seq_start":1,"seq_end":5,"cycles":0,"tasks":0},
                    {"name":"b","seq_start":3,"seq_end":8,"cycles":0,"tasks":0}]}]}"#,
        )
        .unwrap();
        assert!(validate(&bad).unwrap_err().contains("nested"));
        let not_arr =
            json::parse(r#"{"schema_version":5,"report":"r","results":{},"spans":7}"#).unwrap();
        assert!(validate(&not_arr).unwrap_err().contains("spans"));
    }

    #[test]
    fn fidelity_summary_serializes_and_validates() {
        let healthy = RunReport::new("r");
        assert!(healthy.to_json().get("fidelity_summary").is_none());

        let report = RunReport::new("fastpath_gate").with_fidelity_summary(
            Json::obj()
                .set(
                    "fast",
                    Json::obj().set("sweeps", 64u64).set("insns", 1_200_000u64),
                )
                .set("accurate", Json::obj().set("sweeps", 64u64)),
        );
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(
            parsed
                .get("fidelity_summary")
                .and_then(|f| f.get("fast"))
                .and_then(|f| f.get("sweeps"))
                .and_then(Json::as_f64),
            Some(64.0)
        );
        // Engine split counts are workload facts: normalize keeps them.
        assert!(normalize(&parsed).get("fidelity_summary").is_some());

        let bad =
            json::parse(r#"{"schema_version":6,"report":"r","results":{},"fidelity_summary":[1]}"#)
                .unwrap();
        assert!(validate(&bad).unwrap_err().contains("fidelity_summary"));
    }

    #[test]
    fn core_configs_serialize_and_validate() {
        let healthy = RunReport::new("r").with_core_configs(Vec::<Json>::new());
        assert!(healthy.to_json().get("core_configs").is_none());

        let report = RunReport::new("sec43_exploration")
            .with_core_configs([
                Json::obj().set("id", "io").set("area", 0u64),
                Json::obj()
                    .set("id", "ooo-i2x2-r32s16l8b256")
                    .set("area", 42_000u64),
            ])
            .result(
                "cross_product.points",
                Json::Arr(vec![Json::obj()
                    .set("core", "ooo-i2x2-r32s16l8b256")
                    .set("level", "base")
                    .set("area", 42_000u64)
                    .set("cycles", 9_000.0)
                    .set("on_front", true)]),
            );
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        let cores = parsed.get("core_configs").and_then(Json::as_arr).unwrap();
        assert_eq!(cores.len(), 2);
        assert_eq!(cores[0].get("id").and_then(Json::as_str), Some("io"));
        // Core sweeps are workload facts, not host noise: normalize keeps them.
        assert!(normalize(&parsed).get("core_configs").is_some());

        let bad = json::parse(r#"{"schema_version":7,"report":"r","results":{},"core_configs":7}"#)
            .unwrap();
        assert!(validate(&bad).unwrap_err().contains("core_configs"));
        let bad_entry =
            json::parse(r#"{"schema_version":7,"report":"r","results":{},"core_configs":[7]}"#)
                .unwrap();
        assert!(validate(&bad_entry).unwrap_err().contains("objects"));
        let bad_id = json::parse(
            r#"{"schema_version":7,"report":"r","results":{},"core_configs":[{"area":1}]}"#,
        )
        .unwrap();
        assert!(validate(&bad_id).unwrap_err().contains("id"));
    }

    #[test]
    fn job_stanza_serializes_validates_and_survives_normalization() {
        let healthy = RunReport::new("r");
        assert!(healthy.to_json().get("job").is_none());

        let report = RunReport::new("sec43_exploration").with_job(
            Json::obj()
                .set("kind", "explore")
                .set("digest", "00c0ffee00c0ffee")
                .set(
                    "spec",
                    Json::obj().set("kind", "explore").set("bits", 128u64),
                ),
        );
        let parsed = json::parse(&report.render()).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(
            parsed
                .get("job")
                .and_then(|j| j.get("kind"))
                .and_then(Json::as_str),
            Some("explore")
        );
        // The spec is a workload fact: normalize keeps it.
        assert!(normalize(&parsed).get("job").is_some());

        let bad = json::parse(r#"{"schema_version":8,"report":"r","results":{},"job":7}"#).unwrap();
        assert!(validate(&bad).unwrap_err().contains("job"));
        let bad_kind =
            json::parse(r#"{"schema_version":8,"report":"r","results":{},"job":{"bits":1}}"#)
                .unwrap();
        assert!(validate(&bad_kind).unwrap_err().contains("kind"));
    }

    #[test]
    fn serving_throughput_keys_are_volatile() {
        for key in [
            "jobs_per_s",
            "queries_per_s",
            "p50_ms",
            "p99_ms",
            "xserve.submit_p99_ms",
        ] {
            assert!(is_volatile_key(key), "{key}");
        }
        assert!(!is_volatile_key("cancelled_jobs"));
    }

    #[test]
    fn validate_accepts_version_7_reports() {
        let j = json::parse(
            r#"{"schema_version":7,"report":"x","results":{},
                "core_configs":[{"id":"io"}]}"#,
        )
        .unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_accepts_version_6_reports() {
        let j = json::parse(
            r#"{"schema_version":6,"report":"x","results":{},
                "fidelity_summary":{"fast":{"sweeps":64}}}"#,
        )
        .unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_accepts_version_5_reports() {
        let j = json::parse(
            r#"{"schema_version":5,"report":"x","results":{},"spans":[
                {"name":"p","seq_start":0,"seq_end":1,"cycles":0,"tasks":0}]}"#,
        )
        .unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_accepts_version_4_reports() {
        let j = json::parse(
            r#"{"schema_version":4,"report":"x","results":{},
                "generated_variants":[{"kernel":"k","tag":"t","admitted":false}]}"#,
        )
        .unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_accepts_version_3_reports() {
        let j = json::parse(
            r#"{"schema_version":3,"report":"x","results":{},"degradations":[{"phase":"curves"}]}"#,
        )
        .unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_accepts_version_2_reports() {
        let j =
            json::parse(r#"{"schema_version":2,"report":"x","results":{},"wall_ms":1.0}"#).unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_accepts_version_1_reports() {
        let j = json::parse(r#"{"schema_version":1,"report":"x","results":{}}"#).unwrap();
        validate(&j).unwrap();
    }

    #[test]
    fn validate_rejects_missing_version() {
        let j = json::parse(r#"{"report":"x","results":{}}"#).unwrap();
        assert!(validate(&j).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn validate_rejects_future_version() {
        let j = json::parse(r#"{"schema_version":99,"report":"x","results":{}}"#).unwrap();
        assert!(validate(&j).unwrap_err().contains("unsupported"));
    }

    #[test]
    fn validate_rejects_non_object_results() {
        let j = json::parse(r#"{"schema_version":1,"report":"x","results":[1]}"#).unwrap();
        assert!(validate(&j).unwrap_err().contains("object"));
    }

    #[test]
    fn validate_rejects_bad_fingerprint() {
        let j = json::parse(
            r#"{"schema_version":1,"report":"x","config_fingerprint":"xyz","results":{}}"#,
        )
        .unwrap();
        assert!(validate(&j).unwrap_err().contains("hex"));
    }

    #[test]
    fn validate_rejects_non_numeric_wall_fields() {
        let j = json::parse(r#"{"schema_version":2,"report":"x","wall_ms":"fast","results":{}}"#)
            .unwrap();
        assert!(validate(&j).unwrap_err().contains("wall_ms"));
    }

    #[test]
    fn normalize_strips_volatile_fields_recursively() {
        let j = json::parse(
            r#"{
              "schema_version": 2, "report": "x", "wall_ms": 9.1,
              "threads": 8, "memo_hit_rate": 0.5,
              "results": {
                "cosim_samples": 3, "mean_estimation_speedup": 41.0,
                "phases": [{"exploration_wall_ms": 2.0, "evaluated": 450}]
              },
              "metrics": {
                "xpar.utilization": {"type": "gauge", "value": 0.9},
                "kcache.hits": {"type": "counter", "value": 12},
                "flow.phase1.wall_ms": {"type": "gauge", "value": 3.0},
                "flow.phase2.best_cycles": {"type": "gauge", "value": 7.0}
              }
            }"#,
        )
        .unwrap();
        let n = normalize(&j);
        assert!(n.get("wall_ms").is_none());
        assert!(n.get("threads").is_none());
        assert!(n.get("memo_hit_rate").is_none());
        let results = n.get("results").unwrap();
        assert!(results.get("mean_estimation_speedup").is_none());
        assert_eq!(
            results.get("cosim_samples").and_then(Json::as_f64),
            Some(3.0)
        );
        let phase = &results.get("phases").and_then(Json::as_arr).unwrap()[0];
        assert!(phase.get("exploration_wall_ms").is_none());
        assert_eq!(phase.get("evaluated").and_then(Json::as_f64), Some(450.0));
        let metrics = n.get("metrics").unwrap();
        assert!(metrics.get("xpar.utilization").is_none());
        assert!(metrics.get("kcache.hits").is_none());
        assert!(metrics.get("flow.phase1.wall_ms").is_none());
        assert!(metrics.get("flow.phase2.best_cycles").is_some());
        // Idempotent: normalizing a normal form is the identity.
        assert_eq!(normalize(&n).to_string_compact(), n.to_string_compact());
    }
}
