//! Versioned structured run reports.
//!
//! Every bench harness emits a [`RunReport`] under `--json`: the
//! harness's headline results, a metrics snapshot, and the simulated
//! core's configuration fingerprint, wrapped in a schema-versioned
//! envelope so downstream tooling (`scripts/bench_report.sh`, trend
//! dashboards) can reject reports it does not understand instead of
//! mis-parsing them.
//!
//! Versioning policy: `schema_version` bumps only on breaking changes
//! (removing or re-typing a field). Adding fields is backward
//! compatible and does not bump the version; consumers must ignore
//! fields they do not know.

use crate::json::Json;
use crate::metrics::MetricsSnapshot;

/// Current report schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// A structured record of one harness run.
#[derive(Debug, Clone)]
pub struct RunReport {
    name: String,
    config_fingerprint: Option<u64>,
    results: Json,
    metrics: Option<MetricsSnapshot>,
}

impl RunReport {
    /// Starts a report for the named harness.
    pub fn new(name: &str) -> Self {
        RunReport {
            name: name.to_owned(),
            config_fingerprint: None,
            results: Json::obj(),
            metrics: None,
        }
    }

    /// Records the simulated core's configuration fingerprint.
    pub fn with_fingerprint(mut self, fingerprint: u64) -> Self {
        self.config_fingerprint = Some(fingerprint);
        self
    }

    /// Adds (or replaces) one headline result.
    pub fn result(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.results = self.results.set(key, value);
        self
    }

    /// Attaches a metrics snapshot.
    pub fn with_metrics(mut self, snapshot: MetricsSnapshot) -> Self {
        self.metrics = Some(snapshot);
        self
    }

    /// Serializes the report envelope.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj()
            .set("schema_version", SCHEMA_VERSION)
            .set("report", self.name.as_str());
        if let Some(fp) = self.config_fingerprint {
            obj = obj.set("config_fingerprint", format!("{fp:016x}"));
        }
        obj = obj.set("results", self.results.clone());
        if let Some(m) = &self.metrics {
            obj = obj.set("metrics", m.to_json());
        }
        obj
    }

    /// The report rendered as pretty-printed JSON text.
    pub fn render(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

/// Checks that a parsed JSON value is a well-formed current-version
/// report envelope. Returns a human-readable description of the first
/// violation.
pub fn validate(json: &Json) -> Result<(), String> {
    let version = json
        .get("schema_version")
        .and_then(Json::as_f64)
        .ok_or("missing numeric schema_version")?;
    if version != SCHEMA_VERSION as f64 {
        return Err(format!(
            "schema_version {version} unsupported (validator supports {SCHEMA_VERSION})"
        ));
    }
    let name = json
        .get("report")
        .and_then(Json::as_str)
        .ok_or("missing string field: report")?;
    if name.is_empty() {
        return Err("empty report name".into());
    }
    let results = json.get("results").ok_or("missing field: results")?;
    if results.as_str().is_some() || results.as_f64().is_some() || results.as_arr().is_some() {
        return Err("results must be an object".into());
    }
    if let Some(fp) = json.get("config_fingerprint") {
        let s = fp.as_str().ok_or("config_fingerprint must be a string")?;
        if s.len() != 16 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(format!("config_fingerprint {s:?} is not 16 hex digits"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::Registry;

    #[test]
    fn report_round_trips_and_validates() {
        let reg = Registry::new();
        reg.counter("flow.candidates").add(450);
        let report = RunReport::new("table1_speedups")
            .with_fingerprint(0xdead_beef_cafe_f00d)
            .result("rsa_bits", 1024u64)
            .result("speedup_des", 5.2)
            .with_metrics(reg.snapshot());
        let text = report.render();
        let parsed = json::parse(&text).unwrap();
        validate(&parsed).unwrap();
        assert_eq!(
            parsed.get("report").and_then(Json::as_str),
            Some("table1_speedups")
        );
        assert_eq!(
            parsed.get("config_fingerprint").and_then(Json::as_str),
            Some("deadbeefcafef00d")
        );
        assert_eq!(
            parsed
                .get("results")
                .and_then(|r| r.get("speedup_des"))
                .and_then(Json::as_f64),
            Some(5.2)
        );
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("flow.candidates"))
                .and_then(|c| c.get("value"))
                .and_then(Json::as_f64),
            Some(450.0)
        );
    }

    #[test]
    fn validate_rejects_missing_version() {
        let j = json::parse(r#"{"report":"x","results":{}}"#).unwrap();
        assert!(validate(&j).unwrap_err().contains("schema_version"));
    }

    #[test]
    fn validate_rejects_future_version() {
        let j = json::parse(r#"{"schema_version":99,"report":"x","results":{}}"#).unwrap();
        assert!(validate(&j).unwrap_err().contains("unsupported"));
    }

    #[test]
    fn validate_rejects_non_object_results() {
        let j = json::parse(r#"{"schema_version":1,"report":"x","results":[1]}"#).unwrap();
        assert!(validate(&j).unwrap_err().contains("object"));
    }

    #[test]
    fn validate_rejects_bad_fingerprint() {
        let j = json::parse(
            r#"{"schema_version":1,"report":"x","config_fingerprint":"xyz","results":{}}"#,
        )
        .unwrap();
        assert!(validate(&j).unwrap_err().contains("hex"));
    }
}
