//! The XR32 instruction set.
//!
//! A load/store RISC with sixteen 32-bit general registers (`a0`–`a15`),
//! a carry flag for multi-precision arithmetic, optional hardware
//! multiply, and an extension slot for designer-defined custom
//! instructions ([`Insn::Custom`]).
//!
//! Register conventions (used by the assembler and kernels):
//!
//! | register | alias | role |
//! |---|---|---|
//! | `a0`–`a5` | | arguments / return values, caller-saved |
//! | `a6`–`a13` | | temporaries |
//! | `a14` | `sp` | stack pointer |
//! | `a15` | `ra` | return address (written by `call`) |

use core::fmt;

/// A general-purpose register index (`a0`–`a15`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// The stack pointer alias (`a14`).
    pub const SP: Reg = Reg(14);
    /// The return-address alias (`a15`).
    pub const RA: Reg = Reg(15);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15`.
    pub fn new(index: u8) -> Self {
        assert!(index < 16, "register index {index} out of range");
        Reg(index)
    }

    /// The register's index (0–15).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            14 => write!(f, "sp"),
            15 => write!(f, "ra"),
            n => write!(f, "a{n}"),
        }
    }
}

/// A user (wide) register index for custom-instruction state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UserReg(u8);

impl UserReg {
    /// Creates a user register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index > 15` (XR32 exposes at most 16 user registers).
    pub fn new(index: u8) -> Self {
        assert!(index < 16, "user register index {index} out of range");
        UserReg(index)
    }

    /// The register's index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UserReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ur{}", self.0)
    }
}

/// Operands of a custom (TIE-style) instruction instance.
///
/// A custom instruction may read/write general registers, reference wide
/// user registers, and carry one immediate. Its semantics, latency and
/// area come from the [`crate::ext::CustomInsnDef`] registered under
/// `name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CustomOp {
    /// Name the instruction was registered under.
    pub name: String,
    /// General-register operands, in assembly order.
    pub regs: Vec<Reg>,
    /// User-register operands, in assembly order.
    pub uregs: Vec<UserReg>,
    /// Optional immediate operand (0 if absent).
    pub imm: i32,
}

/// One decoded XR32 instruction.
///
/// Field order for three-operand forms is `(rd, rs1, rs2)`; loads are
/// `(rd, base, offset)` and stores `(rs, base, offset)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Insn {
    // --- ALU register-register ---
    /// `rd = rs1 + rs2`
    Add(Reg, Reg, Reg),
    /// `rd = rs1 + rs2 + carry`, sets carry.
    Addc(Reg, Reg, Reg),
    /// `rd = rs1 - rs2`
    Sub(Reg, Reg, Reg),
    /// `rd = rs1 - rs2 - carry`, sets carry (borrow).
    Subc(Reg, Reg, Reg),
    /// `rd = rs1 & rs2`
    And(Reg, Reg, Reg),
    /// `rd = rs1 | rs2`
    Or(Reg, Reg, Reg),
    /// `rd = rs1 ^ rs2`
    Xor(Reg, Reg, Reg),
    /// `rd = rs1 << (rs2 & 31)`
    Sll(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (logical)
    Srl(Reg, Reg, Reg),
    /// `rd = rs1 >> (rs2 & 31)` (arithmetic)
    Sra(Reg, Reg, Reg),
    /// `rd = (rs1 <ᵤ rs2) ? 1 : 0`
    Sltu(Reg, Reg, Reg),
    /// `rd = (rs1 <ₛ rs2) ? 1 : 0`
    Slt(Reg, Reg, Reg),
    /// `rd = low32(rs1 * rs2)` — requires the hardware-multiplier option.
    Mul(Reg, Reg, Reg),
    /// `rd = high32(rs1 *ᵤ rs2)` — requires the hardware-multiplier
    /// option.
    Mulhu(Reg, Reg, Reg),

    // --- ALU immediate ---
    /// `rd = rs + imm` (imm in ±2048)
    Addi(Reg, Reg, i32),
    /// `rd = rs & imm` (imm in 0..=4095)
    Andi(Reg, Reg, u32),
    /// `rd = rs | imm` (imm in 0..=4095)
    Ori(Reg, Reg, u32),
    /// `rd = rs ^ imm` (imm in 0..=4095)
    Xori(Reg, Reg, u32),
    /// `rd = rs << sh` (sh in 0..=31)
    Slli(Reg, Reg, u32),
    /// `rd = rs >> sh` (logical)
    Srli(Reg, Reg, u32),
    /// `rd = rs >> sh` (arithmetic)
    Srai(Reg, Reg, u32),
    /// `rd = imm` — models the Xtensa `L32R` literal-pool load; any
    /// 32-bit constant in one instruction.
    Movi(Reg, i32),
    /// `rd = rs`
    Mov(Reg, Reg),

    // --- memory ---
    /// `rd = mem32[rs + offset]`
    Lw(Reg, Reg, i32),
    /// `mem32[rs + offset] = rd`
    Sw(Reg, Reg, i32),
    /// `rd = zero_extend(mem8[rs + offset])`
    Lbu(Reg, Reg, i32),
    /// `mem8[rs + offset] = low8(rd)`
    Sb(Reg, Reg, i32),
    /// `rd = zero_extend(mem16[rs + offset])`
    Lhu(Reg, Reg, i32),
    /// `mem16[rs + offset] = low16(rd)`
    Sh(Reg, Reg, i32),

    // --- control flow (targets are instruction indices) ---
    /// Branch if equal.
    Beq(Reg, Reg, usize),
    /// Branch if not equal.
    Bne(Reg, Reg, usize),
    /// Branch if unsigned less-than.
    Bltu(Reg, Reg, usize),
    /// Branch if unsigned greater-or-equal.
    Bgeu(Reg, Reg, usize),
    /// Branch if signed less-than.
    Blt(Reg, Reg, usize),
    /// Branch if signed greater-or-equal.
    Bge(Reg, Reg, usize),
    /// Unconditional jump.
    J(usize),
    /// Call: `ra = pc + 1; pc = target`. Drives the profiler's call
    /// graph.
    Call(usize),
    /// Return: `pc = ra`.
    Ret,
    /// Indirect jump through a register.
    Jr(Reg),

    // --- misc ---
    /// Clears the carry flag (used to start multi-precision chains).
    Clc,
    /// No operation.
    Nop,
    /// Stop simulation.
    Halt,
    /// A designer-defined custom instruction.
    Custom(CustomOp),
}

impl fmt::Display for Insn {
    /// Canonical assembly rendering, for diagnostics and IR dumps.
    /// Control-transfer targets are printed as `@<index>` (instruction
    /// indices, not labels — the assembler's symbol table is not part
    /// of the instruction). The output of non-branch instructions
    /// re-assembles verbatim.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Insn::*;
        match self {
            Add(d, a, b) => write!(f, "add {d}, {a}, {b}"),
            Addc(d, a, b) => write!(f, "addc {d}, {a}, {b}"),
            Sub(d, a, b) => write!(f, "sub {d}, {a}, {b}"),
            Subc(d, a, b) => write!(f, "subc {d}, {a}, {b}"),
            And(d, a, b) => write!(f, "and {d}, {a}, {b}"),
            Or(d, a, b) => write!(f, "or {d}, {a}, {b}"),
            Xor(d, a, b) => write!(f, "xor {d}, {a}, {b}"),
            Sll(d, a, b) => write!(f, "sll {d}, {a}, {b}"),
            Srl(d, a, b) => write!(f, "srl {d}, {a}, {b}"),
            Sra(d, a, b) => write!(f, "sra {d}, {a}, {b}"),
            Sltu(d, a, b) => write!(f, "sltu {d}, {a}, {b}"),
            Slt(d, a, b) => write!(f, "slt {d}, {a}, {b}"),
            Mul(d, a, b) => write!(f, "mul {d}, {a}, {b}"),
            Mulhu(d, a, b) => write!(f, "mulhu {d}, {a}, {b}"),
            Addi(d, a, i) => write!(f, "addi {d}, {a}, {i}"),
            Andi(d, a, i) => write!(f, "andi {d}, {a}, {i}"),
            Ori(d, a, i) => write!(f, "ori {d}, {a}, {i}"),
            Xori(d, a, i) => write!(f, "xori {d}, {a}, {i}"),
            Slli(d, a, s) => write!(f, "slli {d}, {a}, {s}"),
            Srli(d, a, s) => write!(f, "srli {d}, {a}, {s}"),
            Srai(d, a, s) => write!(f, "srai {d}, {a}, {s}"),
            Movi(d, i) => write!(f, "movi {d}, {i}"),
            Mov(d, a) => write!(f, "mov {d}, {a}"),
            Lw(d, b, o) => write!(f, "lw {d}, {b}, {o}"),
            Sw(v, b, o) => write!(f, "sw {v}, {b}, {o}"),
            Lbu(d, b, o) => write!(f, "lbu {d}, {b}, {o}"),
            Sb(v, b, o) => write!(f, "sb {v}, {b}, {o}"),
            Lhu(d, b, o) => write!(f, "lhu {d}, {b}, {o}"),
            Sh(v, b, o) => write!(f, "sh {v}, {b}, {o}"),
            Beq(a, b, t) => write!(f, "beq {a}, {b}, @{t}"),
            Bne(a, b, t) => write!(f, "bne {a}, {b}, @{t}"),
            Bltu(a, b, t) => write!(f, "bltu {a}, {b}, @{t}"),
            Bgeu(a, b, t) => write!(f, "bgeu {a}, {b}, @{t}"),
            Blt(a, b, t) => write!(f, "blt {a}, {b}, @{t}"),
            Bge(a, b, t) => write!(f, "bge {a}, {b}, @{t}"),
            J(t) => write!(f, "j @{t}"),
            Call(t) => write!(f, "call @{t}"),
            Ret => write!(f, "ret"),
            Jr(r) => write!(f, "jr {r}"),
            Clc => write!(f, "clc"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
            Custom(op) => {
                write!(f, "cust {}", op.name)?;
                let mut first = true;
                let mut sep = |f: &mut fmt::Formatter<'_>| -> fmt::Result {
                    if first {
                        first = false;
                        write!(f, " ")
                    } else {
                        write!(f, ", ")
                    }
                };
                for ur in &op.uregs {
                    sep(f)?;
                    write!(f, "{ur}")?;
                }
                for r in &op.regs {
                    sep(f)?;
                    write!(f, "{r}")?;
                }
                if op.imm != 0 {
                    sep(f)?;
                    write!(f, "{}", op.imm)?;
                }
                Ok(())
            }
        }
    }
}

impl Insn {
    /// General registers read by this instruction (for the load-use
    /// interlock model). Custom instructions conservatively read all
    /// their register operands.
    pub fn sources(&self) -> Vec<Reg> {
        use Insn::*;
        match self {
            Add(_, a, b)
            | Addc(_, a, b)
            | Sub(_, a, b)
            | Subc(_, a, b)
            | And(_, a, b)
            | Or(_, a, b)
            | Xor(_, a, b)
            | Sll(_, a, b)
            | Srl(_, a, b)
            | Sra(_, a, b)
            | Sltu(_, a, b)
            | Slt(_, a, b)
            | Mul(_, a, b)
            | Mulhu(_, a, b) => vec![*a, *b],
            Addi(_, a, _)
            | Andi(_, a, _)
            | Ori(_, a, _)
            | Xori(_, a, _)
            | Slli(_, a, _)
            | Srli(_, a, _)
            | Srai(_, a, _)
            | Mov(_, a) => vec![*a],
            Movi(..) => vec![],
            Lw(_, base, _) | Lbu(_, base, _) | Lhu(_, base, _) => vec![*base],
            Sw(v, base, _) | Sb(v, base, _) | Sh(v, base, _) => vec![*v, *base],
            Beq(a, b, _)
            | Bne(a, b, _)
            | Bltu(a, b, _)
            | Bgeu(a, b, _)
            | Blt(a, b, _)
            | Bge(a, b, _) => vec![*a, *b],
            J(_) | Call(_) | Clc | Nop | Halt => vec![],
            Ret => vec![Reg::RA],
            Jr(r) => vec![*r],
            Custom(op) => op.regs.clone(),
        }
    }

    /// The general register written by this instruction, if any.
    pub fn dest(&self) -> Option<Reg> {
        use Insn::*;
        match self {
            Add(d, ..)
            | Addc(d, ..)
            | Sub(d, ..)
            | Subc(d, ..)
            | And(d, ..)
            | Or(d, ..)
            | Xor(d, ..)
            | Sll(d, ..)
            | Srl(d, ..)
            | Sra(d, ..)
            | Sltu(d, ..)
            | Slt(d, ..)
            | Mul(d, ..)
            | Mulhu(d, ..)
            | Addi(d, ..)
            | Andi(d, ..)
            | Ori(d, ..)
            | Xori(d, ..)
            | Slli(d, ..)
            | Srli(d, ..)
            | Srai(d, ..)
            | Movi(d, _)
            | Mov(d, _)
            | Lw(d, ..)
            | Lbu(d, ..)
            | Lhu(d, ..) => Some(*d),
            Call(_) => Some(Reg::RA),
            _ => None,
        }
    }

    /// True for loads (which incur the load-use delay).
    pub fn is_load(&self) -> bool {
        matches!(self, Insn::Lw(..) | Insn::Lbu(..) | Insn::Lhu(..))
    }

    /// True for stores.
    pub fn is_store(&self) -> bool {
        matches!(self, Insn::Sw(..) | Insn::Sb(..) | Insn::Sh(..))
    }

    /// The access width in bytes for loads and stores, else `None`.
    pub fn mem_width(&self) -> Option<u32> {
        use Insn::*;
        match self {
            Lw(..) | Sw(..) => Some(4),
            Lhu(..) | Sh(..) => Some(2),
            Lbu(..) | Sb(..) => Some(1),
            _ => None,
        }
    }

    /// The `(base, offset)` addressing pair for loads and stores.
    pub fn mem_addr(&self) -> Option<(Reg, i32)> {
        use Insn::*;
        match self {
            Lw(_, b, off)
            | Sw(_, b, off)
            | Lbu(_, b, off)
            | Sb(_, b, off)
            | Lhu(_, b, off)
            | Sh(_, b, off) => Some((*b, *off)),
            _ => None,
        }
    }

    /// The static target of a direct control transfer (conditional
    /// branch, jump, or call), as an instruction index.
    pub fn branch_target(&self) -> Option<usize> {
        use Insn::*;
        match self {
            Beq(_, _, t)
            | Bne(_, _, t)
            | Bltu(_, _, t)
            | Bgeu(_, _, t)
            | Blt(_, _, t)
            | Bge(_, _, t)
            | J(t)
            | Call(t) => Some(*t),
            _ => None,
        }
    }

    /// True for the six conditional branches.
    pub fn is_cond_branch(&self) -> bool {
        use Insn::*;
        matches!(
            self,
            Beq(..) | Bne(..) | Bltu(..) | Bgeu(..) | Blt(..) | Bge(..)
        )
    }

    /// True when execution may continue at `pc + 1` after this
    /// instruction (calls return, conditional branches may not be
    /// taken).
    pub fn falls_through(&self) -> bool {
        use Insn::*;
        !matches!(self, J(_) | Jr(_) | Ret | Halt)
    }

    /// True when this instruction ends a basic block: any control
    /// transfer (including calls, which are block-ending for dataflow
    /// because the callee may clobber state) and simulation stops.
    pub fn ends_block(&self) -> bool {
        use Insn::*;
        self.is_cond_branch() || matches!(self, J(_) | Call(_) | Jr(_) | Ret | Halt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_uses_aliases() {
        assert_eq!(Reg::new(0).to_string(), "a0");
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::RA.to_string(), "ra");
        assert_eq!(UserReg::new(3).to_string(), "ur3");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_index_validated() {
        let _ = Reg::new(16);
    }

    #[test]
    fn sources_and_dest_for_alu() {
        let i = Insn::Add(Reg::new(1), Reg::new(2), Reg::new(3));
        assert_eq!(i.sources(), vec![Reg::new(2), Reg::new(3)]);
        assert_eq!(i.dest(), Some(Reg::new(1)));
    }

    #[test]
    fn sources_for_store_include_value_and_base() {
        let i = Insn::Sw(Reg::new(5), Reg::new(6), 8);
        assert_eq!(i.sources(), vec![Reg::new(5), Reg::new(6)]);
        assert_eq!(i.dest(), None);
    }

    #[test]
    fn call_writes_ra_ret_reads_ra() {
        assert_eq!(Insn::Call(0).dest(), Some(Reg::RA));
        assert_eq!(Insn::Ret.sources(), vec![Reg::RA]);
    }

    #[test]
    fn loads_are_loads() {
        assert!(Insn::Lw(Reg::new(0), Reg::new(1), 0).is_load());
        assert!(Insn::Lbu(Reg::new(0), Reg::new(1), 0).is_load());
        assert!(!Insn::Sw(Reg::new(0), Reg::new(1), 0).is_load());
    }
}
