//! Structural area model in NAND2 gate equivalents (GE).
//!
//! The paper obtains area numbers by synthesizing TIE descriptions with
//! Synopsys Design Compiler against the NEC CB-11 0.18 µm library. We
//! replace signed-off synthesis with a transparent structural model:
//! every custom instruction is priced as a sum of datapath building
//! blocks. The A-D-curve machinery only needs *relative, monotone*
//! areas, which this model provides; the constants are chosen to sit in
//! the plausible range for 0.18 µm-era standard-cell implementations.

/// Gate-equivalent cost of one 32-bit carry-lookahead adder.
pub const ADDER32_GE: u64 = 350;
/// Gate-equivalent cost of one 16×16 multiplier.
pub const MUL16_GE: u64 = 1_800;
/// Gate-equivalent cost of one 32×32 multiplier (with 64-bit product).
pub const MUL32_GE: u64 = 6_500;
/// Gate equivalents per register (flip-flop) bit.
pub const REG_BIT_GE: u64 = 8;
/// Gate equivalents per lookup-table bit (ROM).
pub const LUT_BIT_GE: u64 = 2;
/// Gate equivalents per 2:1 mux bit.
pub const MUX_BIT_GE: u64 = 3;
/// Gate equivalents per XOR bit.
pub const XOR_BIT_GE: u64 = 3;
/// Fixed decode/control overhead charged once per custom instruction.
pub const DECODE_GE: u64 = 150;
/// Gate equivalents per reorder-buffer entry (PC + result tag + status
/// flip-flops plus the commit-port wiring share).
pub const ROB_ENTRY_GE: u64 = 520;
/// Gate equivalents per reservation-station entry (two operand/tag
/// fields plus wake-up comparators — CAM-dominated, hence pricier than
/// a ROB slot).
pub const RS_ENTRY_GE: u64 = 680;
/// Gate equivalents per load-store-queue entry (address + data fields
/// plus the disambiguation comparators).
pub const LSQ_ENTRY_GE: u64 = 740;
/// Gate equivalents per 2-bit branch-predictor counter (two flip-flops
/// plus the indexed-array wiring share).
pub const PREDICTOR_COUNTER_GE: u64 = 22;

/// Builder for the structural area of one custom-instruction datapath.
///
/// # Examples
///
/// ```
/// use xr32::area::AreaModel;
///
/// // A 4-lane multi-precision adder with one 128-bit user register port.
/// let area = AreaModel::new()
///     .adders32(4)
///     .register_bits(128)
///     .gates();
/// assert!(area > 4 * 350);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaModel {
    gates: u64,
}

impl AreaModel {
    /// Starts an estimate containing only the per-instruction decode
    /// overhead.
    pub fn new() -> Self {
        AreaModel { gates: DECODE_GE }
    }

    /// Adds `n` 32-bit adders.
    pub fn adders32(self, n: u64) -> Self {
        self.fixed(n * ADDER32_GE)
    }

    /// Adds `n` 16×16 multipliers.
    pub fn muls16(self, n: u64) -> Self {
        self.fixed(n * MUL16_GE)
    }

    /// Adds `n` 32×32 multipliers.
    pub fn muls32(self, n: u64) -> Self {
        self.fixed(n * MUL32_GE)
    }

    /// Adds `n` bits of register (flip-flop) state.
    pub fn register_bits(self, n: u64) -> Self {
        self.fixed(n * REG_BIT_GE)
    }

    /// Adds `n` bits of ROM/lookup table.
    pub fn lut_bits(self, n: u64) -> Self {
        self.fixed(n * LUT_BIT_GE)
    }

    /// Adds `n` bits of 2:1 multiplexing.
    pub fn mux_bits(self, n: u64) -> Self {
        self.fixed(n * MUX_BIT_GE)
    }

    /// Adds `n` bits of XOR network.
    pub fn xor_bits(self, n: u64) -> Self {
        self.fixed(n * XOR_BIT_GE)
    }

    /// Adds `n` reorder-buffer entries.
    pub fn rob_entries(self, n: u64) -> Self {
        self.fixed(n * ROB_ENTRY_GE)
    }

    /// Adds `n` reservation-station entries.
    pub fn rs_entries(self, n: u64) -> Self {
        self.fixed(n * RS_ENTRY_GE)
    }

    /// Adds `n` load-store-queue entries.
    pub fn lsq_entries(self, n: u64) -> Self {
        self.fixed(n * LSQ_ENTRY_GE)
    }

    /// Adds `n` 2-bit branch-predictor counters.
    pub fn predictor_counters(self, n: u64) -> Self {
        self.fixed(n * PREDICTOR_COUNTER_GE)
    }

    /// Adds a fixed number of gates (wiring-dominated structures such as
    /// bit permutations).
    pub fn fixed(mut self, gates: u64) -> Self {
        self.gates += gates;
        self
    }

    /// Total gate-equivalent count.
    pub fn gates(self) -> u64 {
        self.gates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_model_is_decode_only() {
        assert_eq!(AreaModel::new().gates(), DECODE_GE);
    }

    #[test]
    fn costs_accumulate() {
        let a = AreaModel::new().adders32(2).register_bits(64).gates();
        assert_eq!(a, DECODE_GE + 2 * ADDER32_GE + 64 * REG_BIT_GE);
    }

    #[test]
    fn more_resources_cost_more() {
        let small = AreaModel::new().adders32(2).gates();
        let large = AreaModel::new().adders32(16).gates();
        assert!(large > small);
    }

    #[test]
    fn multiplier_dwarfs_adder() {
        const { assert!(MUL32_GE > 10 * ADDER32_GE) }
    }

    #[test]
    fn ooo_structures_accumulate() {
        let a = AreaModel::new()
            .rob_entries(32)
            .rs_entries(16)
            .lsq_entries(8)
            .predictor_counters(256)
            .gates();
        assert_eq!(
            a,
            DECODE_GE
                + 32 * ROB_ENTRY_GE
                + 16 * RS_ENTRY_GE
                + 8 * LSQ_ENTRY_GE
                + 256 * PREDICTOR_COUNTER_GE
        );
    }

    #[test]
    fn cam_entries_cost_more_than_rob_slots() {
        // Wake-up/disambiguation CAMs dominate plain status storage.
        const { assert!(RS_ENTRY_GE > ROB_ENTRY_GE) }
        const { assert!(LSQ_ENTRY_GE > RS_ENTRY_GE) }
    }
}
