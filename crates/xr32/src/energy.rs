//! Per-run energy estimation (the paper's deferred dimension).
//!
//! The paper notes that its "system design methodology and security
//! processing platform architecture result in large improvements in
//! performance **as well as energy efficiency**" but that "space
//! restrictions dictate that the discussions … be limited to performance
//! issues". This module implements the deferred half: an activity-based
//! energy model over the instruction-class counts and cache statistics
//! the simulator already collects, with constants representative of a
//! 0.18 µm embedded core.
//!
//! Battery life was the paper's second bottleneck (capacity growing
//! only 54 %/year); the energy win of custom instructions tracks their
//! cycle win because fewer issued instructions and fewer memory
//! transactions dominate the budget.

use crate::cpu::RunSummary;

/// Activity-based energy model: picojoules per event.
///
/// Defaults approximate a 0.18 µm, 1.8 V embedded core (same node as
/// the paper's prototype): ~0.2–0.5 nJ per instruction class, an order
/// of magnitude more per off-chip memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy per ALU/move instruction.
    pub alu_pj: f64,
    /// Energy per load/store (cache access included).
    pub mem_pj: f64,
    /// Energy per control-flow instruction.
    pub control_pj: f64,
    /// Energy per hardware multiply.
    pub mul_pj: f64,
    /// Energy per custom (TIE) instruction — wider datapath, but one
    /// issue replaces many scalar issues.
    pub custom_pj: f64,
    /// Energy per cache miss (off-chip access + line fill).
    pub cache_miss_pj: f64,
    /// Static/clock-tree energy per cycle.
    pub leakage_pj_per_cycle: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            alu_pj: 200.0,
            mem_pj: 450.0,
            control_pj: 250.0,
            mul_pj: 600.0,
            custom_pj: 900.0,
            cache_miss_pj: 6_000.0,
            leakage_pj_per_cycle: 50.0,
        }
    }
}

/// Energy attributed to one run, by source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyEstimate {
    /// Dynamic instruction energy in picojoules.
    pub instructions_pj: f64,
    /// Cache-miss (memory system) energy in picojoules.
    pub memory_pj: f64,
    /// Static/clock energy in picojoules.
    pub static_pj: f64,
}

impl EnergyEstimate {
    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.instructions_pj + self.memory_pj + self.static_pj
    }

    /// Total energy in microjoules.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1.0e6
    }
}

impl EnergyModel {
    /// Estimates the energy of a completed run.
    pub fn estimate(&self, summary: &RunSummary) -> EnergyEstimate {
        let c = &summary.classes;
        let instructions_pj = c.alu as f64 * self.alu_pj
            + c.mem as f64 * self.mem_pj
            + c.control as f64 * self.control_pj
            + c.mul as f64 * self.mul_pj
            + c.custom as f64 * self.custom_pj;
        let memory_pj = (summary.icache.misses + summary.dcache.misses) as f64 * self.cache_miss_pj;
        let static_pj = summary.cycles as f64 * self.leakage_pj_per_cycle;
        EnergyEstimate {
            instructions_pj,
            memory_pj,
            static_pj,
        }
    }

    /// Energy per byte for a run that processed `bytes` of payload.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn energy_per_byte_pj(&self, summary: &RunSummary, bytes: u64) -> f64 {
        assert!(bytes > 0);
        self.estimate(summary).total_pj() / bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::config::CpuConfig;
    use crate::cpu::Cpu;

    fn run(src: &str) -> RunSummary {
        let p = assemble(src).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.run(&p).expect("halts")
    }

    #[test]
    fn classes_are_counted() {
        let s = run("main:
                movi a0, 0x100
                lw   a1, a0, 0
                sw   a1, a0, 4
                mul  a2, a1, a1
                j    end
             end:
                halt");
        assert_eq!(s.classes.mem, 2);
        assert_eq!(s.classes.mul, 1);
        assert_eq!(s.classes.control, 1);
        assert!(s.classes.alu >= 1);
        assert_eq!(s.classes.total(), s.instructions);
    }

    #[test]
    fn more_work_costs_more_energy() {
        let short = run("main:\n movi a0, 1\n halt");
        let long = run("main:
                movi a0, 200
                movi a1, 0
            loop:
                addi a0, a0, -1
                bne  a0, a1, loop
                halt");
        let m = EnergyModel::default();
        assert!(m.estimate(&long).total_pj() > m.estimate(&short).total_pj());
    }

    #[test]
    fn memory_misses_dominate_when_striding() {
        let stride = run("main:
                movi a0, 64
                movi a1, 0x100
                movi a2, 0
            loop:
                lw   a3, a1, 0
                addi a1, a1, 256
                addi a0, a0, -1
                bne  a0, a2, loop
                halt");
        let m = EnergyModel::default();
        let e = m.estimate(&stride);
        assert!(
            e.memory_pj > e.instructions_pj,
            "memory {} vs insns {}",
            e.memory_pj,
            e.instructions_pj
        );
    }

    #[test]
    fn estimate_components_sum() {
        let s = run("main:\n movi a0, 1\n halt");
        let m = EnergyModel::default();
        let e = m.estimate(&s);
        assert!((e.total_pj() - (e.instructions_pj + e.memory_pj + e.static_pj)).abs() < 1e-9);
        assert!(e.total_uj() > 0.0);
    }
}
