//! Two-pass assembler for XR32 assembly text.
//!
//! The platform's cryptographic kernels (`mpn_add_n`, DES rounds, …) are
//! written in this assembly and characterized on the simulator, exactly
//! as the paper characterizes C library routines compiled for the
//! Xtensa.
//!
//! # Syntax
//!
//! ```text
//! ; comment (also #)
//! label:            ; labels may share a line with an instruction
//!     movi a2, 0x20
//! loop:
//!     lw   a3, a0, 0     ; rd, base, offset
//!     addi a0, a0, 4
//!     addc a4, a4, a3
//!     bne  a0, a1, loop
//!     cust add4 ur0, ur1, ur2, a5   ; custom instruction by name
//!     ret
//! ```
//!
//! Registers are `a0`–`a15` with aliases `sp` (= `a14`) and `ra`
//! (= `a15`); user registers are `ur0`–`ur15`. Immediates accept decimal
//! and `0x` hex with optional sign.

use crate::isa::{CustomOp, Insn, Reg, UserReg};
use std::collections::BTreeMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// An assembled program: decoded instructions plus the symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    insns: Vec<Insn>,
    labels: BTreeMap<String, usize>,
    /// Source line (1-based) of each instruction, for diagnostics.
    lines: Vec<usize>,
    /// First label name per instruction index (for fast profiling).
    names_by_pc: Vec<Option<String>>,
    /// Content fingerprint over the instruction sequence, computed once
    /// at assembly; keys per-core pre-decoded fast-path caches.
    fp: u64,
}

impl Program {
    /// The instruction sequence.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True for the empty program.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Looks up a label's instruction index.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels and their instruction indices.
    pub fn labels(&self) -> &BTreeMap<String, usize> {
        &self.labels
    }

    /// The label whose address is `pc`, preferring the lexically first.
    pub fn label_at(&self, pc: usize) -> Option<&str> {
        self.names_by_pc.get(pc).and_then(|n| n.as_deref())
    }

    /// Source line of instruction `pc`.
    pub fn line_of(&self, pc: usize) -> Option<usize> {
        self.lines.get(pc).copied()
    }

    /// Content fingerprint of the instruction sequence (branch targets
    /// are already resolved into the instructions, so equal fingerprints
    /// mean semantically identical programs). Computed once by
    /// [`assemble`], so it is O(1) per call — the fast-execution engine
    /// uses it to key its per-core decode cache.
    pub fn fingerprint(&self) -> u64 {
        self.fp
    }

    /// Global labels — those not starting with `.`. By the kernel
    /// libraries' convention these are the host-callable entry points,
    /// while `.name` labels are function-local branch targets.
    pub fn global_labels(&self) -> impl Iterator<Item = (&str, usize)> {
        self.labels
            .iter()
            .filter(|(name, _)| !name.starts_with('.'))
            .map(|(name, &at)| (name.as_str(), at))
    }
}

/// Error produced when assembly fails, with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembleError {
    /// 1-based line number.
    pub line: usize,
    /// Failure description.
    pub message: String,
}

impl fmt::Display for AssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AssembleError {}

fn err(line: usize, message: impl Into<String>) -> AssembleError {
    AssembleError {
        line,
        message: message.into(),
    }
}

/// Assembles XR32 source text into a [`Program`].
///
/// # Errors
///
/// Returns [`AssembleError`] on unknown mnemonics, malformed operands,
/// out-of-range immediates, duplicate labels, or undefined branch
/// targets.
///
/// # Examples
///
/// ```
/// use xr32::asm::assemble;
///
/// let p = assemble("start: movi a0, 1\n j start")?;
/// assert_eq!(p.len(), 2);
/// assert_eq!(p.label("start"), Some(0));
/// # Ok::<(), xr32::asm::AssembleError>(())
/// ```
pub fn assemble(src: &str) -> Result<Program, AssembleError> {
    // Pass 1: strip comments, record labels, collect (line_no, stmt).
    let mut stmts: Vec<(usize, String)> = Vec::new();
    let mut labels: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, raw) in src.lines().enumerate() {
        let line_no = idx + 1;
        let mut text = raw;
        if let Some(p) = text.find([';', '#']) {
            text = &text[..p];
        }
        let mut rest = text.trim();
        // Peel off any number of labels.
        while let Some(colon) = rest.find(':') {
            let (head, tail) = rest.split_at(colon);
            let name = head.trim();
            if !is_ident(name) {
                return Err(err(line_no, format!("invalid label name {name:?}")));
            }
            if labels.insert(name.to_owned(), stmts.len()).is_some() {
                return Err(err(line_no, format!("duplicate label {name:?}")));
            }
            rest = tail[1..].trim();
        }
        if !rest.is_empty() {
            stmts.push((line_no, rest.to_owned()));
        }
    }

    // Pass 2: parse each statement.
    let mut insns = Vec::with_capacity(stmts.len());
    let mut lines = Vec::with_capacity(stmts.len());
    for (line_no, stmt) in &stmts {
        let insn = parse_stmt(*line_no, stmt, &labels)?;
        insns.push(insn);
        lines.push(*line_no);
    }
    let mut names_by_pc: Vec<Option<String>> = vec![None; insns.len()];
    for (name, &at) in &labels {
        if at < names_by_pc.len() && names_by_pc[at].is_none() {
            names_by_pc[at] = Some(name.clone());
        }
    }
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    insns.hash(&mut hasher);
    let fp = hasher.finish();
    Ok(Program {
        insns,
        labels,
        lines,
        names_by_pc,
        fp,
    })
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn parse_stmt(
    line: usize,
    stmt: &str,
    labels: &BTreeMap<String, usize>,
) -> Result<Insn, AssembleError> {
    let (mnemonic, ops_text) = match stmt.find(char::is_whitespace) {
        Some(p) => (&stmt[..p], stmt[p..].trim()),
        None => (stmt, ""),
    };
    let mnemonic = mnemonic.to_ascii_lowercase();
    let ops: Vec<&str> = if ops_text.is_empty() {
        Vec::new()
    } else {
        ops_text.split(',').map(str::trim).collect()
    };

    let reg = |i: usize| -> Result<Reg, AssembleError> {
        parse_reg(
            ops.get(i)
                .copied()
                .ok_or_else(|| err(line, format!("`{mnemonic}` missing operand {}", i + 1)))?,
        )
        .ok_or_else(|| err(line, format!("expected register, found {:?}", ops[i])))
    };
    let imm = |i: usize, lo: i64, hi: i64| -> Result<i32, AssembleError> {
        let text = ops
            .get(i)
            .copied()
            .ok_or_else(|| err(line, format!("`{mnemonic}` missing operand {}", i + 1)))?;
        let v = parse_imm(text).ok_or_else(|| err(line, format!("bad immediate {text:?}")))?;
        if v < lo || v > hi {
            return Err(err(
                line,
                format!("immediate {v} out of range [{lo}, {hi}] for `{mnemonic}`"),
            ));
        }
        Ok(v as i32)
    };
    let target = |i: usize| -> Result<usize, AssembleError> {
        let text = ops
            .get(i)
            .copied()
            .ok_or_else(|| err(line, format!("`{mnemonic}` missing target")))?;
        labels
            .get(text)
            .copied()
            .ok_or_else(|| err(line, format!("undefined label {text:?}")))
    };
    let arity = |n: usize| -> Result<(), AssembleError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mnemonic}` expects {n} operands, found {}", ops.len()),
            ))
        }
    };

    let insn = match mnemonic.as_str() {
        "add" => {
            arity(3)?;
            Insn::Add(reg(0)?, reg(1)?, reg(2)?)
        }
        "addc" => {
            arity(3)?;
            Insn::Addc(reg(0)?, reg(1)?, reg(2)?)
        }
        "sub" => {
            arity(3)?;
            Insn::Sub(reg(0)?, reg(1)?, reg(2)?)
        }
        "subc" => {
            arity(3)?;
            Insn::Subc(reg(0)?, reg(1)?, reg(2)?)
        }
        "and" => {
            arity(3)?;
            Insn::And(reg(0)?, reg(1)?, reg(2)?)
        }
        "or" => {
            arity(3)?;
            Insn::Or(reg(0)?, reg(1)?, reg(2)?)
        }
        "xor" => {
            arity(3)?;
            Insn::Xor(reg(0)?, reg(1)?, reg(2)?)
        }
        "sll" => {
            arity(3)?;
            Insn::Sll(reg(0)?, reg(1)?, reg(2)?)
        }
        "srl" => {
            arity(3)?;
            Insn::Srl(reg(0)?, reg(1)?, reg(2)?)
        }
        "sra" => {
            arity(3)?;
            Insn::Sra(reg(0)?, reg(1)?, reg(2)?)
        }
        "sltu" => {
            arity(3)?;
            Insn::Sltu(reg(0)?, reg(1)?, reg(2)?)
        }
        "slt" => {
            arity(3)?;
            Insn::Slt(reg(0)?, reg(1)?, reg(2)?)
        }
        "mul" => {
            arity(3)?;
            Insn::Mul(reg(0)?, reg(1)?, reg(2)?)
        }
        "mulhu" => {
            arity(3)?;
            Insn::Mulhu(reg(0)?, reg(1)?, reg(2)?)
        }
        "addi" => {
            arity(3)?;
            Insn::Addi(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "andi" => {
            arity(3)?;
            Insn::Andi(reg(0)?, reg(1)?, imm(2, 0, 4095)? as u32)
        }
        "ori" => {
            arity(3)?;
            Insn::Ori(reg(0)?, reg(1)?, imm(2, 0, 4095)? as u32)
        }
        "xori" => {
            arity(3)?;
            Insn::Xori(reg(0)?, reg(1)?, imm(2, 0, 4095)? as u32)
        }
        "slli" => {
            arity(3)?;
            Insn::Slli(reg(0)?, reg(1)?, imm(2, 0, 31)? as u32)
        }
        "srli" => {
            arity(3)?;
            Insn::Srli(reg(0)?, reg(1)?, imm(2, 0, 31)? as u32)
        }
        "srai" => {
            arity(3)?;
            Insn::Srai(reg(0)?, reg(1)?, imm(2, 0, 31)? as u32)
        }
        "movi" => {
            arity(2)?;
            Insn::Movi(reg(0)?, imm(1, i32::MIN as i64, u32::MAX as i64)?)
        }
        "mov" => {
            arity(2)?;
            Insn::Mov(reg(0)?, reg(1)?)
        }
        "lw" => {
            arity(3)?;
            Insn::Lw(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "sw" => {
            arity(3)?;
            Insn::Sw(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "lbu" => {
            arity(3)?;
            Insn::Lbu(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "sb" => {
            arity(3)?;
            Insn::Sb(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "lhu" => {
            arity(3)?;
            Insn::Lhu(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "sh" => {
            arity(3)?;
            Insn::Sh(reg(0)?, reg(1)?, imm(2, -2048, 2047)?)
        }
        "beq" => {
            arity(3)?;
            Insn::Beq(reg(0)?, reg(1)?, target(2)?)
        }
        "bne" => {
            arity(3)?;
            Insn::Bne(reg(0)?, reg(1)?, target(2)?)
        }
        "bltu" => {
            arity(3)?;
            Insn::Bltu(reg(0)?, reg(1)?, target(2)?)
        }
        "bgeu" => {
            arity(3)?;
            Insn::Bgeu(reg(0)?, reg(1)?, target(2)?)
        }
        "blt" => {
            arity(3)?;
            Insn::Blt(reg(0)?, reg(1)?, target(2)?)
        }
        "bge" => {
            arity(3)?;
            Insn::Bge(reg(0)?, reg(1)?, target(2)?)
        }
        "j" => {
            arity(1)?;
            Insn::J(target(0)?)
        }
        "call" => {
            arity(1)?;
            Insn::Call(target(0)?)
        }
        "jr" => {
            arity(1)?;
            Insn::Jr(reg(0)?)
        }
        "ret" => {
            arity(0)?;
            Insn::Ret
        }
        "clc" => {
            arity(0)?;
            Insn::Clc
        }
        "nop" => {
            arity(0)?;
            Insn::Nop
        }
        "halt" => {
            arity(0)?;
            Insn::Halt
        }
        "cust" => {
            if ops.is_empty() {
                return Err(err(line, "`cust` needs an instruction name"));
            }
            // First operand token is the name; it may be fused with the
            // first real operand by whitespace.
            let mut parts = ops[0].splitn(2, char::is_whitespace);
            let name = parts.next().expect("nonempty").to_owned();
            let mut rest: Vec<&str> = Vec::new();
            if let Some(tail) = parts.next() {
                let t = tail.trim();
                if !t.is_empty() {
                    rest.push(t);
                }
            }
            rest.extend(ops.iter().skip(1).copied());
            let mut regs = Vec::new();
            let mut uregs = Vec::new();
            let mut imm_val: Option<i32> = None;
            for tok in rest {
                if let Some(ur) = parse_ureg(tok) {
                    uregs.push(ur);
                } else if let Some(r) = parse_reg(tok) {
                    regs.push(r);
                } else if let Some(v) = parse_imm(tok) {
                    if imm_val.is_some() {
                        return Err(err(line, "custom instruction takes at most one immediate"));
                    }
                    imm_val = Some(v as i32);
                } else {
                    return Err(err(line, format!("bad custom operand {tok:?}")));
                }
            }
            Insn::Custom(CustomOp {
                name,
                regs,
                uregs,
                imm: imm_val.unwrap_or(0),
            })
        }
        other => return Err(err(line, format!("unknown mnemonic `{other}`"))),
    };
    Ok(insn)
}

fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim();
    match s {
        "sp" => return Some(Reg::SP),
        "ra" => return Some(Reg::RA),
        _ => {}
    }
    let rest = s.strip_prefix('a')?;
    let n: u8 = rest.parse().ok()?;
    if n < 16 {
        Some(Reg::new(n))
    } else {
        None
    }
}

fn parse_ureg(s: &str) -> Option<UserReg> {
    let rest = s.trim().strip_prefix("ur")?;
    let n: u8 = rest.parse().ok()?;
    if n < 16 {
        Some(UserReg::new(n))
    } else {
        None
    }
}

fn parse_imm(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "start:
                movi a0, 10
                movi a1, 0
            loop:
                add  a1, a1, a0
                addi a0, a0, -1
                bne  a0, a2, loop
                halt",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("loop"), Some(2));
        assert_eq!(
            p.insns()[2],
            Insn::Add(Reg::new(1), Reg::new(1), Reg::new(0))
        );
    }

    #[test]
    fn labels_can_share_line_with_insn() {
        let p = assemble("a: b: nop").unwrap();
        assert_eq!(p.label("a"), Some(0));
        assert_eq!(p.label("b"), Some(0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn comments_are_stripped() {
        let p = assemble("; full line\n nop ; trailing\n # hash\n nop # x").unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn register_aliases_parse() {
        let p = assemble("mov sp, ra").unwrap();
        assert_eq!(p.insns()[0], Insn::Mov(Reg::SP, Reg::RA));
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("movi a0, 0xdeadbeef\n addi a1, a1, -4").unwrap();
        assert_eq!(p.insns()[0], Insn::Movi(Reg::new(0), 0xdeadbeefu32 as i32));
        assert_eq!(p.insns()[1], Insn::Addi(Reg::new(1), Reg::new(1), -4));
    }

    #[test]
    fn custom_instruction_operands_sorted_by_kind() {
        let p = assemble("cust add4 ur0, ur1, a3, 16").unwrap();
        match &p.insns()[0] {
            Insn::Custom(op) => {
                assert_eq!(op.name, "add4");
                assert_eq!(op.uregs, vec![UserReg::new(0), UserReg::new(1)]);
                assert_eq!(op.regs, vec![Reg::new(3)]);
                assert_eq!(op.imm, 16);
            }
            other => panic!("expected custom, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\n bogus a0").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble("j nowhere").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn immediate_range_enforced() {
        assert!(assemble("addi a0, a0, 5000").is_err());
        assert!(assemble("slli a0, a0, 32").is_err());
        assert!(assemble("andi a0, a0, -1").is_err());
        assert!(assemble("addi a0, a0, 2047").is_ok());
    }

    #[test]
    fn arity_enforced() {
        assert!(assemble("add a0, a1").is_err());
        assert!(assemble("ret a0").is_err());
    }

    #[test]
    fn forward_references_resolve() {
        let p = assemble("j end\n nop\n end: halt").unwrap();
        assert_eq!(p.insns()[0], Insn::J(2));
    }

    #[test]
    fn line_of_maps_back_to_source() {
        let p = assemble("\n\n nop\n\n halt").unwrap();
        assert_eq!(p.line_of(0), Some(3));
        assert_eq!(p.line_of(1), Some(5));
    }
}
