//! The scoreboarded out-of-order pipeline model (`ooo-…` core family).
//!
//! # Design
//!
//! Instructions execute **functionally in program order** — the exact
//! semantic code paths, fault-plan consultations and error returns of
//! the in-order core — so the architectural state is bit-identical to
//! [`InOrderCore`](super::InOrderCore) and the `xjit` fast path by
//! construction. What differs is *when* the clock says each
//! instruction happened: the model books every instruction through an
//! analytic dataflow scoreboard that mirrors the classic Tomasulo
//! structures:
//!
//! - a **2-bit branch predictor** (per-PC saturating counters):
//!   correctly predicted branches cost nothing; a mispredict restarts
//!   the front end `branch_penalty` cycles after the branch resolves.
//!   Unconditional transfers (`j`/`call`/`ret`/`jr`) are treated as
//!   BTB/return-stack hits;
//! - a **reorder buffer** (ROB): dispatch stalls when all
//!   [`OooParams::rob_entries`] are occupied by uncommitted
//!   instructions, bounding run-ahead;
//! - **register renaming**: only true (RAW) dependences wait — the
//!   per-register table holds result *completion* times, and every
//!   writer simply overwrites its slot (WAW/WAR never stall);
//! - **reservation stations**: dispatch stalls when all
//!   [`OooParams::rs_entries`] in-flight instructions are still
//!   executing (entries free at execution completion, in any order);
//! - a **load-store queue**: at most [`OooParams::lsq_entries`] memory
//!   operations in flight (entries free at commit);
//! - **issue/retire width**: at most [`OooParams::issue_width`]
//!   dispatches and [`OooParams::retire_width`] commits per cycle,
//!   both in program order.
//!
//! Cache behavior is identical to the in-order core (same accesses, in
//! the same order, against the same `Cache` state), so hit/miss
//! *counts* agree exactly; only the cycles a miss costs land
//! differently — an I-miss delays the front end, a D-miss lengthens
//! that operation's execution instead of stalling the whole machine.
//!
//! Trace events are emitted at **commit** time, so the event stream's
//! cycle field is monotone and call-tree cycle attribution balances
//! exactly as it does in order. Stall events are not emitted (there is
//! no single architectural stall point); mispredicted branches emit
//! the `TakenBranch` event carrying the refill penalty.

use super::{CoreEnv, CoreKind, CoreModel, ExecOutcome};
use crate::area::AreaModel;
use crate::asm::Program;
use crate::cpu::{ClassCounts, SimError, RETURN_SENTINEL};
use crate::ext::ExecCtx;
use crate::isa::{Insn, Reg};
use std::collections::VecDeque;
use xobs::trace::{TraceEvent, TraceSink};

/// Structure widths of one out-of-order core configuration.
///
/// The defaults describe a modest dual-issue machine appropriate for
/// the paper's 0.18 µm embedded setting; the fields are public so the
/// design-space exploration can enumerate family members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooParams {
    /// Instructions renamed/dispatched per cycle.
    pub issue_width: u32,
    /// Instructions committed per cycle.
    pub retire_width: u32,
    /// Reorder-buffer entries (bounds run-ahead).
    pub rob_entries: u32,
    /// Reservation-station entries (bounds in-flight execution).
    pub rs_entries: u32,
    /// Load-store-queue entries (bounds in-flight memory operations).
    pub lsq_entries: u32,
    /// 2-bit branch-predictor counters (direct-mapped by PC).
    pub predictor_entries: u32,
}

impl Default for OooParams {
    fn default() -> Self {
        OooParams {
            issue_width: 2,
            retire_width: 2,
            rob_entries: 32,
            rs_entries: 16,
            lsq_entries: 8,
            predictor_entries: 256,
        }
    }
}

impl OooParams {
    /// The *CoreConfigId* for this member of the family, with every
    /// width encoded: `ooo-i<issue>x<retire>-r<rob>s<rs>l<lsq>b<pred>`.
    pub fn id(&self) -> String {
        format!(
            "ooo-i{}x{}-r{}s{}l{}b{}",
            self.issue_width,
            self.retire_width,
            self.rob_entries,
            self.rs_entries,
            self.lsq_entries,
            self.predictor_entries
        )
    }

    /// Structural gate cost of the out-of-order machinery (see
    /// [`crate::area`] for the per-entry constants).
    pub fn area_gates(&self) -> u64 {
        AreaModel::new()
            .rob_entries(self.rob_entries as u64)
            .rs_entries(self.rs_entries as u64)
            .lsq_entries(self.lsq_entries as u64)
            .predictor_counters(self.predictor_entries as u64)
            .gates()
    }
}

/// The out-of-order timing model. Holds the branch-predictor counter
/// table (the only scoreboard state that persists across runs — ROB,
/// reservation stations and the LSQ drain between runs by definition).
#[derive(Debug, Clone)]
pub struct OooCore {
    params: OooParams,
    /// 2-bit saturating counters, direct-mapped by PC; `>= 2` predicts
    /// taken. Reset (to strongly-not-taken) by `reset_timing`.
    counters: Vec<u8>,
}

impl OooCore {
    /// Builds a core with all-zero (strongly-not-taken) predictor
    /// state.
    pub fn new(params: OooParams) -> Self {
        let entries = params.predictor_entries.max(1) as usize;
        OooCore {
            params,
            counters: vec![0; entries],
        }
    }

    /// The configured structure widths.
    pub fn params(&self) -> &OooParams {
        &self.params
    }
}

impl CoreModel for OooCore {
    fn kind(&self) -> CoreKind {
        CoreKind::OutOfOrder
    }

    fn reset_timing(&mut self) {
        self.counters.fill(0);
    }

    fn execute(
        &mut self,
        env: CoreEnv<'_>,
        program: &Program,
        entry: usize,
        entry_name: &str,
        mut sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<ExecOutcome, SimError> {
        let p = self.params;
        let base = *env.cycles;
        let mut executed: u64 = 0;
        let mut classes = ClassCounts::default();
        let mut pc = entry;
        let mut trace_depth: u64 = 0;
        if let Some(s) = sink.as_deref_mut() {
            s.on_event(&TraceEvent::Call {
                pc: entry as u32,
                callee: entry_name,
                cycle: base,
            });
            trace_depth = 1;
        }
        let mut halted = false;

        // Scoreboard clocks and occupancy rings. The ROB and LSQ free
        // entries at commit (in program order); reservation stations
        // free at execution completion (any order).
        let mut fetch_cycle = base;
        let mut last_dispatch = base;
        let mut last_commit = base;
        let mut rob: VecDeque<u64> = VecDeque::with_capacity(p.rob_entries as usize);
        let mut rs: Vec<u64> = Vec::with_capacity(p.rs_entries as usize);
        let mut lsq: VecDeque<u64> = VecDeque::with_capacity(p.lsq_entries as usize);
        let mut disp_slots: VecDeque<u64> = VecDeque::with_capacity(p.issue_width as usize);
        let mut commit_slots: VecDeque<u64> = VecDeque::with_capacity(p.retire_width as usize);

        // On an early error the clock must still reflect the work done
        // (the counter is monotone across runs on one core).
        macro_rules! bail {
            ($e:expr) => {{
                *env.cycles = last_commit.max(fetch_cycle);
                return Err($e);
            }};
        }

        loop {
            if pc == RETURN_SENTINEL as usize {
                break; // clean return from a `call`
            }
            let insn = match program.insns().get(pc) {
                Some(i) => i,
                None => bail!(SimError::PcOutOfRange { pc }),
            };
            if executed >= env.fuel {
                bail!(SimError::OutOfFuel { executed });
            }
            executed += 1;
            match insn {
                Insn::Lw(..)
                | Insn::Sw(..)
                | Insn::Lbu(..)
                | Insn::Sb(..)
                | Insn::Lhu(..)
                | Insn::Sh(..) => classes.mem += 1,
                Insn::Beq(..)
                | Insn::Bne(..)
                | Insn::Bltu(..)
                | Insn::Bgeu(..)
                | Insn::Blt(..)
                | Insn::Bge(..)
                | Insn::J(_)
                | Insn::Call(_)
                | Insn::Ret
                | Insn::Jr(_) => classes.control += 1,
                Insn::Mul(..) | Insn::Mulhu(..) => classes.mul += 1,
                Insn::Custom(_) => classes.custom += 1,
                _ => classes.alu += 1,
            }

            // Front end: fetch through the I-cache; a miss delays the
            // fetch stream, not the whole machine.
            if !env.icache.access(pc as u64 * 4) {
                fetch_cycle += env.config.mem_latency as u64;
            }

            // Rename/dispatch: in program order, bounded by the issue
            // width and by a free ROB entry and reservation station.
            let mut disp = last_dispatch.max(fetch_cycle + 1);
            if rob.len() == p.rob_entries as usize {
                if let Some(free_at) = rob.pop_front() {
                    disp = disp.max(free_at);
                }
            }
            if rs.len() == p.rs_entries as usize {
                let min_ix = (0..rs.len())
                    .min_by_key(|&i| rs[i])
                    .expect("non-empty reservation stations");
                disp = disp.max(rs.swap_remove(min_ix));
            }
            if disp_slots.len() == p.issue_width.max(1) as usize {
                let oldest = disp_slots.pop_front().expect("full dispatch window");
                if disp <= oldest {
                    disp = oldest + 1;
                }
            }
            last_dispatch = disp;
            disp_slots.push_back(disp);

            // Wake-up: renamed operands wait only on true (RAW)
            // dependences — the completion time of the latest writer.
            let mut ready = disp;
            for src in insn.sources() {
                ready = ready.max(env.reg_ready[src.index()]);
            }
            let is_mem = insn.is_load() || insn.is_store();
            if is_mem && lsq.len() == p.lsq_entries as usize {
                if let Some(free_at) = lsq.pop_front() {
                    ready = ready.max(free_at);
                }
            }

            let mut next_pc = pc + 1;
            let mut taken = false;
            let mut returned = false;
            // Execution latency of this instruction once its operands
            // arrive; D-cache misses lengthen it below.
            let mut exec_lat: u64 = 1;
            let mut call_ev: Option<&str> = None;
            let mut custom_ev: Option<(&str, u32)> = None;

            macro_rules! rd {
                ($r:expr) => {
                    env.regs[$r.index()]
                };
            }

            // Functional semantics: identical architectural effects,
            // fault-plan consultations and error paths to the in-order
            // core — only the cycle bookkeeping differs.
            match insn {
                Insn::Add(d, a, b) => env.regs[d.index()] = rd!(a).wrapping_add(rd!(b)),
                Insn::Addc(d, a, b) => {
                    let t = rd!(a) as u64 + rd!(b) as u64 + *env.carry as u64;
                    env.regs[d.index()] = t as u32;
                    *env.carry = t >> 32 != 0;
                }
                Insn::Sub(d, a, b) => env.regs[d.index()] = rd!(a).wrapping_sub(rd!(b)),
                Insn::Subc(d, a, b) => {
                    let t = (rd!(a) as u64)
                        .wrapping_sub(rd!(b) as u64)
                        .wrapping_sub(*env.carry as u64);
                    env.regs[d.index()] = t as u32;
                    *env.carry = t >> 32 != 0;
                }
                Insn::And(d, a, b) => env.regs[d.index()] = rd!(a) & rd!(b),
                Insn::Or(d, a, b) => env.regs[d.index()] = rd!(a) | rd!(b),
                Insn::Xor(d, a, b) => env.regs[d.index()] = rd!(a) ^ rd!(b),
                Insn::Sll(d, a, b) => env.regs[d.index()] = rd!(a) << (rd!(b) & 31),
                Insn::Srl(d, a, b) => env.regs[d.index()] = rd!(a) >> (rd!(b) & 31),
                Insn::Sra(d, a, b) => {
                    env.regs[d.index()] = ((rd!(a) as i32) >> (rd!(b) & 31)) as u32
                }
                Insn::Sltu(d, a, b) => env.regs[d.index()] = (rd!(a) < rd!(b)) as u32,
                Insn::Slt(d, a, b) => {
                    env.regs[d.index()] = ((rd!(a) as i32) < (rd!(b) as i32)) as u32
                }
                Insn::Mul(d, a, b) | Insn::Mulhu(d, a, b) => {
                    if !env.config.has_mul {
                        bail!(SimError::Illegal {
                            pc,
                            reason: "mul requires the hardware-multiplier option".into(),
                        });
                    }
                    let t = rd!(a) as u64 * rd!(b) as u64;
                    env.regs[d.index()] = if matches!(insn, Insn::Mul(..)) {
                        t as u32
                    } else {
                        (t >> 32) as u32
                    };
                    exec_lat = env.config.mul_latency.max(1) as u64;
                }
                Insn::Addi(d, a, imm) => env.regs[d.index()] = rd!(a).wrapping_add(*imm as u32),
                Insn::Andi(d, a, imm) => env.regs[d.index()] = rd!(a) & imm,
                Insn::Ori(d, a, imm) => env.regs[d.index()] = rd!(a) | imm,
                Insn::Xori(d, a, imm) => env.regs[d.index()] = rd!(a) ^ imm,
                Insn::Slli(d, a, sh) => env.regs[d.index()] = rd!(a) << sh,
                Insn::Srli(d, a, sh) => env.regs[d.index()] = rd!(a) >> sh,
                Insn::Srai(d, a, sh) => env.regs[d.index()] = ((rd!(a) as i32) >> sh) as u32,
                Insn::Movi(d, imm) => env.regs[d.index()] = *imm as u32,
                Insn::Mov(d, a) => env.regs[d.index()] = rd!(a),
                Insn::Lw(d, base_r, off)
                | Insn::Lbu(d, base_r, off)
                | Insn::Lhu(d, base_r, off) => {
                    let addr = rd!(base_r).wrapping_add(*off as u32);
                    if let Some(f) = env.fault.as_mut() {
                        if f.cache_tag() {
                            env.dcache.invalidate(addr as u64);
                        }
                    }
                    if !env.dcache.access(addr as u64) {
                        exec_lat += env.config.mem_latency as u64;
                    }
                    let v = match insn {
                        Insn::Lw(..) => env.mem.load_u32(addr),
                        Insn::Lbu(..) => env.mem.load_u8(addr).map(u32::from),
                        _ => env.mem.load_u16(addr).map(u32::from),
                    };
                    let v = match v {
                        Ok(v) => v,
                        Err(source) => bail!(SimError::Mem { pc, source }),
                    };
                    let v = match env.fault.as_mut() {
                        Some(f) => f.data(v),
                        None => v,
                    };
                    env.regs[d.index()] = v;
                }
                Insn::Sw(v, base_r, off) | Insn::Sb(v, base_r, off) | Insn::Sh(v, base_r, off) => {
                    let addr = rd!(base_r).wrapping_add(*off as u32);
                    if let Some(f) = env.fault.as_mut() {
                        if f.cache_tag() {
                            env.dcache.invalidate(addr as u64);
                        }
                    }
                    if !env.dcache.access(addr as u64) {
                        exec_lat += env.config.mem_latency as u64;
                    }
                    let val = rd!(v);
                    let stored = match insn {
                        Insn::Sw(..) => env.mem.store_u32(addr, val),
                        Insn::Sb(..) => env.mem.store_u8(addr, val as u8),
                        _ => env.mem.store_u16(addr, val as u16),
                    };
                    if let Err(source) = stored {
                        bail!(SimError::Mem { pc, source });
                    }
                }
                Insn::Beq(a, b, t) => {
                    if rd!(a) == rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bne(a, b, t) => {
                    if rd!(a) != rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bltu(a, b, t) => {
                    if rd!(a) < rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bgeu(a, b, t) => {
                    if rd!(a) >= rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Blt(a, b, t) => {
                    if (rd!(a) as i32) < (rd!(b) as i32) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bge(a, b, t) => {
                    if (rd!(a) as i32) >= (rd!(b) as i32) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::J(t) => {
                    next_pc = *t;
                    taken = true;
                }
                Insn::Call(t) => {
                    env.regs[Reg::RA.index()] = (pc + 1) as u32;
                    call_ev = Some(program.label_at(*t).unwrap_or("<anon>"));
                    next_pc = *t;
                    taken = true;
                }
                Insn::Ret => {
                    next_pc = env.regs[Reg::RA.index()] as usize;
                    taken = true;
                    returned = true;
                }
                Insn::Jr(r) => {
                    next_pc = rd!(r) as usize;
                    taken = true;
                }
                Insn::Clc => *env.carry = false,
                Insn::Nop => {}
                Insn::Halt => halted = true,
                Insn::Custom(op) => {
                    let def = match env.ext.get(&op.name) {
                        Some(def) => def,
                        None => bail!(SimError::Illegal {
                            pc,
                            reason: format!("unknown custom instruction `{}`", op.name),
                        }),
                    };
                    let exec = def.exec.clone();
                    let latency = def.latency;
                    let mut ctx = ExecCtx {
                        regs: env.regs,
                        uregs: env.uregs,
                        mem: env.mem,
                        carry: env.carry,
                    };
                    if let Err(source) = exec(&mut ctx, op) {
                        bail!(SimError::Custom { pc, source });
                    }
                    exec_lat = latency.max(1) as u64;
                    if let Some(f) = env.fault.as_mut() {
                        if let Some(mask) = f.custom_result() {
                            // Stuck-at-one fault on one line of the
                            // result bus (destination register).
                            if let Some(d) = op.regs.first() {
                                env.regs[d.index()] |= mask;
                            }
                        }
                    }
                    custom_ev = Some((&op.name, latency));
                }
            }

            let exec_done = ready + exec_lat;
            rs.push(exec_done);

            // Rename-table update: the destination's value exists once
            // execution completes (full bypass — consumers issue
            // against completion, never against commit).
            if let Some(d) = insn.dest() {
                env.reg_ready[d.index()] = exec_done;
            } else if let Insn::Custom(op) = insn {
                // Custom instructions write their first register
                // operand (the same convention the fault hook uses).
                if let Some(d) = op.regs.first() {
                    env.reg_ready[d.index()] = exec_done;
                }
            }

            // Branch prediction: conditional branches consult and train
            // the 2-bit counter table; unconditional transfers are
            // BTB/return-stack hits. A mispredict restarts the front
            // end a refill after the branch resolves.
            let mut mispredicted = false;
            if matches!(
                insn,
                Insn::Beq(..)
                    | Insn::Bne(..)
                    | Insn::Bltu(..)
                    | Insn::Bgeu(..)
                    | Insn::Blt(..)
                    | Insn::Bge(..)
            ) {
                let ix = pc % self.counters.len();
                let predict_taken = self.counters[ix] >= 2;
                mispredicted = predict_taken != taken;
                self.counters[ix] = if taken {
                    (self.counters[ix] + 1).min(3)
                } else {
                    self.counters[ix].saturating_sub(1)
                };
            }
            if mispredicted {
                fetch_cycle = fetch_cycle.max(exec_done) + env.config.branch_penalty as u64;
            }

            // Commit: in program order, bounded by the retire width.
            let mut commit = last_commit.max(exec_done);
            if commit_slots.len() == p.retire_width.max(1) as usize {
                let oldest = commit_slots.pop_front().expect("full commit window");
                if commit <= oldest {
                    commit = oldest + 1;
                }
            }
            last_commit = commit;
            commit_slots.push_back(commit);
            rob.push_back(commit);
            if is_mem {
                lsq.push_back(commit);
            }

            if let Some(s) = sink.as_deref_mut() {
                if let Some(callee) = call_ev {
                    s.on_event(&TraceEvent::Call {
                        pc: pc as u32,
                        callee,
                        cycle: commit,
                    });
                    trace_depth += 1;
                }
                if let Some((name, latency)) = custom_ev {
                    s.on_event(&TraceEvent::Custom {
                        pc: pc as u32,
                        name,
                        latency,
                        cycle: commit,
                    });
                }
                if mispredicted {
                    s.on_event(&TraceEvent::TakenBranch {
                        pc: pc as u32,
                        target: next_pc as u32,
                        penalty: env.config.branch_penalty,
                        cycle: commit,
                    });
                }
            }
            if let Some(f) = env.fault.as_mut() {
                // One register-file upset opportunity per retired
                // instruction (same hook cadence as the in-order core,
                // so fault streams agree across core models).
                if let Some((r, mask)) = f.regfile(env.regs.len()) {
                    env.regs[r] ^= mask;
                }
            }
            if let Some(s) = sink.as_deref_mut() {
                if returned && trace_depth > 0 {
                    s.on_event(&TraceEvent::Ret {
                        pc: pc as u32,
                        cycle: commit,
                    });
                    trace_depth -= 1;
                }
                s.on_event(&TraceEvent::Retire {
                    pc: pc as u32,
                    cycle: commit,
                });
            }
            if halted {
                break;
            }
            pc = next_pc;
        }

        // The run's clock is the commit time of its last instruction.
        *env.cycles = last_commit;
        if let Some(s) = sink {
            while trace_depth > 0 {
                s.on_event(&TraceEvent::Ret {
                    pc: pc as u32,
                    cycle: last_commit,
                });
                trace_depth -= 1;
            }
            s.flush();
        }

        Ok(ExecOutcome { executed, classes })
    }
}

#[cfg(test)]
mod tests {
    use crate::asm::assemble;
    use crate::config::CpuConfig;
    use crate::cpu::Cpu;
    use crate::xcore::{CoreSpec, OooParams};

    fn ooo_cpu() -> Cpu {
        Cpu::new(CpuConfig::ooo())
    }

    fn io_cpu() -> Cpu {
        Cpu::new(CpuConfig::default())
    }

    fn loop_program() -> crate::asm::Program {
        // Sum 16 words: a tight loop with a load, dependent add and a
        // backward branch — the predictor's bread and butter.
        assemble(
            "main:
                movi a0, 0x100
                movi a1, 16
                movi a2, 0
                movi a4, 0
            loop:
                lw   a3, a0, 0
                add  a2, a2, a3
                addi a0, a0, 4
                addi a1, a1, -1
                bne  a1, a4, loop
                halt",
        )
        .unwrap()
    }

    #[test]
    fn ooo_matches_inorder_architecturally() {
        let p = loop_program();
        let mut io = io_cpu();
        io.mem_mut().write_words(0x100, &[3; 16]).unwrap();
        let s_io = io.run(&p).unwrap();
        let mut ooo = ooo_cpu();
        ooo.mem_mut().write_words(0x100, &[3; 16]).unwrap();
        let s_ooo = ooo.run(&p).unwrap();
        for i in 0..16 {
            assert_eq!(io.reg(i), ooo.reg(i), "register a{i} diverged");
        }
        assert_eq!(io.reg(2), 48);
        assert_eq!(s_io.instructions, s_ooo.instructions);
        assert_eq!(s_io.dcache.misses, s_ooo.dcache.misses, "same accesses");
        assert_eq!(s_io.icache.misses, s_ooo.icache.misses);
    }

    #[test]
    fn ooo_is_faster_on_a_predictable_loop() {
        let p = loop_program();
        let mut io = io_cpu();
        io.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let s_io = io.run(&p).unwrap();
        let mut ooo = ooo_cpu();
        ooo.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let s_ooo = ooo.run(&p).unwrap();
        assert!(
            s_ooo.cycles < s_io.cycles,
            "ooo {} must beat in-order {}",
            s_ooo.cycles,
            s_io.cycles
        );
    }

    #[test]
    fn ipc_bounded_by_issue_width() {
        let p = loop_program();
        let mut ooo = ooo_cpu();
        ooo.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let s = ooo.run(&p).unwrap();
        let ipc = s.instructions as f64 / s.cycles as f64;
        assert!(ipc <= 2.0, "ipc {ipc} above the dual-issue bound");
        assert!(ipc > 0.0);
    }

    #[test]
    fn narrow_structures_are_slower() {
        let narrow = CpuConfig {
            core: CoreSpec::OutOfOrder(OooParams {
                issue_width: 1,
                retire_width: 1,
                rob_entries: 2,
                rs_entries: 2,
                lsq_entries: 1,
                predictor_entries: 16,
            }),
            ..CpuConfig::default()
        };
        let p = loop_program();
        let mut wide = ooo_cpu();
        wide.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let s_wide = wide.run(&p).unwrap();
        let mut small = Cpu::new(narrow);
        small.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let s_small = small.run(&p).unwrap();
        assert!(
            s_small.cycles > s_wide.cycles,
            "narrow {} must trail wide {}",
            s_small.cycles,
            s_wide.cycles
        );
    }

    #[test]
    fn reset_timing_resets_the_predictor() {
        let p = loop_program();
        let mut c = ooo_cpu();
        c.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let first = c.run(&p).unwrap().cycles;
        // A second run on warm predictor + caches is cheaper…
        c.reset_timing();
        c.mem_mut().write_words(0x100, &[1; 16]).unwrap();
        let after_reset = c.run(&p).unwrap().cycles;
        // …but after reset_timing the run must reproduce the cold run
        // exactly (determinism contract).
        assert_eq!(first, after_reset);
    }

    #[test]
    fn traced_ooo_attribution_balances() {
        let p = assemble(
            "main:
                call leaf
                call leaf
                halt
             leaf:
                movi a0, 0x100
                lw   a1, a0, 0
                add  a2, a1, a1
                ret",
        )
        .unwrap();
        let mut c = ooo_cpu();
        let mut attr = xobs::Attribution::new();
        let s = c.run_traced(&p, Some(&mut attr)).unwrap();
        assert_eq!(attr.open_frames(), 0);
        assert_eq!(attr.total_cycles(), s.cycles);
        let flat = attr.flat();
        let leaf = flat.iter().find(|e| e.name == "leaf").unwrap();
        assert_eq!(leaf.calls, 2);
    }

    #[test]
    fn ooo_fuel_exhaustion_is_detected() {
        let p = assemble("spin: j spin").unwrap();
        let mut c = ooo_cpu();
        c.set_fuel(1000);
        assert!(matches!(
            c.run(&p),
            Err(crate::cpu::SimError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn ooo_reports_same_errors_as_inorder() {
        let bad_load = assemble("movi a0, 0xfffffff0\n lw a1, a0, 0\n halt").unwrap();
        let mut io = io_cpu();
        let mut ooo = ooo_cpu();
        let e_io = io.run(&bad_load).unwrap_err();
        let e_ooo = ooo.run(&bad_load).unwrap_err();
        assert_eq!(e_io, e_ooo);

        let no_mul = CpuConfig {
            has_mul: false,
            ..CpuConfig::ooo()
        };
        let p = assemble("movi a0, 6\n movi a1, 7\n mul a2, a0, a1\n halt").unwrap();
        let mut soft = Cpu::new(no_mul);
        assert!(matches!(
            soft.run(&p),
            Err(crate::cpu::SimError::Illegal { pc: 2, .. })
        ));
    }
}
