//! The single-issue in-order pipeline model — the paper's baseline
//! core, extracted verbatim from the formerly monolithic `Cpu`.
//!
//! Timing model (single-issue, in-order, 5-stage pipeline abstraction):
//!
//! - every instruction costs one issue cycle;
//! - instruction fetch goes through the I-cache: a miss adds
//!   `mem_latency` cycles;
//! - loads and stores go through the D-cache: a miss adds `mem_latency`;
//!   a load's result is available one cycle late (load-use interlock);
//! - taken branches, jumps, calls and returns add `branch_penalty`
//!   refill cycles;
//! - `mul`/`mulhu` results are available after `mul_latency` cycles and
//!   are only legal when the hardware-multiplier option is configured;
//! - custom instructions cost their registered latency.
//!
//! Dependent-result delays are modeled with per-register ready times: an
//! instruction that reads a register before its ready cycle stalls until
//! it is ready.

use super::{cache_access, CoreEnv, CoreKind, CoreModel, ExecOutcome};
use crate::asm::Program;
use crate::cpu::{ClassCounts, SimError, RETURN_SENTINEL};
use crate::ext::ExecCtx;
use crate::isa::{Insn, Reg};
use xobs::trace::{CacheSide, TraceEvent, TraceSink};

/// The in-order pipeline model. Stateless: all of its timing state (the
/// global cycle counter and the per-register ready times) lives in the
/// owning `Cpu` and is shared with its reset semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct InOrderCore;

impl CoreModel for InOrderCore {
    fn kind(&self) -> CoreKind {
        CoreKind::InOrder
    }

    fn execute(
        &mut self,
        env: CoreEnv<'_>,
        program: &Program,
        entry: usize,
        entry_name: &str,
        mut sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<ExecOutcome, SimError> {
        let start_cycles = *env.cycles;
        let mut executed: u64 = 0;
        let mut classes = ClassCounts::default();
        let mut pc = entry;
        // Depth of trace frames currently open: the synthetic entry
        // frame plus executed calls minus executed returns. Frames left
        // open at halt are closed synthetically so attribution always
        // balances (root inclusive == total cycles).
        let mut trace_depth: u64 = 0;
        if let Some(s) = sink.as_deref_mut() {
            s.on_event(&TraceEvent::Call {
                pc: entry as u32,
                callee: entry_name,
                cycle: start_cycles,
            });
            trace_depth = 1;
        }
        let mut halted = false;

        loop {
            if pc == RETURN_SENTINEL as usize {
                break; // clean return from a `call`
            }
            let insn = match program.insns().get(pc) {
                Some(i) => i,
                None => return Err(SimError::PcOutOfRange { pc }),
            };
            if executed >= env.fuel {
                return Err(SimError::OutOfFuel { executed });
            }
            executed += 1;
            match insn {
                Insn::Lw(..)
                | Insn::Sw(..)
                | Insn::Lbu(..)
                | Insn::Sb(..)
                | Insn::Lhu(..)
                | Insn::Sh(..) => classes.mem += 1,
                Insn::Beq(..)
                | Insn::Bne(..)
                | Insn::Bltu(..)
                | Insn::Bgeu(..)
                | Insn::Blt(..)
                | Insn::Bge(..)
                | Insn::J(_)
                | Insn::Call(_)
                | Insn::Ret
                | Insn::Jr(_) => classes.control += 1,
                Insn::Mul(..) | Insn::Mulhu(..) => classes.mul += 1,
                Insn::Custom(_) => classes.custom += 1,
                _ => classes.alu += 1,
            }

            // Source-operand interlock: stall until inputs are ready.
            let before_stall = *env.cycles;
            for src in insn.sources() {
                let ready = env.reg_ready[src.index()];
                if ready > *env.cycles {
                    *env.cycles = ready;
                }
            }
            if let Some(s) = sink.as_deref_mut() {
                let stall = *env.cycles - before_stall;
                if stall > 0 {
                    s.on_event(&TraceEvent::Stall {
                        pc: pc as u32,
                        cycles: stall as u32,
                        cycle: *env.cycles,
                    });
                }
            }

            // Instruction fetch.
            cache_access(
                env.icache,
                pc as u64 * 4,
                CacheSide::Instruction,
                env.cycles,
                env.config.mem_latency,
                &mut sink,
            );
            // Issue.
            *env.cycles += 1;

            let mut next_pc = pc + 1;
            let mut taken = false;
            let mut returned = false;

            macro_rules! rd {
                ($r:expr) => {
                    env.regs[$r.index()]
                };
            }

            match insn {
                Insn::Add(d, a, b) => env.regs[d.index()] = rd!(a).wrapping_add(rd!(b)),
                Insn::Addc(d, a, b) => {
                    let t = rd!(a) as u64 + rd!(b) as u64 + *env.carry as u64;
                    env.regs[d.index()] = t as u32;
                    *env.carry = t >> 32 != 0;
                }
                Insn::Sub(d, a, b) => env.regs[d.index()] = rd!(a).wrapping_sub(rd!(b)),
                Insn::Subc(d, a, b) => {
                    let t = (rd!(a) as u64)
                        .wrapping_sub(rd!(b) as u64)
                        .wrapping_sub(*env.carry as u64);
                    env.regs[d.index()] = t as u32;
                    *env.carry = t >> 32 != 0;
                }
                Insn::And(d, a, b) => env.regs[d.index()] = rd!(a) & rd!(b),
                Insn::Or(d, a, b) => env.regs[d.index()] = rd!(a) | rd!(b),
                Insn::Xor(d, a, b) => env.regs[d.index()] = rd!(a) ^ rd!(b),
                Insn::Sll(d, a, b) => env.regs[d.index()] = rd!(a) << (rd!(b) & 31),
                Insn::Srl(d, a, b) => env.regs[d.index()] = rd!(a) >> (rd!(b) & 31),
                Insn::Sra(d, a, b) => {
                    env.regs[d.index()] = ((rd!(a) as i32) >> (rd!(b) & 31)) as u32
                }
                Insn::Sltu(d, a, b) => env.regs[d.index()] = (rd!(a) < rd!(b)) as u32,
                Insn::Slt(d, a, b) => {
                    env.regs[d.index()] = ((rd!(a) as i32) < (rd!(b) as i32)) as u32
                }
                Insn::Mul(d, a, b) | Insn::Mulhu(d, a, b) => {
                    if !env.config.has_mul {
                        return Err(SimError::Illegal {
                            pc,
                            reason: "mul requires the hardware-multiplier option".into(),
                        });
                    }
                    let t = rd!(a) as u64 * rd!(b) as u64;
                    env.regs[d.index()] = if matches!(insn, Insn::Mul(..)) {
                        t as u32
                    } else {
                        (t >> 32) as u32
                    };
                    env.reg_ready[d.index()] =
                        *env.cycles + env.config.mul_latency.saturating_sub(1) as u64;
                }
                Insn::Addi(d, a, imm) => env.regs[d.index()] = rd!(a).wrapping_add(*imm as u32),
                Insn::Andi(d, a, imm) => env.regs[d.index()] = rd!(a) & imm,
                Insn::Ori(d, a, imm) => env.regs[d.index()] = rd!(a) | imm,
                Insn::Xori(d, a, imm) => env.regs[d.index()] = rd!(a) ^ imm,
                Insn::Slli(d, a, sh) => env.regs[d.index()] = rd!(a) << sh,
                Insn::Srli(d, a, sh) => env.regs[d.index()] = rd!(a) >> sh,
                Insn::Srai(d, a, sh) => env.regs[d.index()] = ((rd!(a) as i32) >> sh) as u32,
                Insn::Movi(d, imm) => env.regs[d.index()] = *imm as u32,
                Insn::Mov(d, a) => env.regs[d.index()] = rd!(a),
                Insn::Lw(d, base, off) | Insn::Lbu(d, base, off) | Insn::Lhu(d, base, off) => {
                    let addr = rd!(base).wrapping_add(*off as u32);
                    if let Some(f) = env.fault.as_mut() {
                        if f.cache_tag() {
                            env.dcache.invalidate(addr as u64);
                        }
                    }
                    cache_access(
                        env.dcache,
                        addr as u64,
                        CacheSide::Data,
                        env.cycles,
                        env.config.mem_latency,
                        &mut sink,
                    );
                    let v = match insn {
                        Insn::Lw(..) => env.mem.load_u32(addr),
                        Insn::Lbu(..) => env.mem.load_u8(addr).map(u32::from),
                        _ => env.mem.load_u16(addr).map(u32::from),
                    }
                    .map_err(|source| SimError::Mem { pc, source })?;
                    let v = match env.fault.as_mut() {
                        Some(f) => f.data(v),
                        None => v,
                    };
                    env.regs[d.index()] = v;
                    // Load-use delay: result arrives one cycle late.
                    env.reg_ready[d.index()] = *env.cycles + 1;
                }
                Insn::Sw(v, base, off) | Insn::Sb(v, base, off) | Insn::Sh(v, base, off) => {
                    let addr = rd!(base).wrapping_add(*off as u32);
                    if let Some(f) = env.fault.as_mut() {
                        if f.cache_tag() {
                            env.dcache.invalidate(addr as u64);
                        }
                    }
                    cache_access(
                        env.dcache,
                        addr as u64,
                        CacheSide::Data,
                        env.cycles,
                        env.config.mem_latency,
                        &mut sink,
                    );
                    let val = rd!(v);
                    match insn {
                        Insn::Sw(..) => env.mem.store_u32(addr, val),
                        Insn::Sb(..) => env.mem.store_u8(addr, val as u8),
                        _ => env.mem.store_u16(addr, val as u16),
                    }
                    .map_err(|source| SimError::Mem { pc, source })?;
                }
                Insn::Beq(a, b, t) => {
                    if rd!(a) == rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bne(a, b, t) => {
                    if rd!(a) != rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bltu(a, b, t) => {
                    if rd!(a) < rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bgeu(a, b, t) => {
                    if rd!(a) >= rd!(b) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Blt(a, b, t) => {
                    if (rd!(a) as i32) < (rd!(b) as i32) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::Bge(a, b, t) => {
                    if (rd!(a) as i32) >= (rd!(b) as i32) {
                        next_pc = *t;
                        taken = true;
                    }
                }
                Insn::J(t) => {
                    next_pc = *t;
                    taken = true;
                }
                Insn::Call(t) => {
                    env.regs[Reg::RA.index()] = (pc + 1) as u32;
                    let callee = program.label_at(*t).unwrap_or("<anon>");
                    if let Some(s) = sink.as_deref_mut() {
                        s.on_event(&TraceEvent::Call {
                            pc: pc as u32,
                            callee,
                            cycle: *env.cycles,
                        });
                        trace_depth += 1;
                    }
                    next_pc = *t;
                    taken = true;
                }
                Insn::Ret => {
                    next_pc = env.regs[Reg::RA.index()] as usize;
                    taken = true;
                    // Frame close is recorded after the branch penalty
                    // is charged (below), so a return's refill cycles
                    // stay inside the returning frame and attribution
                    // accounts for every cycle.
                    returned = true;
                }
                Insn::Jr(r) => {
                    next_pc = rd!(r) as usize;
                    taken = true;
                }
                Insn::Clc => *env.carry = false,
                Insn::Nop => {}
                Insn::Halt => halted = true,
                Insn::Custom(op) => {
                    let def = env.ext.get(&op.name).ok_or_else(|| SimError::Illegal {
                        pc,
                        reason: format!("unknown custom instruction `{}`", op.name),
                    })?;
                    let exec = def.exec.clone();
                    let latency = def.latency;
                    let mut ctx = ExecCtx {
                        regs: env.regs,
                        uregs: env.uregs,
                        mem: env.mem,
                        carry: env.carry,
                    };
                    exec(&mut ctx, op).map_err(|source| SimError::Custom { pc, source })?;
                    *env.cycles += latency.saturating_sub(1) as u64;
                    if let Some(f) = env.fault.as_mut() {
                        if let Some(mask) = f.custom_result() {
                            // Stuck-at-one fault on one line of the
                            // result bus (destination register).
                            if let Some(d) = op.regs.first() {
                                env.regs[d.index()] |= mask;
                            }
                        }
                    }
                    if let Some(s) = sink.as_deref_mut() {
                        s.on_event(&TraceEvent::Custom {
                            pc: pc as u32,
                            name: &op.name,
                            latency,
                            cycle: *env.cycles,
                        });
                    }
                }
            }

            if taken {
                *env.cycles += env.config.branch_penalty as u64;
                if let Some(s) = sink.as_deref_mut() {
                    s.on_event(&TraceEvent::TakenBranch {
                        pc: pc as u32,
                        target: next_pc as u32,
                        penalty: env.config.branch_penalty,
                        cycle: *env.cycles,
                    });
                }
            }
            if let Some(f) = env.fault.as_mut() {
                // One register-file upset opportunity per retired
                // instruction.
                if let Some((r, mask)) = f.regfile(env.regs.len()) {
                    env.regs[r] ^= mask;
                }
            }
            if let Some(s) = sink.as_deref_mut() {
                if returned && trace_depth > 0 {
                    s.on_event(&TraceEvent::Ret {
                        pc: pc as u32,
                        cycle: *env.cycles,
                    });
                    trace_depth -= 1;
                }
                s.on_event(&TraceEvent::Retire {
                    pc: pc as u32,
                    cycle: *env.cycles,
                });
            }
            if halted {
                break;
            }
            pc = next_pc;
        }

        if let Some(s) = sink {
            // Close frames left open (the synthetic entry frame, plus
            // any callees a `halt` terminated from inside).
            while trace_depth > 0 {
                s.on_event(&TraceEvent::Ret {
                    pc: pc as u32,
                    cycle: *env.cycles,
                });
                trace_depth -= 1;
            }
            s.flush();
        }

        Ok(ExecOutcome { executed, classes })
    }
}
