//! Pluggable core microarchitecture models.
//!
//! [`Cpu`](crate::cpu::Cpu) owns the architectural state (registers,
//! carry flag, memory, user registers, caches) and delegates the
//! *pipeline* — decode/issue/retire timing, trace-event emission, and
//! the fault-plan hook points — to a [`CoreModel`]. Two models ship:
//!
//! - [`InOrderCore`]: the original single-issue in-order 5-stage
//!   pipeline abstraction (per-register ready-time interlocks, taken
//!   branches pay the refill penalty, loads incur a load-use delay);
//! - [`OooCore`]: a scoreboarded out-of-order family (reorder buffer,
//!   register renaming, reservation stations, a load-store queue and a
//!   2-bit branch predictor, all width-parameterized by
//!   [`OooParams`]).
//!
//! Both models run the **same functional semantics in program order**
//! — every instruction's architectural effects, fault-plan
//! consultations and error paths are identical — so the final
//! architectural state is bit-identical across core models (and the
//! pre-decoded [`crate::xjit`] fast path). Only the *cycle* accounting
//! differs: the in-order core charges a single global clock as it
//! goes, while the out-of-order core books each instruction through a
//! dataflow scoreboard and reports the in-order *commit* time of the
//! last instruction. This is what makes cross-core co-simulation (the
//! `xooo_gate` CI bin) a pure equality check.
//!
//! Which model a [`Cpu`](crate::cpu::Cpu) builds is selected by
//! [`CoreSpec`] on [`CpuConfig`](crate::config::CpuConfig); the spec's
//! [`id()`](CoreSpec::id) string (`"io"`, `"ooo-…"`) is the
//! *CoreConfigId* stamped into cache keys, measurement-unit names,
//! span attributes and run reports by the layers above.

pub mod inorder;
pub mod ooo;

pub use inorder::InOrderCore;
pub use ooo::{OooCore, OooParams};

use crate::asm::Program;
use crate::cache::Cache;
use crate::config::CpuConfig;
use crate::cpu::{ClassCounts, SimError};
use crate::ext::{ExtensionSet, UserRegFile};
use crate::mem::Memory;
use xfault::FaultPlan;
use xobs::trace::{CacheSide, TraceSink};

/// Which microarchitecture family a core model implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// Single-issue in-order pipeline (the paper's baseline).
    InOrder,
    /// Scoreboarded out-of-order pipeline.
    OutOfOrder,
}

/// Core microarchitecture selection, carried by
/// [`CpuConfig`](crate::config::CpuConfig).
///
/// The spec is part of a configuration's identity: it is mixed into
/// [`CpuConfig::fingerprint`](crate::config::CpuConfig::fingerprint)
/// (so kernel-cycle cache keys can never collide across core models)
/// and rendered by [`CoreSpec::id`] for human-readable cache units,
/// span attributes and report fields.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum CoreSpec {
    /// The in-order baseline pipeline.
    #[default]
    InOrder,
    /// An out-of-order pipeline with the given structure widths.
    OutOfOrder(OooParams),
}

impl CoreSpec {
    /// The microarchitecture family this spec selects.
    pub fn kind(&self) -> CoreKind {
        match self {
            CoreSpec::InOrder => CoreKind::InOrder,
            CoreSpec::OutOfOrder(_) => CoreKind::OutOfOrder,
        }
    }

    /// The short core-configuration identifier (*CoreConfigId*) used in
    /// cache keys, measurement-unit names, span attributes and report
    /// fields: `"io"` for the in-order core, `"ooo-…"` (widths
    /// encoded) for out-of-order members.
    pub fn id(&self) -> String {
        match self {
            CoreSpec::InOrder => "io".to_owned(),
            CoreSpec::OutOfOrder(p) => p.id(),
        }
    }

    /// Structural gate-equivalent cost of this core's out-of-order
    /// machinery *relative to the in-order baseline* (which prices at
    /// zero): ROB, reservation-station and load-store-queue entries
    /// plus the branch-predictor counter table, from the
    /// [`crate::area`] constants. This is the core axis of the
    /// cross-product (core × accelerator level) Pareto fronts.
    pub fn area_gates(&self) -> u64 {
        match self {
            CoreSpec::InOrder => 0,
            CoreSpec::OutOfOrder(p) => p.area_gates(),
        }
    }

    /// Parses a *CoreConfigId* produced by [`CoreSpec::id`] back to the
    /// spec — the wire-deserialization inverse used by serialized job
    /// specs. `None` for malformed ids, so a parsed spec always builds.
    pub fn parse(id: &str) -> Option<CoreSpec> {
        if id == "io" {
            return Some(CoreSpec::InOrder);
        }
        let rest = id.strip_prefix("ooo-i")?;
        let (issue, rest) = rest.split_once('x')?;
        let (retire, rest) = rest.split_once("-r")?;
        let (rob, rest) = rest.split_once('s')?;
        let (rs, rest) = rest.split_once('l')?;
        let (lsq, pred) = rest.split_once('b')?;
        Some(CoreSpec::OutOfOrder(OooParams {
            issue_width: issue.parse().ok()?,
            retire_width: retire.parse().ok()?,
            rob_entries: rob.parse().ok()?,
            rs_entries: rs.parse().ok()?,
            lsq_entries: lsq.parse().ok()?,
            predictor_entries: pred.parse().ok()?,
        }))
    }

    /// Builds the executable model for this spec.
    pub fn build(&self) -> Box<dyn CoreModel + Send> {
        match self {
            CoreSpec::InOrder => Box::new(InOrderCore),
            CoreSpec::OutOfOrder(p) => Box::new(OooCore::new(*p)),
        }
    }
}

/// Everything a core model needs from the owning
/// [`Cpu`](crate::cpu::Cpu), as disjoint borrows so the model can hold
/// them simultaneously.
pub struct CoreEnv<'a> {
    /// The core configuration (latencies, cache geometry, options).
    pub config: &'a CpuConfig,
    /// General registers.
    pub regs: &'a mut [u32; 16],
    /// The carry flag.
    pub carry: &'a mut bool,
    /// Data memory.
    pub mem: &'a mut Memory,
    /// Wide user registers (custom-instruction state).
    pub uregs: &'a mut UserRegFile,
    /// Registered custom instructions.
    pub ext: &'a ExtensionSet,
    /// The instruction cache.
    pub icache: &'a mut Cache,
    /// The data cache.
    pub dcache: &'a mut Cache,
    /// The global cycle counter (monotone across runs on one core).
    pub cycles: &'a mut u64,
    /// Per-register result-ready times (RAW interlock/completion
    /// table; persists across runs like the cycle counter).
    pub reg_ready: &'a mut [u64; 16],
    /// Maximum instructions this run may execute.
    pub fuel: u64,
    /// The armed fault-injection plan, if any.
    pub fault: &'a mut Option<FaultPlan>,
}

/// What a core model reports back from one run (the `Cpu` wraps this
/// into a [`RunSummary`](crate::cpu::RunSummary) with cache-stat
/// deltas).
#[derive(Debug, Clone, Copy)]
pub struct ExecOutcome {
    /// Instructions executed (= retired: both models commit in order).
    pub executed: u64,
    /// Executed instructions by class.
    pub classes: ClassCounts,
}

/// A pluggable pipeline model: executes a program on borrowed
/// architectural state, charging cycles according to its own
/// microarchitecture while keeping functional semantics, trace-sink
/// events and fault-plan hook points contract-identical.
pub trait CoreModel {
    /// The model's microarchitecture family.
    fn kind(&self) -> CoreKind;

    /// Runs `program` from `entry` until halt or a sentinel return.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults or fuel exhaustion, exactly as
    /// the monolithic `Cpu` did.
    fn execute(
        &mut self,
        env: CoreEnv<'_>,
        program: &Program,
        entry: usize,
        entry_name: &str,
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<ExecOutcome, SimError>;

    /// Clears model-internal timing state (e.g. branch-predictor
    /// counters). Architectural and cache state is reset by the `Cpu`.
    fn reset_timing(&mut self) {}
}

/// One cache access on the hot path: the untraced branch is the
/// original two-line hit test, the traced branch delegates to
/// [`Cache::access_traced`]. Takes fields, not a context struct, so
/// callers can hold disjoint borrows.
pub(crate) fn cache_access(
    cache: &mut Cache,
    addr: u64,
    side: CacheSide,
    cycles: &mut u64,
    miss_latency: u32,
    sink: &mut Option<&mut (dyn TraceSink + '_)>,
) -> bool {
    match sink {
        None => {
            let hit = cache.access(addr);
            if !hit {
                *cycles += miss_latency as u64;
            }
            hit
        }
        Some(s) => {
            let (hit, after) = cache.access_traced(addr, side, *cycles, miss_latency, &mut **s);
            *cycles = after;
            hit
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_ids_are_distinct_and_stable() {
        assert_eq!(CoreSpec::InOrder.id(), "io");
        let ooo = CoreSpec::OutOfOrder(OooParams::default());
        assert!(ooo.id().starts_with("ooo-"));
        assert_ne!(ooo.id(), CoreSpec::InOrder.id());
        let narrow = CoreSpec::OutOfOrder(OooParams {
            rob_entries: 8,
            ..OooParams::default()
        });
        assert_ne!(narrow.id(), ooo.id(), "widths are part of the id");
    }

    #[test]
    fn inorder_core_area_is_the_baseline_zero() {
        assert_eq!(CoreSpec::InOrder.area_gates(), 0);
        assert!(CoreSpec::OutOfOrder(OooParams::default()).area_gates() > 0);
    }

    #[test]
    fn spec_ids_round_trip_through_parse() {
        let specs = [
            CoreSpec::InOrder,
            CoreSpec::OutOfOrder(OooParams::default()),
            CoreSpec::OutOfOrder(OooParams {
                issue_width: 4,
                retire_width: 3,
                rob_entries: 64,
                rs_entries: 24,
                lsq_entries: 12,
                predictor_entries: 512,
            }),
        ];
        for spec in specs {
            assert_eq!(CoreSpec::parse(&spec.id()), Some(spec), "{}", spec.id());
        }
        assert_eq!(CoreSpec::parse("ooo"), None);
        assert_eq!(CoreSpec::parse("ooo-i2x2"), None);
        assert_eq!(CoreSpec::parse("io2"), None);
    }

    #[test]
    fn default_spec_is_in_order() {
        assert_eq!(CoreSpec::default(), CoreSpec::InOrder);
        assert_eq!(CoreSpec::default().kind(), CoreKind::InOrder);
    }
}
