//! Byte-addressed data memory (little endian).

use core::fmt;

/// Error produced by an out-of-range or misaligned access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessError {
    /// Offending address.
    pub addr: u32,
    /// Access width in bytes.
    pub width: u8,
    /// Whether the failure is a misalignment (else: out of range).
    pub misaligned: bool,
}

impl fmt::Display for AccessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.misaligned {
            write!(
                f,
                "misaligned {}-byte access at address {:#x}",
                self.width, self.addr
            )
        } else {
            write!(
                f,
                "out-of-range {}-byte access at address {:#x}",
                self.width, self.addr
            )
        }
    }
}

impl std::error::Error for AccessError {}

/// Flat little-endian memory for the simulator.
///
/// # Examples
///
/// ```
/// use xr32::mem::Memory;
///
/// let mut m = Memory::new(1024);
/// m.store_u32(0x10, 0xdeadbeef)?;
/// assert_eq!(m.load_u32(0x10)?, 0xdeadbeef);
/// assert_eq!(m.load_u8(0x10)?, 0xef); // little endian
/// # Ok::<(), xr32::mem::AccessError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Memory {
    /// Allocates `size` bytes of zeroed memory.
    pub fn new(size: usize) -> Self {
        Memory {
            bytes: vec![0; size],
        }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, addr: u32, width: u8) -> Result<usize, AccessError> {
        let a = addr as usize;
        if !a.is_multiple_of(width as usize) {
            return Err(AccessError {
                addr,
                width,
                misaligned: true,
            });
        }
        if a + width as usize > self.bytes.len() {
            return Err(AccessError {
                addr,
                width,
                misaligned: false,
            });
        }
        Ok(a)
    }

    /// Loads a byte.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] when the address is out of range.
    pub fn load_u8(&self, addr: u32) -> Result<u8, AccessError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a])
    }

    /// Stores a byte.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] when the address is out of range.
    pub fn store_u8(&mut self, addr: u32, v: u8) -> Result<(), AccessError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = v;
        Ok(())
    }

    /// Loads a halfword (16-bit aligned).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on misalignment or out-of-range.
    pub fn load_u16(&self, addr: u32) -> Result<u16, AccessError> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.bytes[a], self.bytes[a + 1]]))
    }

    /// Stores a halfword (16-bit aligned).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on misalignment or out-of-range.
    pub fn store_u16(&mut self, addr: u32, v: u16) -> Result<(), AccessError> {
        let a = self.check(addr, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Loads a word (32-bit aligned).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on misalignment or out-of-range.
    pub fn load_u32(&self, addr: u32) -> Result<u32, AccessError> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(
            self.bytes[a..a + 4].try_into().expect("width checked"),
        ))
    }

    /// Stores a word (32-bit aligned).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on misalignment or out-of-range.
    pub fn store_u32(&mut self, addr: u32, v: u32) -> Result<(), AccessError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies a byte slice into memory at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if the region exceeds memory.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) -> Result<(), AccessError> {
        let a = addr as usize;
        if a + data.len() > self.bytes.len() {
            return Err(AccessError {
                addr,
                width: 1,
                misaligned: false,
            });
        }
        self.bytes[a..a + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] if the region exceeds memory.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Result<Vec<u8>, AccessError> {
        let a = addr as usize;
        if a + len > self.bytes.len() {
            return Err(AccessError {
                addr,
                width: 1,
                misaligned: false,
            });
        }
        Ok(self.bytes[a..a + len].to_vec())
    }

    /// 64-bit FNV-1a-style digest over the full memory contents. Used
    /// by the dual-fidelity co-simulation checks to compare
    /// whole-memory architectural state without copying it out.
    /// Absorbs eight little-endian bytes per round (not the byte-wise
    /// reference FNV) so digesting a megabyte core stays cheap enough
    /// to sample after every sweep.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut chunks = self.bytes.chunks_exact(8);
        for c in &mut chunks {
            h ^= u64::from_le_bytes(c.try_into().expect("width checked"));
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        for &b in chunks.remainder() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Writes a slice of `u32` words (little-endian) starting at `addr`
    /// (must be 4-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on misalignment or overflow.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) -> Result<(), AccessError> {
        for (i, &w) in words.iter().enumerate() {
            self.store_u32(addr + 4 * i as u32, w)?;
        }
        Ok(())
    }

    /// Reads `n` `u32` words starting at `addr` (4-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError`] on misalignment or overflow.
    pub fn read_words(&self, addr: u32, n: usize) -> Result<Vec<u32>, AccessError> {
        (0..n).map(|i| self.load_u32(addr + 4 * i as u32)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_layout() {
        let mut m = Memory::new(64);
        m.store_u32(0, 0x0102_0304).unwrap();
        assert_eq!(m.load_u8(0).unwrap(), 0x04);
        assert_eq!(m.load_u8(3).unwrap(), 0x01);
        assert_eq!(m.load_u16(0).unwrap(), 0x0304);
        assert_eq!(m.load_u16(2).unwrap(), 0x0102);
    }

    #[test]
    fn misaligned_accesses_rejected() {
        let mut m = Memory::new(64);
        assert!(m.load_u32(2).unwrap_err().misaligned);
        assert!(m.store_u16(1, 0).unwrap_err().misaligned);
        assert!(m.load_u8(1).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Memory::new(16);
        assert!(!m.load_u32(16).unwrap_err().misaligned);
        assert!(m.store_u8(15, 1).is_ok());
        assert!(m.store_u8(16, 1).is_err());
        assert!(m.write_bytes(10, &[0; 7]).is_err());
    }

    #[test]
    fn bulk_words_roundtrip() {
        let mut m = Memory::new(256);
        let words = [1u32, 2, 3, 0xffff_ffff];
        m.write_words(0x40, &words).unwrap();
        assert_eq!(m.read_words(0x40, 4).unwrap(), words);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new(64);
        m.write_bytes(5, b"hello").unwrap();
        assert_eq!(m.read_bytes(5, 5).unwrap(), b"hello");
    }
}
