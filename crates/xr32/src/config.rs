//! Processor configuration.
//!
//! Mirrors the configurability of the Xtensa base processor the paper
//! customizes: optional hardware multiplier, cache geometry, memory
//! latency, and the number/width of extension user registers.

pub use crate::cache::CacheConfig;

use crate::ext::ExtensionSet;
use crate::isa::Insn;
use crate::xcore::{CoreSpec, OooParams};

/// Configuration of an XR32 core.
///
/// The default corresponds to the paper's baseline platform: a 188 MHz
/// embedded core with 16 KiB 2-way I/D caches and a hardware multiplier,
/// before any custom-instruction extension.
///
/// # Examples
///
/// ```
/// use xr32::config::CpuConfig;
///
/// let cfg = CpuConfig {
///     has_mul: false, // smallest configuration: software multiply only
///     ..CpuConfig::default()
/// };
/// assert!(!cfg.has_mul);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpuConfig {
    /// Hardware 32×32 multiplier option (`mul`/`mulhu` legal only when
    /// set).
    pub has_mul: bool,
    /// Multiplier result latency in cycles.
    pub mul_latency: u32,
    /// Instruction-cache geometry.
    pub icache: CacheConfig,
    /// Data-cache geometry.
    pub dcache: CacheConfig,
    /// Cycles added by a cache miss (main-memory access time).
    pub mem_latency: u32,
    /// Cycles added by a taken branch (pipeline refill).
    pub branch_penalty: u32,
    /// Data-memory size in bytes.
    pub mem_size: usize,
    /// Number of wide user registers available to custom instructions.
    pub user_regs: usize,
    /// Width of each user register in 32-bit words.
    pub user_reg_words: usize,
    /// Core clock frequency in Hz (used to convert cycles to time and
    /// throughput; the paper's prototype ran at 188 MHz).
    pub clock_hz: u64,
    /// Which pipeline model the core runs — the in-order baseline or an
    /// out-of-order family member (see [`crate::xcore`]). Part of the
    /// configuration's identity: mixed into [`CpuConfig::fingerprint`]
    /// and rendered by [`CpuConfig::core_id`].
    pub core: CoreSpec,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            has_mul: true,
            mul_latency: 2,
            icache: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                ways: 2,
            },
            dcache: CacheConfig {
                size_bytes: 16 * 1024,
                line_bytes: 32,
                ways: 2,
            },
            mem_latency: 20,
            branch_penalty: 2,
            mem_size: 1 << 20,
            user_regs: 8,
            user_reg_words: 16, // up to 512-bit extension state
            clock_hz: 188_000_000,
            core: CoreSpec::InOrder,
        }
    }
}

impl CpuConfig {
    /// The baseline platform of the paper's Table 1 measurements
    /// (identical to `default()`).
    pub fn baseline() -> Self {
        Self::default()
    }

    /// An FNV-1a fingerprint over every configuration field, stamped
    /// into structured run reports so results from different core
    /// configurations are never silently compared.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for byte in v.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.has_mul as u64);
        mix(self.mul_latency as u64);
        for c in [self.icache, self.dcache] {
            mix(c.size_bytes as u64);
            mix(c.line_bytes as u64);
            mix(c.ways as u64);
        }
        mix(self.mem_latency as u64);
        mix(self.branch_penalty as u64);
        mix(self.mem_size as u64);
        mix(self.user_regs as u64);
        mix(self.user_reg_words as u64);
        mix(self.clock_hz);
        match &self.core {
            CoreSpec::InOrder => mix(1),
            CoreSpec::OutOfOrder(p) => {
                mix(2);
                mix(p.issue_width as u64);
                mix(p.retire_width as u64);
                mix(p.rob_entries as u64);
                mix(p.rs_entries as u64);
                mix(p.lsq_entries as u64);
                mix(p.predictor_entries as u64);
            }
        }
        h
    }

    /// The short core-configuration identifier (`"io"`, `"ooo-…"`) this
    /// configuration's pipeline model carries into cache units, span
    /// attributes and report fields.
    pub fn core_id(&self) -> String {
        self.core.id()
    }

    /// The static scheduling cost model of this configuration — the
    /// same latencies the cycle-accurate core charges, packaged for
    /// compile-time consumers (the `xopt` list scheduler) that must
    /// reason about stalls without running the simulator.
    pub fn cost_model(&self) -> CostModel {
        CostModel {
            load_use_delay: 1,
            mul_result_delay: self.mul_latency.saturating_sub(1),
            branch_penalty: self.branch_penalty,
        }
    }

    /// The baseline platform with the default out-of-order pipeline
    /// model in place of the in-order one — the second point on the
    /// core axis of the cross-product design space.
    pub fn ooo() -> Self {
        CpuConfig {
            core: CoreSpec::OutOfOrder(OooParams::default()),
            ..Self::default()
        }
    }

    /// A minimal configuration without the multiplier option, for
    /// exploring the cheapest possible core.
    pub fn minimal() -> Self {
        CpuConfig {
            has_mul: false,
            icache: CacheConfig {
                size_bytes: 4 * 1024,
                line_bytes: 16,
                ways: 1,
            },
            dcache: CacheConfig {
                size_bytes: 4 * 1024,
                line_bytes: 16,
                ways: 1,
            },
            ..Self::default()
        }
    }
}

/// The in-order core's timing rules as pure data: how many cycles an
/// instruction occupies the issue slot and how late its result becomes
/// usable, mirroring [`crate::cpu`]'s per-register ready-time model
/// exactly. Static schedulers consult this instead of hard-coding the
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Extra cycles before a load's result is usable (a dependent
    /// instruction issued back-to-back stalls this long).
    pub load_use_delay: u32,
    /// Extra cycles before a `mul`/`mulhu` result is usable.
    pub mul_result_delay: u32,
    /// Cycles a taken branch adds (pipeline refill).
    pub branch_penalty: u32,
}

impl CostModel {
    /// Cycles the instruction occupies the issue slot, independent of
    /// operand readiness: 1 for every base instruction, the registered
    /// latency for a custom instruction (the core charges custom
    /// latency unconditionally — it cannot be hidden by scheduling).
    /// Unregistered custom instructions are priced at 1.
    pub fn issue_cycles(&self, insn: &Insn, ext: Option<&ExtensionSet>) -> u32 {
        match insn {
            Insn::Custom(op) => ext
                .and_then(|e| e.get(&op.name))
                .map(|def| def.latency)
                .unwrap_or(1),
            _ => 1,
        }
    }

    /// Extra cycles after issue before the instruction's general-
    /// register result may be consumed without stalling (cache hits
    /// assumed). Zero for instructions whose result is ready in the
    /// next slot.
    pub fn result_delay(&self, insn: &Insn) -> u32 {
        match insn {
            _ if insn.is_load() => self.load_use_delay,
            Insn::Mul(..) | Insn::Mulhu(..) => self.mul_result_delay,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_baseline() {
        assert_eq!(CpuConfig::default(), CpuConfig::baseline());
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let base = CpuConfig::default();
        assert_eq!(base.fingerprint(), CpuConfig::baseline().fingerprint());
        assert_ne!(base.fingerprint(), CpuConfig::minimal().fingerprint());
        let tweaked = CpuConfig {
            branch_penalty: 3,
            ..CpuConfig::default()
        };
        assert_ne!(base.fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn fingerprint_distinguishes_core_models() {
        // Two configs identical except for the pipeline model must
        // never collide (the KCache identity contract).
        let io = CpuConfig::default();
        let ooo = CpuConfig::ooo();
        assert_ne!(io.fingerprint(), ooo.fingerprint());
        assert_eq!(io.core_id(), "io");
        assert!(ooo.core_id().starts_with("ooo-"));
        // And different widths within the out-of-order family differ.
        let narrow = CpuConfig {
            core: CoreSpec::OutOfOrder(OooParams {
                rob_entries: 8,
                ..OooParams::default()
            }),
            ..CpuConfig::default()
        };
        assert_ne!(ooo.fingerprint(), narrow.fingerprint());
    }

    #[test]
    fn minimal_is_smaller() {
        let min = CpuConfig::minimal();
        assert!(!min.has_mul);
        assert!(min.icache.size_bytes < CpuConfig::default().icache.size_bytes);
    }

    #[test]
    fn cost_model_mirrors_the_core_timing() {
        use crate::ext::CustomInsnDef;
        use crate::isa::{CustomOp, Reg};

        let cm = CpuConfig::default().cost_model();
        assert_eq!(cm.load_use_delay, 1);
        assert_eq!(cm.mul_result_delay, 1); // mul_latency 2 => 1 extra
        assert_eq!(cm.branch_penalty, 2);

        let lw = Insn::Lw(Reg::new(1), Reg::new(0), 0);
        let mul = Insn::Mul(Reg::new(1), Reg::new(2), Reg::new(3));
        let add = Insn::Add(Reg::new(1), Reg::new(2), Reg::new(3));
        assert_eq!(cm.result_delay(&lw), 1);
        assert_eq!(cm.result_delay(&mul), 1);
        assert_eq!(cm.result_delay(&add), 0);
        assert_eq!(cm.issue_cycles(&add, None), 1);

        let mut ext = ExtensionSet::new();
        ext.register(CustomInsnDef::new("mac4", 2, 0, |_, _| Ok(())));
        let cust = Insn::Custom(CustomOp {
            name: "mac4".into(),
            regs: vec![],
            uregs: vec![],
            imm: 0,
        });
        assert_eq!(cm.issue_cycles(&cust, Some(&ext)), 2);
        assert_eq!(cm.issue_cycles(&cust, None), 1);
    }
}
