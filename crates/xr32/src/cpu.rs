//! The cycle-accurate XR32 executor.
//!
//! `Cpu` owns the architectural state — registers, carry, memory, user
//! registers, caches, the cycle counter — and delegates the pipeline
//! (decode/issue/retire timing, trace-event emission, fault-plan hook
//! points) to a pluggable [`CoreModel`](crate::xcore::CoreModel)
//! selected by [`CpuConfig::core`]:
//!
//! - [`InOrderCore`](crate::xcore::InOrderCore): the paper's baseline
//!   single-issue in-order 5-stage pipeline abstraction (the timing
//!   model is documented in [`crate::xcore::inorder`]);
//! - [`OooCore`](crate::xcore::OooCore): a scoreboarded out-of-order
//!   family with parameterized structure widths (documented in
//!   [`crate::xcore::ooo`]).
//!
//! Both models run identical functional semantics, so the architectural
//! state after a run is bit-identical across core models and the
//! pre-decoded [`crate::xjit`] fast path; only cycle accounting
//! differs.

use crate::asm::Program;
use crate::cache::{Cache, CacheStats};
use crate::config::CpuConfig;
use crate::ext::{CustomInsnError, ExtensionSet, UserRegFile};
use crate::isa::Reg;
use crate::mem::{AccessError, Memory};
use crate::xcore::{CoreEnv, CoreModel};
use crate::xjit::{self, FastProgram, Fidelity};
use std::fmt;
use std::sync::Arc;
use xfault::FaultPlan;
use xobs::trace::TraceSink;

/// PC value that terminates a [`Cpu::call`]-style run when returned to.
pub const RETURN_SENTINEL: u32 = u32::MAX;

/// Errors terminating a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A data-memory access failed.
    Mem {
        /// Instruction index of the faulting access.
        pc: usize,
        /// The underlying access error.
        source: AccessError,
    },
    /// An instruction illegal under the current configuration
    /// (e.g. `mul` without the multiplier option, unknown custom
    /// instruction).
    Illegal {
        /// Instruction index.
        pc: usize,
        /// Explanation.
        reason: String,
    },
    /// A custom instruction's semantics failed.
    Custom {
        /// Instruction index.
        pc: usize,
        /// The underlying error.
        source: CustomInsnError,
    },
    /// The program counter left the program.
    PcOutOfRange {
        /// Offending instruction index.
        pc: usize,
    },
    /// The fuel (maximum instruction) budget was exhausted — the usual
    /// sign of an infinite loop in a kernel under test.
    OutOfFuel {
        /// Instructions executed before giving up.
        executed: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Mem { pc, source } => write!(f, "at insn {pc}: {source}"),
            SimError::Illegal { pc, reason } => {
                write!(f, "illegal instruction at insn {pc}: {reason}")
            }
            SimError::Custom { pc, source } => write!(f, "at insn {pc}: {source}"),
            SimError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            SimError::OutOfFuel { executed } => {
                write!(f, "out of fuel after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Mem { source, .. } => Some(source),
            SimError::Custom { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Executed-instruction counts by class (for the energy model and
/// workload analysis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// ALU and move instructions.
    pub alu: u64,
    /// Loads and stores.
    pub mem: u64,
    /// Branches, jumps, calls, returns.
    pub control: u64,
    /// Hardware multiplies.
    pub mul: u64,
    /// Custom (TIE) instructions.
    pub custom: u64,
}

impl ClassCounts {
    /// Total classified instructions.
    pub fn total(&self) -> u64 {
        self.alu + self.mem + self.control + self.mul + self.custom
    }
}

/// Result of a completed run.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Total cycles elapsed.
    pub cycles: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Executed instructions by class.
    pub classes: ClassCounts,
    /// Instruction-cache statistics.
    pub icache: CacheStats,
    /// Data-cache statistics.
    pub dcache: CacheStats,
}

impl RunSummary {
    /// Cycles per instruction for the run.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }
}

/// A simulated XR32 core.
pub struct Cpu {
    config: CpuConfig,
    regs: [u32; 16],
    carry: bool,
    mem: Memory,
    uregs: UserRegFile,
    ext: ExtensionSet,
    icache: Cache,
    dcache: Cache,
    cycles: u64,
    reg_ready: [u64; 16],
    fuel: u64,
    fault: Option<FaultPlan>,
    fidelity: Fidelity,
    /// Cumulative retired-instruction count across all runs (both
    /// engines) — part of the architectural state the dual-fidelity
    /// co-simulation checks compare.
    retired: u64,
    /// Pre-decoded fast-path programs, keyed by content fingerprint.
    /// Safe per-core: the configuration and extension set are fixed at
    /// construction.
    fast_cache: Vec<(u64, Arc<FastProgram>)>,
    /// The pipeline model executing cycle-accurate runs, built from
    /// [`CpuConfig::core`] at construction.
    core: Box<dyn CoreModel + Send>,
}

impl fmt::Debug for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cpu")
            .field("cycles", &self.cycles)
            .field("regs", &self.regs)
            .field("carry", &self.carry)
            .finish_non_exhaustive()
    }
}

impl Cpu {
    /// Creates a core with the given configuration and no custom
    /// instructions.
    pub fn new(config: CpuConfig) -> Self {
        Self::with_extensions(config, ExtensionSet::new())
    }

    /// Creates a core with custom-instruction extensions. The stack
    /// pointer (`sp`) starts at the top of data memory.
    pub fn with_extensions(config: CpuConfig, ext: ExtensionSet) -> Self {
        let mut regs = [0; 16];
        regs[Reg::SP.index()] = config.mem_size as u32;
        let core = config.core.build();
        Cpu {
            core,
            regs,
            carry: false,
            mem: Memory::new(config.mem_size),
            uregs: UserRegFile::new(config.user_regs, config.user_reg_words),
            ext,
            icache: Cache::new(config.icache),
            dcache: Cache::new(config.dcache),
            cycles: 0,
            reg_ready: [0; 16],
            fuel: 200_000_000,
            fault: None,
            fidelity: Fidelity::CycleAccurate,
            retired: 0,
            fast_cache: Vec::new(),
            config,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// The configured extension set.
    pub fn extensions(&self) -> &ExtensionSet {
        &self.ext
    }

    /// Reads general register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn reg(&self, i: usize) -> u32 {
        self.regs[i]
    }

    /// Writes general register `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i > 15`.
    pub fn set_reg(&mut self, i: usize, v: u32) {
        self.regs[i] = v;
    }

    /// The data memory.
    pub fn mem(&self) -> &Memory {
        &self.mem
    }

    /// Mutable access to data memory (for setting up kernel inputs).
    pub fn mem_mut(&mut self) -> &mut Memory {
        &mut self.mem
    }

    /// The user (wide) register file.
    pub fn uregs(&self) -> &UserRegFile {
        &self.uregs
    }

    /// Cycles elapsed since construction or [`Cpu::reset_timing`].
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Sets the maximum number of instructions a run may execute before
    /// failing with [`SimError::OutOfFuel`].
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Selects the execution engine for subsequent runs. The default is
    /// [`Fidelity::CycleAccurate`]. With [`Fidelity::Fast`] selected,
    /// runs execute on the pre-decoded functional engine
    /// ([`crate::xjit`]): architectural state (registers, carry,
    /// memory, user registers, retired count) is bit-identical, but
    /// summaries report zero cycles and zero cache activity, trace
    /// sinks are **not** invoked, and an armed fault plan forces a
    /// silent fallback to the cycle-accurate engine (every fault site
    /// lives in the pipeline model).
    pub fn set_fidelity(&mut self, fidelity: Fidelity) {
        self.fidelity = fidelity;
    }

    /// The currently selected execution engine.
    pub fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    /// Instructions retired across all runs on this core (both
    /// engines), part of the architectural state compared by the
    /// dual-fidelity co-simulation checks. Not cleared by
    /// [`Cpu::reset_timing`].
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Arms a fault-injection plan: subsequent runs consult it at the
    /// data-memory, register-file, cache-tag and custom-instruction
    /// hook points. With no plan armed (the default), those hook points
    /// cost one `Option` test and execution is bit-identical to a core
    /// without the feature.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault = Some(plan);
    }

    /// Disarms and returns the current fault plan (with its per-site
    /// fired-injection counters), if any.
    pub fn take_fault_plan(&mut self) -> Option<FaultPlan> {
        self.fault.take()
    }

    /// The armed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Clears cycles, caches, registers, the carry flag and the core
    /// model's internal timing state such as branch-predictor counters
    /// (memory is preserved).
    pub fn reset_timing(&mut self) {
        self.core.reset_timing();
        self.cycles = 0;
        self.reg_ready = [0; 16];
        self.regs = [0; 16];
        self.regs[Reg::SP.index()] = self.config.mem_size as u32;
        self.carry = false;
        self.icache.reset();
        self.dcache.reset();
        self.uregs.clear();
    }

    /// Runs `program` from its `main` label (or instruction 0 when no
    /// `main` exists) until `halt`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults or fuel exhaustion.
    pub fn run(&mut self, program: &Program) -> Result<RunSummary, SimError> {
        self.run_traced(program, None)
    }

    /// Like [`Cpu::run`], with an optional [`TraceSink`] observing the
    /// execution. The run is bracketed by a synthetic Call/Ret pair for
    /// the entry point, so cycle attribution over the event stream
    /// accounts for every simulated cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults or fuel exhaustion.
    pub fn run_traced(
        &mut self,
        program: &Program,
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<RunSummary, SimError> {
        let entry = program.label("main").unwrap_or(0);
        self.run_from_traced(program, entry, sink)
    }

    /// Runs `program` starting at instruction index `entry` until `halt`
    /// or a return to [`RETURN_SENTINEL`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults or fuel exhaustion.
    pub fn run_from(&mut self, program: &Program, entry: usize) -> Result<RunSummary, SimError> {
        self.run_from_traced(program, entry, None)
    }

    /// Like [`Cpu::run_from`], with an optional [`TraceSink`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on faults or fuel exhaustion.
    pub fn run_from_traced(
        &mut self,
        program: &Program,
        entry: usize,
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<RunSummary, SimError> {
        let entry_name = program.label_at(entry).unwrap_or("<entry>").to_owned();
        self.execute(program, entry, &entry_name, sink)
    }

    /// Calls a labeled routine: loads `args` into `a0…`, runs until the
    /// routine returns (or halts), and returns the summary. The routine's
    /// return value convention is `a0` (read it with [`Cpu::reg`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Illegal`] if the label is undefined, and any
    /// simulation error from the run itself.
    ///
    /// # Panics
    ///
    /// Panics if more than six arguments are supplied (a0–a5 is the
    /// argument convention).
    pub fn call(
        &mut self,
        program: &Program,
        label: &str,
        args: &[u32],
    ) -> Result<RunSummary, SimError> {
        self.call_traced(program, label, args, None)
    }

    /// Like [`Cpu::call`], with an optional [`TraceSink`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Illegal`] if the label is undefined, and any
    /// simulation error from the run itself.
    ///
    /// # Panics
    ///
    /// Panics if more than six arguments are supplied (a0–a5 is the
    /// argument convention).
    pub fn call_traced(
        &mut self,
        program: &Program,
        label: &str,
        args: &[u32],
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<RunSummary, SimError> {
        assert!(args.len() <= 6, "at most 6 register arguments (a0-a5)");
        let entry = program.label(label).ok_or_else(|| SimError::Illegal {
            pc: 0,
            reason: format!("undefined entry label {label:?}"),
        })?;
        for (i, &a) in args.iter().enumerate() {
            self.regs[i] = a;
        }
        self.regs[Reg::RA.index()] = RETURN_SENTINEL;
        self.execute(program, entry, label, sink)
    }

    fn execute(
        &mut self,
        program: &Program,
        entry: usize,
        entry_name: &str,
        sink: Option<&mut (dyn TraceSink + '_)>,
    ) -> Result<RunSummary, SimError> {
        if matches!(self.fidelity, Fidelity::Fast) && self.fault.is_none() {
            // Functional fast path: pre-decoded micro-ops, architectural
            // state only. Trace sinks see nothing (there are no cycles
            // to attribute); an armed fault plan keeps the accurate
            // engine (hook points live in the pipeline model).
            return self.execute_fast(program, entry);
        }
        let start_cycles = self.cycles;
        let icache_before = self.icache.stats();
        let dcache_before = self.dcache.stats();
        let out = self.core.execute(
            CoreEnv {
                config: &self.config,
                regs: &mut self.regs,
                carry: &mut self.carry,
                mem: &mut self.mem,
                uregs: &mut self.uregs,
                ext: &self.ext,
                icache: &mut self.icache,
                dcache: &mut self.dcache,
                cycles: &mut self.cycles,
                reg_ready: &mut self.reg_ready,
                fuel: self.fuel,
                fault: &mut self.fault,
            },
            program,
            entry,
            entry_name,
            sink,
        )?;
        self.retired += out.executed;
        Ok(self.summarize(
            start_cycles,
            icache_before,
            dcache_before,
            out.executed,
            out.classes,
        ))
    }

    /// Runs `program` on the pre-decoded functional engine, decoding
    /// (and caching the decode of) the program on first sight. Timing
    /// state — cycle counter, caches, ready times — is untouched, so a
    /// later cycle-accurate run on the same core is unaffected.
    fn execute_fast(&mut self, program: &Program, entry: usize) -> Result<RunSummary, SimError> {
        let fp = program.fingerprint();
        let decoded = match self.fast_cache.iter().find(|(key, _)| *key == fp) {
            Some((_, d)) => Arc::clone(d),
            None => {
                let d = Arc::new(FastProgram::decode(program, &self.config, &self.ext));
                self.fast_cache.push((fp, Arc::clone(&d)));
                d
            }
        };
        let out = xjit::run(
            &decoded,
            entry,
            &mut self.regs,
            &mut self.carry,
            &mut self.mem,
            &mut self.uregs,
            self.fuel,
        )?;
        self.retired += out.executed;
        Ok(RunSummary {
            cycles: 0,
            instructions: out.executed,
            classes: out.classes,
            icache: CacheStats::default(),
            dcache: CacheStats::default(),
        })
    }

    fn summarize(
        &self,
        start_cycles: u64,
        icache_before: CacheStats,
        dcache_before: CacheStats,
        executed: u64,
        classes: ClassCounts,
    ) -> RunSummary {
        let cycles = self.cycles - start_cycles;
        let ic = self.icache.stats();
        let dc = self.dcache.stats();
        RunSummary {
            cycles,
            instructions: executed,
            classes,
            icache: CacheStats {
                hits: ic.hits - icache_before.hits,
                misses: ic.misses - icache_before.misses,
            },
            dcache: CacheStats {
                hits: dc.hits - dcache_before.hits,
                misses: dc.misses - dcache_before.misses,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::ext::CustomInsnDef;

    fn cpu() -> Cpu {
        Cpu::new(CpuConfig::default())
    }

    #[test]
    fn arithmetic_and_halt() {
        let p = assemble("movi a2, 20\n movi a3, 22\n add a4, a2, a3\n halt").unwrap();
        let mut c = cpu();
        let s = c.run(&p).unwrap();
        assert_eq!(c.reg(4), 42);
        assert_eq!(s.instructions, 4);
        assert!(s.cycles >= 4);
    }

    #[test]
    fn carry_chain_addc() {
        // 0xffffffff + 1 with carry into the next word.
        let p = assemble(
            "movi a2, 0xffffffff
             movi a3, 1
             movi a4, 0
             movi a5, 0
             add  a6, a2, a2   ; does not touch carry
             addc a6, a2, a3   ; sets carry
             addc a7, a4, a5   ; consumes carry
             halt",
        )
        .unwrap();
        let mut c = cpu();
        c.run(&p).unwrap();
        // addc a6, a2, a3 -> a6 = 0, carry = 1; addc a7 consumes the carry.
        assert_eq!(c.reg(6), 0);
        assert_eq!(c.reg(7), 1);
    }

    #[test]
    fn loop_sums_memory() {
        // Sum four words written by the host.
        let p = assemble(
            "main:
                movi a0, 0x100   ; ptr
                movi a1, 4       ; count
                movi a2, 0       ; acc
            loop:
                lw   a3, a0, 0
                add  a2, a2, a3
                addi a0, a0, 4
                addi a1, a1, -1
                movi a4, 0
                bne  a1, a4, loop
                halt",
        )
        .unwrap();
        let mut c = cpu();
        c.mem_mut().write_words(0x100, &[10, 20, 30, 40]).unwrap();
        c.run(&p).unwrap();
        assert_eq!(c.reg(2), 100);
    }

    #[test]
    fn call_convention_and_sentinel_return() {
        let p = assemble(
            "double:
                add a0, a0, a0
                ret",
        )
        .unwrap();
        let mut c = cpu();
        let s = c.call(&p, "double", &[21]).unwrap();
        assert_eq!(c.reg(0), 42);
        assert_eq!(s.instructions, 2);
    }

    #[test]
    fn nested_calls_profile_edges() {
        let p = assemble(
            "main:
                call outer
                halt
             outer:
                addi sp, sp, -4
                sw   ra, sp, 0
                call inner
                call inner
                lw   ra, sp, 0
                addi sp, sp, 4
                ret
             inner:
                nop
                ret",
        )
        .unwrap();
        let mut c = cpu();
        let mut attr = xobs::Attribution::new();
        let s = c.run_traced(&p, Some(&mut attr)).unwrap();
        let flat = attr.flat();
        let find = |name: &str| flat.iter().find(|e| e.name == name).unwrap();
        assert_eq!(find("outer").calls, 1);
        assert_eq!(find("inner").calls, 2);
        assert_eq!(attr.total_cycles(), s.cycles);
    }

    #[test]
    fn mul_requires_option() {
        let p = assemble("movi a0, 6\n movi a1, 7\n mul a2, a0, a1\n halt").unwrap();
        let mut soft = Cpu::new(CpuConfig {
            has_mul: false,
            ..CpuConfig::default()
        });
        assert!(matches!(soft.run(&p), Err(SimError::Illegal { pc: 2, .. })));
        let mut hard = cpu();
        hard.run(&p).unwrap();
        assert_eq!(hard.reg(2), 42);
    }

    #[test]
    fn mulhu_computes_high_word() {
        let p = assemble("movi a0, 0x80000000\n movi a1, 4\n mulhu a2, a0, a1\n halt").unwrap();
        let mut c = cpu();
        c.run(&p).unwrap();
        assert_eq!(c.reg(2), 2);
    }

    #[test]
    fn out_of_fuel_detected() {
        let p = assemble("spin: j spin").unwrap();
        let mut c = cpu();
        c.set_fuel(1000);
        assert!(matches!(c.run(&p), Err(SimError::OutOfFuel { .. })));
    }

    #[test]
    fn pc_out_of_range_detected() {
        let p = assemble("nop").unwrap(); // falls off the end
        let mut c = cpu();
        assert!(matches!(c.run(&p), Err(SimError::PcOutOfRange { pc: 1 })));
    }

    #[test]
    fn memory_fault_reported_with_pc() {
        let p = assemble("movi a0, 0xfffffff0\n lw a1, a0, 0\n halt").unwrap();
        let mut c = cpu();
        match c.run(&p) {
            Err(SimError::Mem { pc: 1, .. }) => {}
            other => panic!("expected memory fault, got {other:?}"),
        }
    }

    #[test]
    fn custom_instruction_executes_with_latency() {
        let mut ext = ExtensionSet::new();
        ext.register(CustomInsnDef::new("addimm", 5, 100, |ctx, op| {
            let d = op.regs[0].index();
            ctx.regs[d] = ctx.regs[d].wrapping_add(op.imm as u32);
            Ok(())
        }));
        let p = assemble("movi a3, 40\n cust addimm a3, 2\n halt").unwrap();
        let mut fast = Cpu::with_extensions(CpuConfig::default(), ext);
        let s = fast.run(&p).unwrap();
        assert_eq!(fast.reg(3), 42);
        // movi(1) + custom(5) + halt(1) + fetch misses.
        assert!(s.cycles >= 7);
    }

    #[test]
    fn unknown_custom_instruction_is_illegal() {
        let p = assemble("cust nosuch a0\n halt").unwrap();
        let mut c = cpu();
        assert!(matches!(c.run(&p), Err(SimError::Illegal { pc: 0, .. })));
    }

    #[test]
    fn taken_branch_costs_more_than_fallthrough() {
        let taken = assemble("movi a0, 1\n movi a1, 1\n beq a0, a1, t\n t: halt").unwrap();
        let fall = assemble("movi a0, 1\n movi a1, 2\n beq a0, a1, t\n t: halt").unwrap();
        let mut c1 = cpu();
        let s1 = c1.run(&taken).unwrap();
        let mut c2 = cpu();
        let s2 = c2.run(&fall).unwrap();
        assert!(
            s1.cycles > s2.cycles,
            "taken {} vs fallthrough {}",
            s1.cycles,
            s2.cycles
        );
    }

    #[test]
    fn load_use_stall_costs_a_cycle() {
        // Using a load result immediately should be slower than spacing
        // it with an independent instruction.
        let tight = assemble(
            "movi a0, 0x100
             lw   a1, a0, 0
             add  a2, a1, a1
             movi a3, 7
             halt",
        )
        .unwrap();
        let spaced = assemble(
            "movi a0, 0x100
             lw   a1, a0, 0
             movi a3, 7
             add  a2, a1, a1
             halt",
        )
        .unwrap();
        let mut c1 = cpu();
        let s1 = c1.run(&tight).unwrap();
        let mut c2 = cpu();
        let s2 = c2.run(&spaced).unwrap();
        assert_eq!(s1.instructions, s2.instructions);
        assert!(s1.cycles > s2.cycles, "{} vs {}", s1.cycles, s2.cycles);
    }

    #[test]
    fn dcache_misses_cost_mem_latency() {
        // Two loads to the same line: second hits.
        let p = assemble(
            "movi a0, 0x100
             lw a1, a0, 0
             lw a2, a0, 4
             halt",
        )
        .unwrap();
        let mut c = cpu();
        let s = c.run(&p).unwrap();
        assert_eq!(s.dcache.misses, 1);
        assert_eq!(s.dcache.hits, 1);
    }

    #[test]
    fn cpi_reported() {
        let p = assemble("nop\n nop\n nop\n halt").unwrap();
        let mut c = cpu();
        let s = c.run(&p).unwrap();
        assert!(s.cpi() >= 1.0);
    }

    fn nested_program() -> crate::asm::Program {
        assemble(
            "main:
                call outer
                call outer
                halt
             outer:
                addi sp, sp, -4
                sw   ra, sp, 0
                call inner
                lw   ra, sp, 0
                addi sp, sp, 4
                ret
             inner:
                movi a0, 0x100
                lw   a1, a0, 0
                add  a2, a1, a1
                ret",
        )
        .unwrap()
    }

    #[test]
    fn tracing_has_zero_observer_effect() {
        let p = nested_program();
        let mut plain = cpu();
        let s_plain = plain.run(&p).unwrap();
        let mut traced = cpu();
        let mut sink = xobs::VecSink::new();
        let s_traced = traced.run_traced(&p, Some(&mut sink)).unwrap();
        assert_eq!(s_plain.cycles, s_traced.cycles);
        assert_eq!(s_plain.instructions, s_traced.instructions);
        for i in 0..16 {
            assert_eq!(plain.reg(i), traced.reg(i), "register a{i} diverged");
        }
        assert!(!sink.events().is_empty());
    }

    #[test]
    fn attribution_root_equals_total_cycles_across_runs() {
        // Two cpu.call invocations on one core: the cycle counter
        // persists, and attribution over the combined stream must cover
        // every cycle.
        let p = assemble(
            "double:
                add a0, a0, a0
                ret
             triple:
                add a1, a0, a0
                add a0, a1, a0
                ret",
        )
        .unwrap();
        let mut c = cpu();
        let mut attr = xobs::Attribution::new();
        c.call_traced(&p, "double", &[21], Some(&mut attr)).unwrap();
        c.call_traced(&p, "triple", &[5], Some(&mut attr)).unwrap();
        assert_eq!(attr.open_frames(), 0);
        assert_eq!(attr.unmatched_rets(), 0);
        assert_eq!(attr.total_cycles(), c.cycles());
    }

    #[test]
    fn attribution_accounts_every_cycle_of_nested_calls() {
        let p = nested_program();
        let mut c = cpu();
        let mut attr = xobs::Attribution::new();
        let s = c.run_traced(&p, Some(&mut attr)).unwrap();
        assert_eq!(attr.total_cycles(), s.cycles);
        let flat = attr.flat();
        let outer = flat.iter().find(|e| e.name == "outer").unwrap();
        let inner = flat.iter().find(|e| e.name == "inner").unwrap();
        assert_eq!(outer.calls, 2, "main calls outer twice");
        assert_eq!(inner.calls, 2, "each outer calls inner once");
        assert!(
            inner.inclusive < outer.inclusive,
            "callee inclusive ({}) must nest inside caller inclusive ({})",
            inner.inclusive,
            outer.inclusive
        );
        let exclusive_sum: u64 = flat.iter().map(|e| e.exclusive).sum();
        assert_eq!(
            exclusive_sum, s.cycles,
            "exclusive cycles partition the run"
        );
    }

    #[test]
    fn recursion_attribution_counts_topmost_only() {
        // count(n): if n == 0 return else count(n - 1). Pins the
        // topmost-only recursion accounting over raw call/ret events:
        // inclusive cycles must not double-count nested activations.
        let p = assemble(
            "main:
                movi a0, 5
                call count
                halt
             count:
                movi a7, 0
                beq  a0, a7, done
                addi a0, a0, -1
                addi sp, sp, -4
                sw   ra, sp, 0
                call count
                lw   ra, sp, 0
                addi sp, sp, 4
             done:
                ret",
        )
        .unwrap();
        let mut c = cpu();
        let mut attr = xobs::Attribution::new();
        let s = c.run_traced(&p, Some(&mut attr)).unwrap();
        let traced = attr.flat().into_iter().find(|e| e.name == "count").unwrap();
        assert_eq!(traced.calls, 6);
        assert!(
            traced.inclusive <= s.cycles,
            "inclusive {} must not exceed run total {}",
            traced.inclusive,
            s.cycles
        );
        assert!(traced.exclusive <= traced.inclusive);
        assert_eq!(attr.total_cycles(), s.cycles);
    }

    #[test]
    fn fault_plan_with_zero_rate_is_bit_identical_to_no_plan() {
        let p = nested_program();
        let mut plain = cpu();
        let s_plain = plain.run(&p).unwrap();
        let mut faulted = cpu();
        faulted.set_fault_plan(xfault::PlanSpec::all_sites(1, 0).plan(0));
        let s_faulted = faulted.run(&p).unwrap();
        assert_eq!(s_plain.cycles, s_faulted.cycles);
        assert_eq!(s_plain.instructions, s_faulted.instructions);
        for i in 0..16 {
            assert_eq!(plain.reg(i), faulted.reg(i), "register a{i} diverged");
        }
        assert_eq!(faulted.take_fault_plan().unwrap().total_fired(), 0);
    }

    #[test]
    fn data_fault_flips_a_loaded_bit() {
        let p = assemble("movi a0, 0x100\n lw a1, a0, 0\n halt").unwrap();
        let mut c = cpu();
        c.mem_mut().write_words(0x100, &[42]).unwrap();
        let spec = xfault::PlanSpec::new(7, 1_000_000, &[xfault::FaultSite::DataMem]);
        c.set_fault_plan(spec.plan(0));
        c.run(&p).unwrap();
        let got = c.reg(1);
        assert_ne!(got, 42, "a certain data fault must corrupt the load");
        assert_eq!((got ^ 42).count_ones(), 1, "exactly one bit flips");
        assert_eq!(
            c.take_fault_plan()
                .unwrap()
                .fired(xfault::FaultSite::DataMem),
            1
        );
    }

    #[test]
    fn same_fault_seed_reproduces_the_same_corruption() {
        let p = assemble("movi a0, 0x100\n lw a1, a0, 0\n lw a2, a0, 4\n halt").unwrap();
        let spec = xfault::PlanSpec::new(99, 400_000, &[xfault::FaultSite::DataMem]);
        let run = |stream: u64| {
            let mut c = cpu();
            c.mem_mut().write_words(0x100, &[1111, 2222]).unwrap();
            c.set_fault_plan(spec.plan(stream));
            c.run(&p).unwrap();
            (c.reg(1), c.reg(2))
        };
        assert_eq!(run(5), run(5), "same seed+stream, same corruption");
    }

    #[test]
    fn cache_tag_fault_perturbs_timing_not_results() {
        let p = assemble(
            "movi a0, 0x100
             lw a1, a0, 0
             lw a2, a0, 0
             lw a3, a0, 0
             add a4, a1, a2
             add a4, a4, a3
             halt",
        )
        .unwrap();
        let mut plain = cpu();
        plain.mem_mut().write_words(0x100, &[5]).unwrap();
        let s_plain = plain.run(&p).unwrap();
        let mut faulted = cpu();
        faulted.mem_mut().write_words(0x100, &[5]).unwrap();
        faulted.set_fault_plan(
            xfault::PlanSpec::new(3, 1_000_000, &[xfault::FaultSite::CacheTag]).plan(0),
        );
        let s_faulted = faulted.run(&p).unwrap();
        assert_eq!(
            plain.reg(4),
            faulted.reg(4),
            "tag corruption is benign to data"
        );
        assert!(
            s_faulted.dcache.misses > s_plain.dcache.misses,
            "every corrupted tag forces a refill"
        );
        assert!(s_faulted.cycles > s_plain.cycles, "misses cost latency");
    }

    #[test]
    fn custom_result_fault_sticks_a_bit() {
        let mut ext = ExtensionSet::new();
        ext.register(CustomInsnDef::new("zero", 1, 10, |ctx, op| {
            ctx.regs[op.regs[0].index()] = 0;
            Ok(())
        }));
        let p = assemble("cust zero a3\n halt").unwrap();
        let mut c = Cpu::with_extensions(CpuConfig::default(), ext);
        c.set_fault_plan(
            xfault::PlanSpec::new(11, 1_000_000, &[xfault::FaultSite::CustomResult]).plan(0),
        );
        c.run(&p).unwrap();
        assert_eq!(c.reg(3).count_ones(), 1, "stuck-at-one on one result line");
    }

    #[test]
    fn trace_events_cover_all_hook_points() {
        let mut ext = ExtensionSet::new();
        ext.register(CustomInsnDef::new("addimm", 3, 50, |ctx, op| {
            let d = op.regs[0].index();
            ctx.regs[d] = ctx.regs[d].wrapping_add(op.imm as u32);
            Ok(())
        }));
        let p = assemble(
            "main:
                movi a0, 0x100
                lw   a1, a0, 0
                add  a2, a1, a1    ; load-use stall
                cust addimm a2, 1
                movi a3, 1
                movi a4, 1
                beq  a3, a4, end   ; taken branch
             end:
                halt",
        )
        .unwrap();
        let mut c = Cpu::with_extensions(CpuConfig::default(), ext);
        let mut stats = xobs::EventStats::new();
        let s = c.run_traced(&p, Some(&mut stats)).unwrap();
        assert_eq!(stats.retires, s.instructions);
        assert!(stats.stalls >= 1, "expected a load-use stall event");
        assert!(stats.taken_branches >= 1);
        assert_eq!(stats.custom.get("addimm"), Some(&1));
        assert_eq!(
            stats.icache.hits + stats.icache.misses,
            s.icache.hits + s.icache.misses
        );
        assert_eq!(
            stats.dcache.hits + stats.dcache.misses,
            s.dcache.hits + s.dcache.misses
        );
        assert_eq!(stats.last_cycle, c.cycles());
    }
}
