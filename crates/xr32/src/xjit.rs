//! xjit: the functional fast-execution engine (dual-fidelity ISS).
//!
//! The cycle-accurate interpreter in [`crate::cpu`] re-decodes every
//! instruction on every step and pays for pipeline bookkeeping
//! (interlocks, cache simulation, trace hooks) that pure-correctness
//! consumers — golden-reference sweeps, divergence verification,
//! variant admission gates, recovery-proof replays — never read. This
//! module pre-decodes a [`crate::asm::Program`] once into a basic-block
//! cache of resolved micro-ops:
//!
//! - immediates folded to `u32` operands,
//! - register operands narrowed to raw indices,
//! - custom-instruction handlers resolved to their [`CustomFn`] at
//!   decode time (no per-step `BTreeMap` lookup),
//! - branch targets linked, and blocks tiling the program contiguously
//!   so *any* entry pc (labels, `jr`/`ret` targets) maps to a block
//!   suffix,
//!
//! and executes them with threaded dispatch over straight-line block
//! slices — architectural state only: registers, carry, memory, user
//! registers and the retired-instruction count are bit-identical to
//! the cycle-accurate engine; cycles, cache statistics and pipeline
//! stalls are not modeled and report as zero.
//!
//! Select the engine per-core with [`crate::cpu::Cpu::set_fidelity`];
//! the default everywhere is [`Fidelity::CycleAccurate`] so cycle
//! measurements can never silently land on the fast path.

use crate::asm::Program;
use crate::config::CpuConfig;
use crate::cpu::{ClassCounts, SimError, RETURN_SENTINEL};
use crate::ext::{CustomFn, ExecCtx, ExtensionSet, UserRegFile};
use crate::isa::{CustomOp, Insn};
use crate::mem::Memory;

/// Which execution engine a [`crate::cpu::Cpu`] run uses.
///
/// `CycleAccurate` is the default: the in-order pipeline model with
/// caches, interlocks and fault hooks — the only engine cycle
/// measurements may come from. `Fast` is the pre-decoded functional
/// engine in [`crate::xjit`]: identical architectural results, no
/// timing (summaries report zero cycles), trace sinks are not invoked,
/// and an armed fault plan forces a silent fallback to the
/// cycle-accurate engine (fault sites live in the pipeline model).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Fidelity {
    /// Full pipeline/cache timing model (the measurement engine).
    #[default]
    CycleAccurate,
    /// Pre-decoded functional execution (architectural state only).
    Fast,
}

/// One resolved micro-op. Register operands are raw indices, immediates
/// are pre-folded to the `u32` the ALU consumes, memory/custom ops
/// carry their original instruction index for error reporting.
enum FastOp {
    Add(u8, u8, u8),
    Addc(u8, u8, u8),
    Sub(u8, u8, u8),
    Subc(u8, u8, u8),
    And(u8, u8, u8),
    Or(u8, u8, u8),
    Xor(u8, u8, u8),
    Sll(u8, u8, u8),
    Srl(u8, u8, u8),
    Sra(u8, u8, u8),
    Sltu(u8, u8, u8),
    Slt(u8, u8, u8),
    Mul(u8, u8, u8),
    Mulhu(u8, u8, u8),
    /// `mul`/`mulhu` decoded on a core without the multiplier option:
    /// only an error if actually executed, like the accurate engine.
    MulIllegal {
        pc: u32,
    },
    Addi(u8, u8, u32),
    Andi(u8, u8, u32),
    Ori(u8, u8, u32),
    Xori(u8, u8, u32),
    Slli(u8, u8, u32),
    Srli(u8, u8, u32),
    Srai(u8, u8, u32),
    Movi(u8, u32),
    Mov(u8, u8),
    Lw {
        d: u8,
        base: u8,
        off: u32,
        pc: u32,
    },
    Lbu {
        d: u8,
        base: u8,
        off: u32,
        pc: u32,
    },
    Lhu {
        d: u8,
        base: u8,
        off: u32,
        pc: u32,
    },
    Sw {
        v: u8,
        base: u8,
        off: u32,
        pc: u32,
    },
    Sb {
        v: u8,
        base: u8,
        off: u32,
        pc: u32,
    },
    Sh {
        v: u8,
        base: u8,
        off: u32,
        pc: u32,
    },
    Beq {
        a: u8,
        b: u8,
        t: u32,
    },
    Bne {
        a: u8,
        b: u8,
        t: u32,
    },
    Bltu {
        a: u8,
        b: u8,
        t: u32,
    },
    Bgeu {
        a: u8,
        b: u8,
        t: u32,
    },
    Blt {
        a: u8,
        b: u8,
        t: u32,
    },
    Bge {
        a: u8,
        b: u8,
        t: u32,
    },
    J(u32),
    Call {
        t: u32,
        link: u32,
    },
    Jr(u8),
    Ret,
    Clc,
    Nop,
    Halt,
    /// Custom instruction with its handler resolved at decode time.
    Custom {
        exec: CustomFn,
        op: Box<CustomOp>,
        pc: u32,
    },
    /// Custom instruction whose name was unknown at decode time: only
    /// an error if actually executed (matching the accurate engine's
    /// lazy lookup semantics).
    CustomUnknown {
        name: Box<str>,
        pc: u32,
    },
}

/// Instruction-class tags for the parallel `cls` array (indices into
/// the run's `[u64; 5]` class counters).
const CLS_ALU: u8 = 0;
const CLS_MEM: u8 = 1;
const CLS_CTL: u8 = 2;
const CLS_MUL: u8 = 3;
const CLS_CUST: u8 = 4;

/// A pre-decoded program: micro-ops 1:1 with the source instructions,
/// tiled into basic blocks. `block_end[pc]` is the exclusive end of the
/// straight-line slice containing `pc`, so execution enters a block at
/// any offset (computed `jr`/`ret` targets included) and runs without
/// per-step control checks until the block boundary.
pub(crate) struct FastProgram {
    ops: Vec<FastOp>,
    /// Class tag per op (parallel to `ops`).
    cls: Vec<u8>,
    /// Exclusive end of the basic block containing each pc.
    block_end: Vec<u32>,
}

/// Architectural outcome of a fast run (no timing fields).
pub(crate) struct FastRun {
    pub executed: u64,
    pub classes: ClassCounts,
}

impl FastProgram {
    /// Pre-decodes `program` for the given core configuration and
    /// extension set. Decode never fails: configuration errors (missing
    /// multiplier, unknown custom name) become error-on-execute ops so
    /// semantics match the accurate engine's lazy checks exactly.
    pub(crate) fn decode(program: &Program, config: &CpuConfig, ext: &ExtensionSet) -> Self {
        let insns = program.insns();
        let n = insns.len();
        let mut ops = Vec::with_capacity(n);
        let mut cls = Vec::with_capacity(n);
        for (pc, insn) in insns.iter().enumerate() {
            let r = |r: &crate::isa::Reg| r.index() as u8;
            let pc32 = pc as u32;
            let (op, class) = match insn {
                Insn::Add(d, a, b) => (FastOp::Add(r(d), r(a), r(b)), CLS_ALU),
                Insn::Addc(d, a, b) => (FastOp::Addc(r(d), r(a), r(b)), CLS_ALU),
                Insn::Sub(d, a, b) => (FastOp::Sub(r(d), r(a), r(b)), CLS_ALU),
                Insn::Subc(d, a, b) => (FastOp::Subc(r(d), r(a), r(b)), CLS_ALU),
                Insn::And(d, a, b) => (FastOp::And(r(d), r(a), r(b)), CLS_ALU),
                Insn::Or(d, a, b) => (FastOp::Or(r(d), r(a), r(b)), CLS_ALU),
                Insn::Xor(d, a, b) => (FastOp::Xor(r(d), r(a), r(b)), CLS_ALU),
                Insn::Sll(d, a, b) => (FastOp::Sll(r(d), r(a), r(b)), CLS_ALU),
                Insn::Srl(d, a, b) => (FastOp::Srl(r(d), r(a), r(b)), CLS_ALU),
                Insn::Sra(d, a, b) => (FastOp::Sra(r(d), r(a), r(b)), CLS_ALU),
                Insn::Sltu(d, a, b) => (FastOp::Sltu(r(d), r(a), r(b)), CLS_ALU),
                Insn::Slt(d, a, b) => (FastOp::Slt(r(d), r(a), r(b)), CLS_ALU),
                Insn::Mul(d, a, b) if config.has_mul => (FastOp::Mul(r(d), r(a), r(b)), CLS_MUL),
                Insn::Mulhu(d, a, b) if config.has_mul => {
                    (FastOp::Mulhu(r(d), r(a), r(b)), CLS_MUL)
                }
                Insn::Mul(..) | Insn::Mulhu(..) => (FastOp::MulIllegal { pc: pc32 }, CLS_MUL),
                Insn::Addi(d, a, imm) => (FastOp::Addi(r(d), r(a), *imm as u32), CLS_ALU),
                Insn::Andi(d, a, imm) => (FastOp::Andi(r(d), r(a), *imm), CLS_ALU),
                Insn::Ori(d, a, imm) => (FastOp::Ori(r(d), r(a), *imm), CLS_ALU),
                Insn::Xori(d, a, imm) => (FastOp::Xori(r(d), r(a), *imm), CLS_ALU),
                Insn::Slli(d, a, sh) => (FastOp::Slli(r(d), r(a), *sh), CLS_ALU),
                Insn::Srli(d, a, sh) => (FastOp::Srli(r(d), r(a), *sh), CLS_ALU),
                Insn::Srai(d, a, sh) => (FastOp::Srai(r(d), r(a), *sh), CLS_ALU),
                Insn::Movi(d, imm) => (FastOp::Movi(r(d), *imm as u32), CLS_ALU),
                Insn::Mov(d, a) => (FastOp::Mov(r(d), r(a)), CLS_ALU),
                Insn::Lw(d, base, off) => (
                    FastOp::Lw {
                        d: r(d),
                        base: r(base),
                        off: *off as u32,
                        pc: pc32,
                    },
                    CLS_MEM,
                ),
                Insn::Lbu(d, base, off) => (
                    FastOp::Lbu {
                        d: r(d),
                        base: r(base),
                        off: *off as u32,
                        pc: pc32,
                    },
                    CLS_MEM,
                ),
                Insn::Lhu(d, base, off) => (
                    FastOp::Lhu {
                        d: r(d),
                        base: r(base),
                        off: *off as u32,
                        pc: pc32,
                    },
                    CLS_MEM,
                ),
                Insn::Sw(v, base, off) => (
                    FastOp::Sw {
                        v: r(v),
                        base: r(base),
                        off: *off as u32,
                        pc: pc32,
                    },
                    CLS_MEM,
                ),
                Insn::Sb(v, base, off) => (
                    FastOp::Sb {
                        v: r(v),
                        base: r(base),
                        off: *off as u32,
                        pc: pc32,
                    },
                    CLS_MEM,
                ),
                Insn::Sh(v, base, off) => (
                    FastOp::Sh {
                        v: r(v),
                        base: r(base),
                        off: *off as u32,
                        pc: pc32,
                    },
                    CLS_MEM,
                ),
                Insn::Beq(a, b, t) => (
                    FastOp::Beq {
                        a: r(a),
                        b: r(b),
                        t: *t as u32,
                    },
                    CLS_CTL,
                ),
                Insn::Bne(a, b, t) => (
                    FastOp::Bne {
                        a: r(a),
                        b: r(b),
                        t: *t as u32,
                    },
                    CLS_CTL,
                ),
                Insn::Bltu(a, b, t) => (
                    FastOp::Bltu {
                        a: r(a),
                        b: r(b),
                        t: *t as u32,
                    },
                    CLS_CTL,
                ),
                Insn::Bgeu(a, b, t) => (
                    FastOp::Bgeu {
                        a: r(a),
                        b: r(b),
                        t: *t as u32,
                    },
                    CLS_CTL,
                ),
                Insn::Blt(a, b, t) => (
                    FastOp::Blt {
                        a: r(a),
                        b: r(b),
                        t: *t as u32,
                    },
                    CLS_CTL,
                ),
                Insn::Bge(a, b, t) => (
                    FastOp::Bge {
                        a: r(a),
                        b: r(b),
                        t: *t as u32,
                    },
                    CLS_CTL,
                ),
                Insn::J(t) => (FastOp::J(*t as u32), CLS_CTL),
                Insn::Call(t) => (
                    FastOp::Call {
                        t: *t as u32,
                        link: pc32 + 1,
                    },
                    CLS_CTL,
                ),
                Insn::Jr(a) => (FastOp::Jr(r(a)), CLS_CTL),
                Insn::Ret => (FastOp::Ret, CLS_CTL),
                Insn::Clc => (FastOp::Clc, CLS_ALU),
                Insn::Nop => (FastOp::Nop, CLS_ALU),
                Insn::Halt => (FastOp::Halt, CLS_ALU),
                Insn::Custom(op) => match ext.get(&op.name) {
                    Some(def) => (
                        FastOp::Custom {
                            exec: def.exec.clone(),
                            op: Box::new(op.clone()),
                            pc: pc32,
                        },
                        CLS_CUST,
                    ),
                    None => (
                        FastOp::CustomUnknown {
                            name: op.name.clone().into_boxed_str(),
                            pc: pc32,
                        },
                        CLS_CUST,
                    ),
                },
            };
            ops.push(op);
            cls.push(class);
        }

        // Basic-block leaders: pc 0, every label, every branch target,
        // and the instruction after every block-ending op. Blocks tile
        // the program contiguously, so `block_end` is total over pcs.
        let mut leader = vec![false; n + 1];
        if n > 0 {
            leader[0] = true;
        }
        leader[n] = true;
        for &at in program.labels().values() {
            if at <= n {
                leader[at] = true;
            }
        }
        for (pc, insn) in insns.iter().enumerate() {
            if let Some(t) = insn.branch_target() {
                if t <= n {
                    leader[t] = true;
                }
            }
            if insn.ends_block() {
                leader[pc + 1] = true;
            }
        }
        let mut block_end = vec![0u32; n];
        let mut end = n as u32;
        for pc in (0..n).rev() {
            if leader[pc + 1] {
                end = (pc + 1) as u32;
            }
            block_end[pc] = end;
        }

        FastProgram {
            ops,
            cls,
            block_end,
        }
    }
}

/// Executes a pre-decoded program on the given architectural state.
/// Mirrors the cycle-accurate engine's observable semantics exactly
/// (same results, same errors including the `executed` count at fuel
/// exhaustion, same class counts) while modeling no timing.
pub(crate) fn run(
    prog: &FastProgram,
    entry: usize,
    regs: &mut [u32; 16],
    carry: &mut bool,
    mem: &mut Memory,
    uregs: &mut UserRegFile,
    fuel: u64,
) -> Result<FastRun, SimError> {
    const RA: usize = 15;
    let mut executed: u64 = 0;
    let mut counts = [0u64; 5];
    let mut pc = entry;
    let ops = &prog.ops[..];
    let cls = &prog.cls[..];

    'outer: loop {
        if pc == RETURN_SENTINEL as usize {
            break; // clean return from a `call`
        }
        let end = match prog.block_end.get(pc) {
            Some(&e) => e as usize,
            None => return Err(SimError::PcOutOfRange { pc }),
        };
        let mut i = pc;
        while i < end {
            if executed >= fuel {
                return Err(SimError::OutOfFuel { executed });
            }
            executed += 1;
            counts[cls[i] as usize] += 1;
            macro_rules! rr {
                ($r:expr) => {
                    regs[$r as usize]
                };
            }
            match &ops[i] {
                FastOp::Add(d, a, b) => regs[*d as usize] = rr!(*a).wrapping_add(rr!(*b)),
                FastOp::Addc(d, a, b) => {
                    let t = rr!(*a) as u64 + rr!(*b) as u64 + *carry as u64;
                    regs[*d as usize] = t as u32;
                    *carry = t >> 32 != 0;
                }
                FastOp::Sub(d, a, b) => regs[*d as usize] = rr!(*a).wrapping_sub(rr!(*b)),
                FastOp::Subc(d, a, b) => {
                    let t = (rr!(*a) as u64)
                        .wrapping_sub(rr!(*b) as u64)
                        .wrapping_sub(*carry as u64);
                    regs[*d as usize] = t as u32;
                    *carry = t >> 32 != 0;
                }
                FastOp::And(d, a, b) => regs[*d as usize] = rr!(*a) & rr!(*b),
                FastOp::Or(d, a, b) => regs[*d as usize] = rr!(*a) | rr!(*b),
                FastOp::Xor(d, a, b) => regs[*d as usize] = rr!(*a) ^ rr!(*b),
                FastOp::Sll(d, a, b) => regs[*d as usize] = rr!(*a) << (rr!(*b) & 31),
                FastOp::Srl(d, a, b) => regs[*d as usize] = rr!(*a) >> (rr!(*b) & 31),
                FastOp::Sra(d, a, b) => {
                    regs[*d as usize] = ((rr!(*a) as i32) >> (rr!(*b) & 31)) as u32
                }
                FastOp::Sltu(d, a, b) => regs[*d as usize] = (rr!(*a) < rr!(*b)) as u32,
                FastOp::Slt(d, a, b) => {
                    regs[*d as usize] = ((rr!(*a) as i32) < (rr!(*b) as i32)) as u32
                }
                FastOp::Mul(d, a, b) => {
                    regs[*d as usize] = (rr!(*a) as u64 * rr!(*b) as u64) as u32
                }
                FastOp::Mulhu(d, a, b) => {
                    regs[*d as usize] = ((rr!(*a) as u64 * rr!(*b) as u64) >> 32) as u32
                }
                FastOp::MulIllegal { pc } => {
                    return Err(SimError::Illegal {
                        pc: *pc as usize,
                        reason: "mul requires the hardware-multiplier option".into(),
                    });
                }
                FastOp::Addi(d, a, imm) => regs[*d as usize] = rr!(*a).wrapping_add(*imm),
                FastOp::Andi(d, a, imm) => regs[*d as usize] = rr!(*a) & imm,
                FastOp::Ori(d, a, imm) => regs[*d as usize] = rr!(*a) | imm,
                FastOp::Xori(d, a, imm) => regs[*d as usize] = rr!(*a) ^ imm,
                FastOp::Slli(d, a, sh) => regs[*d as usize] = rr!(*a) << sh,
                FastOp::Srli(d, a, sh) => regs[*d as usize] = rr!(*a) >> sh,
                FastOp::Srai(d, a, sh) => regs[*d as usize] = ((rr!(*a) as i32) >> sh) as u32,
                FastOp::Movi(d, imm) => regs[*d as usize] = *imm,
                FastOp::Mov(d, a) => regs[*d as usize] = rr!(*a),
                FastOp::Lw { d, base, off, pc } => {
                    let addr = rr!(*base).wrapping_add(*off);
                    regs[*d as usize] = mem.load_u32(addr).map_err(|source| SimError::Mem {
                        pc: *pc as usize,
                        source,
                    })?;
                }
                FastOp::Lbu { d, base, off, pc } => {
                    let addr = rr!(*base).wrapping_add(*off);
                    regs[*d as usize] =
                        mem.load_u8(addr)
                            .map(u32::from)
                            .map_err(|source| SimError::Mem {
                                pc: *pc as usize,
                                source,
                            })?;
                }
                FastOp::Lhu { d, base, off, pc } => {
                    let addr = rr!(*base).wrapping_add(*off);
                    regs[*d as usize] =
                        mem.load_u16(addr)
                            .map(u32::from)
                            .map_err(|source| SimError::Mem {
                                pc: *pc as usize,
                                source,
                            })?;
                }
                FastOp::Sw { v, base, off, pc } => {
                    let addr = rr!(*base).wrapping_add(*off);
                    mem.store_u32(addr, rr!(*v))
                        .map_err(|source| SimError::Mem {
                            pc: *pc as usize,
                            source,
                        })?;
                }
                FastOp::Sb { v, base, off, pc } => {
                    let addr = rr!(*base).wrapping_add(*off);
                    mem.store_u8(addr, rr!(*v) as u8)
                        .map_err(|source| SimError::Mem {
                            pc: *pc as usize,
                            source,
                        })?;
                }
                FastOp::Sh { v, base, off, pc } => {
                    let addr = rr!(*base).wrapping_add(*off);
                    mem.store_u16(addr, rr!(*v) as u16)
                        .map_err(|source| SimError::Mem {
                            pc: *pc as usize,
                            source,
                        })?;
                }
                FastOp::Beq { a, b, t } => {
                    if rr!(*a) == rr!(*b) {
                        pc = *t as usize;
                        continue 'outer;
                    }
                }
                FastOp::Bne { a, b, t } => {
                    if rr!(*a) != rr!(*b) {
                        pc = *t as usize;
                        continue 'outer;
                    }
                }
                FastOp::Bltu { a, b, t } => {
                    if rr!(*a) < rr!(*b) {
                        pc = *t as usize;
                        continue 'outer;
                    }
                }
                FastOp::Bgeu { a, b, t } => {
                    if rr!(*a) >= rr!(*b) {
                        pc = *t as usize;
                        continue 'outer;
                    }
                }
                FastOp::Blt { a, b, t } => {
                    if (rr!(*a) as i32) < (rr!(*b) as i32) {
                        pc = *t as usize;
                        continue 'outer;
                    }
                }
                FastOp::Bge { a, b, t } => {
                    if (rr!(*a) as i32) >= (rr!(*b) as i32) {
                        pc = *t as usize;
                        continue 'outer;
                    }
                }
                FastOp::J(t) => {
                    pc = *t as usize;
                    continue 'outer;
                }
                FastOp::Call { t, link } => {
                    regs[RA] = *link;
                    pc = *t as usize;
                    continue 'outer;
                }
                FastOp::Jr(a) => {
                    pc = rr!(*a) as usize;
                    continue 'outer;
                }
                FastOp::Ret => {
                    pc = regs[RA] as usize;
                    continue 'outer;
                }
                FastOp::Clc => *carry = false,
                FastOp::Nop => {}
                FastOp::Halt => break 'outer,
                FastOp::Custom { exec, op, pc } => {
                    let mut ctx = ExecCtx {
                        regs,
                        uregs,
                        mem,
                        carry,
                    };
                    exec(&mut ctx, op).map_err(|source| SimError::Custom {
                        pc: *pc as usize,
                        source,
                    })?;
                }
                FastOp::CustomUnknown { name, pc } => {
                    return Err(SimError::Illegal {
                        pc: *pc as usize,
                        reason: format!("unknown custom instruction `{name}`"),
                    });
                }
            }
            i += 1;
        }
        pc = end; // fell through to the next block's leader
    }

    Ok(FastRun {
        executed,
        classes: ClassCounts {
            alu: counts[CLS_ALU as usize],
            mem: counts[CLS_MEM as usize],
            control: counts[CLS_CTL as usize],
            mul: counts[CLS_MUL as usize],
            custom: counts[CLS_CUST as usize],
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::cpu::Cpu;
    use crate::ext::CustomInsnDef;

    fn decode(src: &str) -> (Program, FastProgram) {
        let p = assemble(src).unwrap();
        let fp = FastProgram::decode(&p, &CpuConfig::default(), &ExtensionSet::new());
        (p, fp)
    }

    #[test]
    fn blocks_tile_the_program() {
        let (_, fp) = decode(
            "main:
                movi a0, 3
            loop:
                addi a0, a0, -1
                movi a1, 0
                bne  a0, a1, loop
                halt",
        );
        assert_eq!(fp.ops.len(), 5);
        // Block boundaries: [0,1) main, [1,4) loop body, [4,5) halt.
        assert_eq!(fp.block_end, vec![1, 4, 4, 4, 5]);
    }

    #[test]
    fn fast_run_matches_accurate_architectural_state() {
        let src = "main:
                movi a0, 0x100
                movi a1, 4
                movi a2, 0
            loop:
                lw   a3, a0, 0
                add  a2, a2, a3
                addi a0, a0, 4
                addi a1, a1, -1
                movi a4, 0
                bne  a1, a4, loop
                halt";
        let p = assemble(src).unwrap();
        let mut accurate = Cpu::new(CpuConfig::default());
        accurate
            .mem_mut()
            .write_words(0x100, &[10, 20, 30, 40])
            .unwrap();
        let sa = accurate.run(&p).unwrap();
        let mut fast = Cpu::new(CpuConfig::default());
        fast.set_fidelity(Fidelity::Fast);
        fast.mem_mut()
            .write_words(0x100, &[10, 20, 30, 40])
            .unwrap();
        let sf = fast.run(&p).unwrap();
        assert_eq!(sf.cycles, 0, "fast path models no timing");
        assert_eq!(sa.instructions, sf.instructions);
        assert_eq!(sa.classes, sf.classes);
        for i in 0..16 {
            assert_eq!(accurate.reg(i), fast.reg(i), "register a{i}");
        }
        assert_eq!(accurate.mem().digest(), fast.mem().digest());
    }

    #[test]
    fn fast_custom_insn_resolved_at_decode() {
        let mut ext = ExtensionSet::new();
        ext.register(CustomInsnDef::new("addimm", 5, 100, |ctx, op| {
            let d = op.regs[0].index();
            ctx.regs[d] = ctx.regs[d].wrapping_add(op.imm as u32);
            Ok(())
        }));
        let p = assemble("movi a3, 40\n cust addimm a3, 2\n halt").unwrap();
        let mut c = Cpu::with_extensions(CpuConfig::default(), ext);
        c.set_fidelity(Fidelity::Fast);
        let s = c.run(&p).unwrap();
        assert_eq!(c.reg(3), 42);
        assert_eq!(s.classes.custom, 1);
    }

    #[test]
    fn fast_errors_match_accurate_engine() {
        // Unknown custom: Illegal at the same pc.
        let p = assemble("nop\n cust nosuch a0\n halt").unwrap();
        let mut c = Cpu::new(CpuConfig::default());
        c.set_fidelity(Fidelity::Fast);
        assert!(matches!(c.run(&p), Err(SimError::Illegal { pc: 1, .. })));
        // Fuel exhaustion: identical executed count.
        let spin = assemble("spin: j spin").unwrap();
        let mut fast = Cpu::new(CpuConfig::default());
        fast.set_fidelity(Fidelity::Fast);
        fast.set_fuel(1000);
        let mut accurate = Cpu::new(CpuConfig::default());
        accurate.set_fuel(1000);
        match (fast.run(&spin), accurate.run(&spin)) {
            (
                Err(SimError::OutOfFuel { executed: ef }),
                Err(SimError::OutOfFuel { executed: ea }),
            ) => assert_eq!(ef, ea),
            other => panic!("expected OutOfFuel on both engines, got {other:?}"),
        }
        // Falling off the end: PcOutOfRange at the same pc.
        let fall = assemble("nop").unwrap();
        let mut c = Cpu::new(CpuConfig::default());
        c.set_fidelity(Fidelity::Fast);
        assert!(matches!(
            c.run(&fall),
            Err(SimError::PcOutOfRange { pc: 1 })
        ));
        // mul without the option: Illegal at the same pc.
        let mul = assemble("movi a0, 6\n movi a1, 7\n mul a2, a0, a1\n halt").unwrap();
        let mut soft = Cpu::new(CpuConfig {
            has_mul: false,
            ..CpuConfig::default()
        });
        soft.set_fidelity(Fidelity::Fast);
        assert!(matches!(
            soft.run(&mul),
            Err(SimError::Illegal { pc: 2, .. })
        ));
    }

    #[test]
    fn fast_call_convention_matches() {
        let p = assemble(
            "double:
                add a0, a0, a0
                ret",
        )
        .unwrap();
        let mut c = Cpu::new(CpuConfig::default());
        c.set_fidelity(Fidelity::Fast);
        let s = c.call(&p, "double", &[21]).unwrap();
        assert_eq!(c.reg(0), 42);
        assert_eq!(s.instructions, 2);
        assert_eq!(c.retired(), 2);
    }

    #[test]
    fn armed_fault_plan_falls_back_to_cycle_accurate() {
        let p = assemble("movi a0, 0x100\n lw a1, a0, 0\n halt").unwrap();
        let mut c = Cpu::new(CpuConfig::default());
        c.set_fidelity(Fidelity::Fast);
        c.mem_mut().write_words(0x100, &[42]).unwrap();
        let spec = xfault::PlanSpec::new(7, 1_000_000, &[xfault::FaultSite::DataMem]);
        c.set_fault_plan(spec.plan(0));
        let s = c.run(&p).unwrap();
        assert!(s.cycles > 0, "fault runs use the cycle-accurate engine");
        assert_ne!(c.reg(1), 42, "the fault site must still fire");
    }
}
