//! Per-function cycle profiling and call-graph extraction (deprecated).
//!
//! **Deprecated:** superseded by `xobs::Attribution`, which reconstructs
//! the same per-function inclusive/exclusive cycles and call counts from
//! the trace-event stream of any [`crate::Cpu`] traced run — exactly
//! (root inclusive equals total ISS cycles) and without this module's
//! historical recursion double-count hazard. Attach an attribution sink
//! via `run_traced`/`call_traced` instead of reading a profile off the
//! run summary. This module remains only for external code still driving
//! a [`Profiler`] by hand and will be removed in a future release.
//!
//! The paper's custom-instruction formulation phase "profiles the routine
//! using traces derived from simulation of the entire algorithm" and its
//! global selection phase consumes a call graph with per-edge call counts
//! (Fig. 4). The [`Profiler`] builds exactly that while the simulator
//! runs: `call`/`ret` instructions open and close frames, and cycles are
//! attributed to the innermost active function.

#![allow(deprecated)] // the module implements and tests its own deprecated API

use std::collections::BTreeMap;

/// Statistics for one function observed during a run.
#[deprecated(
    since = "0.1.0",
    note = "superseded by xobs::Attribution: attach an attribution sink to a traced run \
            for exact call-tree cycle accounting (no recursion double-count)"
)]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FunctionStats {
    /// Number of completed invocations.
    pub calls: u64,
    /// Cycles spent in the function excluding its callees
    /// (the paper's `local_cycles(f)`).
    pub self_cycles: u64,
    /// Cycles spent in the function including its callees, summed over
    /// invocations. Recursive re-entries are counted topmost-only (an
    /// invocation whose function is already live deeper on the stack
    /// contributes nothing here), so `total_cycles` never exceeds the
    /// run's total cycles.
    pub total_cycles: u64,
}

/// A profile: per-function statistics plus the annotated call graph.
#[deprecated(
    since = "0.1.0",
    note = "superseded by xobs::Attribution: attach an attribution sink to a traced run \
            for exact call-tree cycle accounting (no recursion double-count)"
)]
#[derive(Debug, Clone, Default)]
pub struct Profile {
    functions: BTreeMap<String, FunctionStats>,
    edges: BTreeMap<(String, String), u64>,
}

impl Profile {
    /// Per-function statistics, keyed by function label.
    pub fn functions(&self) -> &BTreeMap<String, FunctionStats> {
        &self.functions
    }

    /// Stats for one function, if it was observed.
    pub fn function(&self, name: &str) -> Option<&FunctionStats> {
        self.functions.get(name)
    }

    /// Call-graph edges `(caller, callee) → call count`.
    pub fn edges(&self) -> &BTreeMap<(String, String), u64> {
        &self.edges
    }

    /// Call count on a specific edge (0 if absent).
    pub fn edge(&self, caller: &str, callee: &str) -> u64 {
        self.edges
            .get(&(caller.to_owned(), callee.to_owned()))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the call graph in a compact text form for reports
    /// (one `caller -> callee xN` line per edge, sorted).
    pub fn render_call_graph(&self) -> String {
        let mut out = String::new();
        for ((caller, callee), count) in &self.edges {
            out.push_str(&format!("{caller} -> {callee} x{count}\n"));
        }
        out
    }
}

#[derive(Debug, Clone)]
struct Frame {
    name: String,
    entered_at: u64,
    callee_cycles: u64,
}

/// Builds a [`Profile`] from call/return events emitted by the
/// simulator.
#[deprecated(
    since = "0.1.0",
    note = "superseded by xobs::Attribution: attach an attribution sink to a traced run \
            for exact call-tree cycle accounting (no recursion double-count)"
)]
#[derive(Debug, Clone)]
pub struct Profiler {
    stack: Vec<Frame>,
    profile: Profile,
    enabled: bool,
}

impl Profiler {
    /// Creates a profiler with an implicit root frame named `root`.
    pub fn new(root: impl Into<String>) -> Self {
        Profiler {
            stack: vec![Frame {
                name: root.into(),
                entered_at: 0,
                callee_cycles: 0,
            }],
            profile: Profile::default(),
            enabled: true,
        }
    }

    /// Disables event processing (zero overhead accounting for runs that
    /// do not need profiles).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Records entry into `callee` at cycle `now`.
    pub fn on_call(&mut self, callee: &str, now: u64) {
        if !self.enabled {
            return;
        }
        let caller = self
            .stack
            .last()
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<orphan>".to_owned());
        *self
            .profile
            .edges
            .entry((caller, callee.to_owned()))
            .or_insert(0) += 1;
        self.stack.push(Frame {
            name: callee.to_owned(),
            entered_at: now,
            callee_cycles: 0,
        });
    }

    /// Records a return at cycle `now`, closing the innermost frame.
    /// A return with only the root frame open is ignored (the root is
    /// closed by [`Profiler::finish`]).
    pub fn on_ret(&mut self, now: u64) {
        if !self.enabled || self.stack.len() <= 1 {
            return;
        }
        let frame = self.stack.pop().expect("stack nonempty");
        let total = now - frame.entered_at;
        // Topmost-only inclusive accounting: if the same function is
        // still live deeper on the stack (recursion, including mutual
        // recursion through the fallthrough convention), its enclosing
        // invocation already covers these cycles.
        let reentered = self.stack.iter().any(|f| f.name == frame.name);
        let stats = self.profile.functions.entry(frame.name).or_default();
        stats.calls += 1;
        if !reentered {
            stats.total_cycles += total;
        }
        stats.self_cycles += total - frame.callee_cycles;
        if let Some(parent) = self.stack.last_mut() {
            parent.callee_cycles += total;
        }
    }

    /// Closes all open frames at cycle `now` and returns the profile.
    pub fn finish(mut self, now: u64) -> Profile {
        while self.stack.len() > 1 {
            self.on_ret(now);
        }
        if let Some(root) = self.stack.pop() {
            let total = now - root.entered_at;
            let stats = self.profile.functions.entry(root.name).or_default();
            stats.calls += 1;
            stats.total_cycles += total;
            stats.self_cycles += total - root.callee_cycles;
        }
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_call_attributes_self_and_total() {
        let mut p = Profiler::new("main");
        p.on_call("f", 10);
        p.on_ret(30);
        let profile = p.finish(50);
        let f = profile.function("f").unwrap();
        assert_eq!(f.calls, 1);
        assert_eq!(f.total_cycles, 20);
        assert_eq!(f.self_cycles, 20);
        let main = profile.function("main").unwrap();
        assert_eq!(main.total_cycles, 50);
        assert_eq!(main.self_cycles, 30);
        assert_eq!(profile.edge("main", "f"), 1);
    }

    #[test]
    fn nested_calls_split_self_cycles() {
        let mut p = Profiler::new("main");
        p.on_call("outer", 0);
        p.on_call("inner", 5);
        p.on_ret(15); // inner: 10
        p.on_ret(20); // outer: 20 total, 10 self
        let profile = p.finish(20);
        assert_eq!(profile.function("inner").unwrap().self_cycles, 10);
        let outer = profile.function("outer").unwrap();
        assert_eq!(outer.total_cycles, 20);
        assert_eq!(outer.self_cycles, 10);
        assert_eq!(profile.edge("outer", "inner"), 1);
        assert_eq!(profile.edge("main", "outer"), 1);
    }

    #[test]
    fn repeated_calls_accumulate_counts() {
        let mut p = Profiler::new("main");
        for i in 0..4u64 {
            p.on_call("g", i * 10);
            p.on_ret(i * 10 + 3);
        }
        let profile = p.finish(100);
        assert_eq!(profile.function("g").unwrap().calls, 4);
        assert_eq!(profile.function("g").unwrap().total_cycles, 12);
        assert_eq!(profile.edge("main", "g"), 4);
    }

    #[test]
    fn unbalanced_frames_closed_by_finish() {
        let mut p = Profiler::new("main");
        p.on_call("f", 2);
        // Missing ret (e.g. simulation halted inside f).
        let profile = p.finish(10);
        assert_eq!(profile.function("f").unwrap().total_cycles, 8);
        assert_eq!(profile.function("main").unwrap().total_cycles, 10);
    }

    #[test]
    fn stray_ret_is_ignored() {
        let mut p = Profiler::new("main");
        p.on_ret(5);
        let profile = p.finish(10);
        assert_eq!(profile.function("main").unwrap().total_cycles, 10);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::new("main");
        p.set_enabled(false);
        p.on_call("f", 1);
        p.on_ret(2);
        let profile = p.finish(10);
        assert!(profile.function("f").is_none());
        assert!(profile.edges().is_empty());
    }

    #[test]
    fn recursion_total_counts_topmost_only() {
        // Regression: direct recursion used to add every invocation's
        // span to total_cycles, so a 3-deep recursion over 100 cycles
        // reported total_cycles = 100 + 80 + 30.
        let mut p = Profiler::new("main");
        p.on_call("fib", 0);
        p.on_call("fib", 10);
        p.on_call("fib", 20);
        p.on_ret(50);
        p.on_ret(90);
        p.on_ret(100);
        let profile = p.finish(100);
        let fib = profile.function("fib").unwrap();
        assert_eq!(fib.calls, 3);
        assert_eq!(fib.total_cycles, 100, "re-entries must not double-count");
        assert_eq!(fib.self_cycles, 100);
        assert_eq!(profile.function("main").unwrap().total_cycles, 100);
    }

    #[test]
    fn mutual_recursion_counts_each_name_topmost_only() {
        // even [0,100) -> odd [10,90) -> even [20,60).
        let mut p = Profiler::new("main");
        p.on_call("even", 0);
        p.on_call("odd", 10);
        p.on_call("even", 20);
        p.on_ret(60);
        p.on_ret(90);
        p.on_ret(100);
        let profile = p.finish(100);
        assert_eq!(profile.function("even").unwrap().total_cycles, 100);
        assert_eq!(profile.function("odd").unwrap().total_cycles, 80);
    }

    #[test]
    fn multi_call_site_helper_totals_accumulate() {
        // Non-recursive repeated calls (distinct call sites) must still
        // sum their totals: only live-on-stack re-entry is suppressed.
        let mut p = Profiler::new("main");
        p.on_call("a", 0);
        p.on_call("helper", 5);
        p.on_ret(15);
        p.on_ret(20);
        p.on_call("b", 30);
        p.on_call("helper", 35);
        p.on_ret(55);
        p.on_ret(60);
        let profile = p.finish(70);
        let h = profile.function("helper").unwrap();
        assert_eq!(h.calls, 2);
        assert_eq!(h.total_cycles, 30);
        assert_eq!(h.self_cycles, 30);
    }

    #[test]
    fn render_call_graph_lists_edges() {
        let mut p = Profiler::new("main");
        p.on_call("a", 0);
        p.on_ret(1);
        p.on_call("b", 2);
        p.on_ret(3);
        let text = p.finish(4).render_call_graph();
        assert!(text.contains("main -> a x1"));
        assert!(text.contains("main -> b x1"));
    }
}
