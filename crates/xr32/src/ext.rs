//! TIE-style instruction extensions: custom instructions and wide user
//! registers.
//!
//! This is the XR32 analog of Tensilica's TIE: a designer describes a
//! custom instruction by its *semantics* (a Rust closure over the
//! execution context), its *latency* in cycles, and its *area* from the
//! structural model in [`crate::area`]. Registered instructions become
//! available to assembly programs as `cust <name> <operands…>`.

use crate::isa::{CustomOp, UserReg};
use crate::mem::Memory;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Wide register file visible only to custom instructions (TIE "user
/// registers" / states).
#[derive(Debug, Clone)]
pub struct UserRegFile {
    words: usize,
    regs: Vec<Vec<u32>>,
}

impl UserRegFile {
    /// Creates `count` registers of `words` 32-bit words each, zeroed.
    pub fn new(count: usize, words: usize) -> Self {
        UserRegFile {
            words,
            regs: vec![vec![0; words]; count],
        }
    }

    /// Width of each register in words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Borrows a register's words.
    ///
    /// # Panics
    ///
    /// Panics if the register index is out of range for this
    /// configuration.
    pub fn get(&self, ur: UserReg) -> &[u32] {
        &self.regs[ur.index()]
    }

    /// Mutably borrows a register's words.
    ///
    /// # Panics
    ///
    /// Panics if the register index is out of range.
    pub fn get_mut(&mut self, ur: UserReg) -> &mut [u32] {
        &mut self.regs[ur.index()]
    }

    /// Zeroes every register.
    pub fn clear(&mut self) {
        for r in &mut self.regs {
            r.fill(0);
        }
    }
}

/// Execution context handed to a custom instruction's semantic closure.
pub struct ExecCtx<'a> {
    /// General-purpose registers.
    pub regs: &'a mut [u32; 16],
    /// Wide user registers.
    pub uregs: &'a mut UserRegFile,
    /// Data memory.
    pub mem: &'a mut Memory,
    /// The carry flag.
    pub carry: &'a mut bool,
}

/// Error raised by a custom instruction's semantics (wraps into
/// [`crate::cpu::SimError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CustomInsnError {
    /// Instruction name.
    pub name: String,
    /// Human-readable cause.
    pub message: String,
}

impl fmt::Display for CustomInsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "custom instruction `{}` failed: {}",
            self.name, self.message
        )
    }
}

impl std::error::Error for CustomInsnError {}

/// Semantic function of a custom instruction.
pub type CustomFn =
    Arc<dyn Fn(&mut ExecCtx<'_>, &CustomOp) -> Result<(), CustomInsnError> + Send + Sync>;

/// One designer-defined custom instruction: semantics + latency + area.
#[derive(Clone)]
pub struct CustomInsnDef {
    /// Name used in assembly (`cust <name> …`).
    pub name: String,
    /// Execution latency in cycles (≥ 1).
    pub latency: u32,
    /// Structural area in gate equivalents (see [`crate::area`]).
    pub area: u64,
    /// The instruction's semantics.
    pub exec: CustomFn,
}

impl fmt::Debug for CustomInsnDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CustomInsnDef")
            .field("name", &self.name)
            .field("latency", &self.latency)
            .field("area", &self.area)
            .finish()
    }
}

impl CustomInsnDef {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero.
    pub fn new(
        name: impl Into<String>,
        latency: u32,
        area: u64,
        exec: impl Fn(&mut ExecCtx<'_>, &CustomOp) -> Result<(), CustomInsnError>
            + Send
            + Sync
            + 'static,
    ) -> Self {
        assert!(latency >= 1, "latency must be at least one cycle");
        CustomInsnDef {
            name: name.into(),
            latency,
            area,
            exec: Arc::new(exec),
        }
    }
}

/// The set of custom instructions configured into a core.
#[derive(Debug, Clone, Default)]
pub struct ExtensionSet {
    insns: BTreeMap<String, CustomInsnDef>,
}

impl ExtensionSet {
    /// An empty extension set (the base processor).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an instruction, replacing any previous definition with
    /// the same name. Returns the previous definition if there was one.
    pub fn register(&mut self, def: CustomInsnDef) -> Option<CustomInsnDef> {
        self.insns.insert(def.name.clone(), def)
    }

    /// Looks up an instruction by name.
    pub fn get(&self, name: &str) -> Option<&CustomInsnDef> {
        self.insns.get(name)
    }

    /// Iterates over registered instruction names (sorted).
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.insns.keys().map(String::as_str)
    }

    /// Number of registered instructions.
    pub fn len(&self) -> usize {
        self.insns.len()
    }

    /// True when no custom instructions are registered.
    pub fn is_empty(&self) -> bool {
        self.insns.is_empty()
    }

    /// Total area of all registered instructions in gate equivalents
    /// (the hardware overhead the paper's selection phase constrains).
    pub fn total_area(&self) -> u64 {
        self.insns.values().map(|d| d.area).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;

    fn nop_def(name: &str, area: u64) -> CustomInsnDef {
        CustomInsnDef::new(name, 1, area, |_, _| Ok(()))
    }

    #[test]
    fn user_regs_store_wide_values() {
        let mut f = UserRegFile::new(4, 4);
        f.get_mut(UserReg::new(2)).copy_from_slice(&[1, 2, 3, 4]);
        assert_eq!(f.get(UserReg::new(2)), &[1, 2, 3, 4]);
        assert_eq!(f.get(UserReg::new(0)), &[0, 0, 0, 0]);
        f.clear();
        assert_eq!(f.get(UserReg::new(2)), &[0, 0, 0, 0]);
    }

    #[test]
    fn extension_set_registers_and_sums_area() {
        let mut ext = ExtensionSet::new();
        assert!(ext.is_empty());
        ext.register(nop_def("add4", 1000));
        ext.register(nop_def("mac1", 7000));
        assert_eq!(ext.len(), 2);
        assert_eq!(ext.total_area(), 8000);
        assert!(ext.get("add4").is_some());
        assert!(ext.get("missing").is_none());
        assert_eq!(ext.names().collect::<Vec<_>>(), vec!["add4", "mac1"]);
    }

    #[test]
    fn reregistering_replaces() {
        let mut ext = ExtensionSet::new();
        ext.register(nop_def("x", 10));
        let old = ext.register(nop_def("x", 20));
        assert_eq!(old.expect("previous def").area, 10);
        assert_eq!(ext.total_area(), 20);
    }

    #[test]
    fn custom_semantics_can_mutate_state() {
        let def = CustomInsnDef::new("swap01", 1, 0, |ctx, _op| {
            ctx.regs.swap(0, 1);
            Ok(())
        });
        let mut regs = [0u32; 16];
        regs[0] = 7;
        regs[1] = 9;
        let mut uregs = UserRegFile::new(1, 1);
        let mut mem = Memory::new(16);
        let mut carry = false;
        let mut ctx = ExecCtx {
            regs: &mut regs,
            uregs: &mut uregs,
            mem: &mut mem,
            carry: &mut carry,
        };
        let op = CustomOp {
            name: "swap01".into(),
            regs: vec![Reg::new(0), Reg::new(1)],
            uregs: vec![],
            imm: 0,
        };
        (def.exec)(&mut ctx, &op).unwrap();
        assert_eq!(regs[0], 9);
        assert_eq!(regs[1], 7);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = CustomInsnDef::new("bad", 0, 0, |_, _| Ok(()));
    }
}
