//! XR32: a configurable, extensible 32-bit embedded RISC processor with a
//! cycle-accurate instruction-set simulator.
//!
//! XR32 is this repository's stand-in for the Tensilica Xtensa T1040 used
//! by the DAC 2002 wireless security processing platform paper. It mirrors
//! the properties the paper's methodology depends on:
//!
//! - a **32-bit RISC base ISA** (16 general registers, load/store,
//!   single-cycle ALU, optional hardware multiplier) — see [`isa`];
//! - a **two-pass assembler** for writing library kernels — see [`asm`];
//! - **pluggable cycle-accurate core models** behind one pipeline seam:
//!   the in-order baseline (load-use interlocks, branch penalty) and a
//!   scoreboarded out-of-order family (ROB, renaming, reservation
//!   stations, load-store queue, 2-bit branch predictor), both over
//!   I/D caches with configurable geometry — see [`xcore`], [`cpu`]
//!   and [`cache`];
//! - a **TIE-like extension interface**: designer-specified custom
//!   instructions with semantics, latency, and a structural gate-count
//!   area model, plus wide *user registers* and custom load/stores — see
//!   [`ext`] and [`area`];
//! - **fault injection hooks** for deterministic, seed-reproducible
//!   resilience campaigns (bit-flips in loads and registers, cache-tag
//!   corruption, stuck-at custom-instruction results) — see
//!   [`Cpu::set_fault_plan`](cpu::Cpu::set_fault_plan) and the `xfault`
//!   crate;
//! - **call-tree cycle attribution** producing the annotated call graphs
//!   the paper's global custom-instruction selection consumes — attach an
//!   `xobs::Attribution` sink to any traced run;
//! - a **dual-fidelity execution choice**: the cycle-accurate pipeline
//!   above for measurement, or a pre-decoded functional fast path for
//!   golden-reference checks and stimulus triage — see [`xjit`] and
//!   [`Cpu::set_fidelity`](cpu::Cpu::set_fidelity).
//!
//! # Examples
//!
//! ```
//! use xr32::asm::assemble;
//! use xr32::cpu::Cpu;
//! use xr32::config::CpuConfig;
//!
//! let program = assemble(
//!     "        movi a2, 20
//!             movi a3, 22
//!             add  a2, a2, a3
//!             halt",
//! )?;
//! let mut cpu = Cpu::new(CpuConfig::default());
//! cpu.run(&program)?;
//! assert_eq!(cpu.reg(2), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod asm;
pub mod cache;
pub mod config;
pub mod cpu;
pub mod energy;
pub mod ext;
pub mod isa;
pub mod mem;
pub mod xcore;
pub mod xjit;

pub use asm::{assemble, AssembleError, Program};
pub use config::{CacheConfig, CpuConfig};
pub use cpu::{Cpu, RunSummary, SimError};
pub use ext::{CustomInsnDef, ExtensionSet};
pub use isa::{Insn, Reg};
pub use xcore::{CoreKind, CoreModel, CoreSpec, OooParams};
pub use xjit::Fidelity;
