//! Set-associative cache model with LRU replacement.
//!
//! Both the instruction and data side of the XR32 timing model use this
//! cache. Only timing is modeled (hit/miss); data always comes from the
//! backing [`crate::mem::Memory`].

use xobs::trace::{CacheSide, TraceEvent, TraceSink};

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, non-power-of-
    /// two line size, or capacity not divisible by `line_bytes * ways`).
    pub fn sets(&self) -> usize {
        assert!(self.line_bytes.is_power_of_two() && self.line_bytes >= 4);
        assert!(self.ways >= 1);
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines >= self.ways && lines.is_multiple_of(self.ways),
            "cache capacity must be a whole number of ways"
        );
        lines / self.ways
    }
}

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of accesses that hit.
    pub hits: u64,
    /// Number of accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses() == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// A set-associative LRU cache (timing model only).
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    sets: usize,
    lines: Vec<Line>, // sets * ways
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Builds an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see
    /// [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            sets,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    lru: 0,
                };
                sets * config.ways
            ],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets contents and statistics.
    pub fn reset(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }

    /// Performs one access; returns `true` on hit. A miss fills the line
    /// (allocate-on-miss for both reads and writes).
    pub fn access(&mut self, addr: u64) -> bool {
        self.tick += 1;
        let line_addr = addr / self.config.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let ways = self.config.ways;
        let base = set * ways;

        for i in 0..ways {
            let line = &mut self.lines[base + i];
            if line.valid && line.tag == tag {
                line.lru = self.tick;
                self.stats.hits += 1;
                return true;
            }
        }
        // Miss: replace the LRU (or first invalid) way.
        let victim = (0..ways)
            .min_by_key(|&i| {
                let l = &self.lines[base + i];
                if l.valid {
                    l.lru
                } else {
                    0
                }
            })
            .expect("ways >= 1");
        self.lines[base + victim] = Line {
            tag,
            valid: true,
            lru: self.tick,
        };
        self.stats.misses += 1;
        false
    }

    /// Invalidates the line holding `addr`, if resident, and returns
    /// whether a line was dropped. Models a corrupted tag: the next
    /// access to the address misses and refills. Statistics are not
    /// touched — this is a state change, not an access.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let line_addr = addr / self.config.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.config.ways;
        for i in 0..self.config.ways {
            let line = &mut self.lines[base + i];
            if line.valid && line.tag == tag {
                line.valid = false;
                return true;
            }
        }
        false
    }

    /// Performs one access like [`Cache::access`], charging
    /// `miss_latency` extra cycles on a miss and emitting a
    /// [`TraceEvent::Cache`] stamped with the post-access cycle counter.
    /// Returns `(hit, cycle_after)`.
    pub fn access_traced(
        &mut self,
        addr: u64,
        side: CacheSide,
        cycle: u64,
        miss_latency: u32,
        sink: &mut dyn TraceSink,
    ) -> (bool, u64) {
        let hit = self.access(addr);
        let cycle = if hit {
            cycle
        } else {
            cycle + miss_latency as u64
        };
        sink.on_event(&TraceEvent::Cache {
            side,
            addr,
            hit,
            cycle,
        });
        (hit, cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 lines of 16 bytes, direct mapped.
        Cache::new(CacheConfig {
            size_bytes: 64,
            line_bytes: 16,
            ways: 1,
        })
    }

    #[test]
    fn geometry_computed() {
        let c = CacheConfig {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            ways: 2,
        };
        assert_eq!(c.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "whole number of ways")]
    fn inconsistent_geometry_panics() {
        let _ = CacheConfig {
            size_bytes: 48,
            line_bytes: 16,
            ways: 2,
        }
        .sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x10c)); // same 16-byte line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let mut c = tiny();
        // 4 sets of 16B: addresses 0x000 and 0x040 map to set 0.
        assert!(!c.access(0x000));
        assert!(!c.access(0x040));
        assert!(!c.access(0x000), "conflict should have evicted");
    }

    #[test]
    fn two_way_avoids_simple_conflict() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            line_bytes: 16,
            ways: 2,
        });
        assert!(!c.access(0x000));
        assert!(!c.access(0x040)); // same set, other way
        assert!(c.access(0x000));
        assert!(c.access(0x040));
    }

    #[test]
    fn lru_replacement_order() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 32,
            line_bytes: 16,
            ways: 2,
        });
        // One set, two ways.
        c.access(0x00); // A
        c.access(0x10); // B
        c.access(0x00); // A again (B becomes LRU)
        c.access(0x20); // C evicts B
        assert!(c.access(0x00), "A should still be resident");
        assert!(!c.access(0x10), "B was evicted");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = tiny();
        c.access(0x0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
        assert!(!c.access(0x0));
    }

    #[test]
    fn hit_rate_of_fresh_cache_is_one() {
        assert_eq!(tiny().stats().hit_rate(), 1.0);
    }

    #[test]
    fn invalidate_forces_next_access_to_miss() {
        let mut c = tiny();
        c.access(0x100);
        assert!(c.access(0x100), "resident line hits");
        assert!(c.invalidate(0x100), "line was resident");
        assert!(!c.invalidate(0x100), "already gone");
        assert!(!c.access(0x100), "corrupted tag forces a refill");
        // Invalidation itself never counts as an access.
        assert_eq!(c.stats().accesses(), 3);
    }
}
