//! Property-based tests for the XR32 simulator: assembler round trips,
//! ALU semantics against host arithmetic, and timing-model invariants.

use proptest::prelude::*;
use xobs::{Attribution, EventStats, VecSink};
use xr32::asm::assemble;
use xr32::config::CpuConfig;
use xr32::cpu::Cpu;

/// Assembles a random straight-line/loop/call program from a template:
/// `main` stores `values`, loops `n` times accumulating loads, and calls
/// a helper once per iteration. Exercises every trace hook point.
fn random_program(values: &[u32], n: u32) -> xr32::asm::Program {
    let mut src = String::from("main:\n movi a1, 0x100\n");
    for (i, v) in values.iter().enumerate() {
        src.push_str(&format!(" movi a2, {}\n sw a2, a1, {}\n", *v as i64, 4 * i));
    }
    src.push_str(&format!(
        " movi a0, {n}
          movi a4, 0
        loop:
          lw   a3, a1, 0
          add  a4, a4, a3
          addi sp, sp, -4
          sw   ra, sp, 0
          call helper
          lw   ra, sp, 0
          addi sp, sp, 4
          movi a5, 0
          addi a0, a0, -1
          bne  a0, a5, loop
          halt
        helper:
          mul  a6, a4, a4
          add  a6, a6, a4
          ret
        "
    ));
    assemble(&src).expect("valid template program")
}

fn run_binop(op: &str, a: u32, b: u32) -> u32 {
    let src = format!(
        "main:
            movi a1, {a}
            movi a2, {b}
            {op}  a3, a1, a2
            halt",
        a = a as i64,
        b = b as i64,
    );
    let p = assemble(&src).expect("valid program");
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.run(&p).expect("halts");
    cpu.reg(3)
}

proptest! {
    #[test]
    fn alu_ops_match_host_semantics(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_binop("add", a, b), a.wrapping_add(b));
        prop_assert_eq!(run_binop("sub", a, b), a.wrapping_sub(b));
        prop_assert_eq!(run_binop("and", a, b), a & b);
        prop_assert_eq!(run_binop("or", a, b), a | b);
        prop_assert_eq!(run_binop("xor", a, b), a ^ b);
        prop_assert_eq!(run_binop("sll", a, b), a << (b & 31));
        prop_assert_eq!(run_binop("srl", a, b), a >> (b & 31));
        prop_assert_eq!(run_binop("sra", a, b), ((a as i32) >> (b & 31)) as u32);
        prop_assert_eq!(run_binop("sltu", a, b), (a < b) as u32);
        prop_assert_eq!(run_binop("slt", a, b), ((a as i32) < (b as i32)) as u32);
        prop_assert_eq!(run_binop("mul", a, b), a.wrapping_mul(b));
        prop_assert_eq!(
            run_binop("mulhu", a, b),
            ((a as u64 * b as u64) >> 32) as u32
        );
    }

    #[test]
    fn addc_subc_chain_works_like_u64(a in any::<u64>(), b in any::<u64>()) {
        // Two-limb add with carry must equal 64-bit addition.
        let src = format!(
            "main:
                movi a1, {al}
                movi a2, {ah}
                movi a3, {bl}
                movi a4, {bh}
                clc
                addc a5, a1, a3
                addc a6, a2, a4
                halt",
            al = (a as u32) as i64,
            ah = ((a >> 32) as u32) as i64,
            bl = (b as u32) as i64,
            bh = ((b >> 32) as u32) as i64,
        );
        let p = assemble(&src).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.run(&p).expect("halts");
        let sum = a.wrapping_add(b);
        prop_assert_eq!(cpu.reg(5), sum as u32);
        prop_assert_eq!(cpu.reg(6), (sum >> 32) as u32);
    }

    #[test]
    fn memory_roundtrip_through_cpu(values in prop::collection::vec(any::<u32>(), 1..16)) {
        // Store then load each word through simulated instructions.
        let mut src = String::from("main:\n movi a1, 0x100\n");
        for (i, v) in values.iter().enumerate() {
            src.push_str(&format!(" movi a2, {}\n sw a2, a1, {}\n", *v as i64, 4 * i));
        }
        for (i, _) in values.iter().enumerate() {
            src.push_str(&format!(" lw a3, a1, {}\n sw a3, a1, {}\n", 4 * i, 0x100 + 4 * i));
        }
        src.push_str(" halt\n");
        let p = assemble(&src).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.run(&p).expect("halts");
        let out = cpu.mem().read_words(0x200, values.len()).expect("in range");
        prop_assert_eq!(out, values);
    }

    #[test]
    fn cycles_monotone_in_loop_count(n in 1u32..200) {
        let src = format!(
            "main:
                movi a0, {n}
                movi a1, 0
            loop:
                addi a0, a0, -1
                bne  a0, a1, loop
                halt"
        );
        let p = assemble(&src).expect("valid");
        let mut c1 = Cpu::new(CpuConfig::default());
        let s1 = c1.run(&p).expect("halts");
        // Double the count must cost strictly more cycles.
        let src2 = src.replace(&format!("movi a0, {n}"), &format!("movi a0, {}", 2 * n));
        let p2 = assemble(&src2).expect("valid");
        let mut c2 = Cpu::new(CpuConfig::default());
        let s2 = c2.run(&p2).expect("halts");
        prop_assert!(s2.cycles > s1.cycles);
        prop_assert_eq!(s2.instructions, s1.instructions + 2 * n as u64);
    }

    #[test]
    fn cache_miss_penalty_visible(stride in 1u32..6) {
        // Strided loads across lines must not be faster than repeated
        // loads of one address.
        let hot = "main:
            movi a1, 0x100
            movi a0, 64
            movi a2, 0
        loop:
            lw a3, a1, 0
            addi a0, a0, -1
            bne a0, a2, loop
            halt";
        let cold_src = format!(
            "main:
                movi a1, 0x100
                movi a0, 64
                movi a2, 0
            loop:
                lw a3, a1, 0
                addi a1, a1, {}
                addi a0, a0, -1
                bne a0, a2, loop
                halt",
            stride * 64
        );
        let ph = assemble(hot).expect("valid");
        let pc = assemble(&cold_src).expect("valid");
        let mut ch = Cpu::new(CpuConfig::default());
        let sh = ch.run(&ph).expect("halts");
        let mut cc = Cpu::new(CpuConfig::default());
        let sc = cc.run(&pc).expect("halts");
        prop_assert!(sc.cycles > sh.cycles, "cold {} vs hot {}", sc.cycles, sh.cycles);
        prop_assert!(sc.dcache.misses > sh.dcache.misses);
    }

    /// Observer effect = 0: attaching a trace sink must not change
    /// architectural state, cycle counts, instruction counts, or cache
    /// statistics on random programs.
    #[test]
    fn tracing_is_invisible_to_the_machine(
        values in prop::collection::vec(any::<u32>(), 1..8),
        n in 1u32..20,
    ) {
        let p = random_program(&values, n);
        let mut plain = Cpu::new(CpuConfig::default());
        let s_plain = plain.run(&p).expect("halts");
        let mut traced = Cpu::new(CpuConfig::default());
        let mut sink = VecSink::new();
        let s_traced = traced.run_traced(&p, Some(&mut sink)).expect("halts");

        prop_assert_eq!(s_plain.cycles, s_traced.cycles);
        prop_assert_eq!(s_plain.instructions, s_traced.instructions);
        prop_assert_eq!(s_plain.icache, s_traced.icache);
        prop_assert_eq!(s_plain.dcache, s_traced.dcache);
        for i in 0..16 {
            prop_assert_eq!(plain.reg(i), traced.reg(i), "register a{} diverged", i);
        }
        prop_assert_eq!(
            plain.mem().read_words(0x100, values.len()).expect("in range"),
            traced.mem().read_words(0x100, values.len()).expect("in range")
        );
        prop_assert!(!sink.events().is_empty());
    }

    /// Conservation: folded-stack inclusive cycles reconstructed from
    /// the event stream sum to the run's total simulated cycles, and
    /// per-category event tallies agree with the run summary.
    #[test]
    fn attribution_accounts_for_every_cycle(
        values in prop::collection::vec(any::<u32>(), 1..8),
        n in 1u32..20,
    ) {
        let p = random_program(&values, n);
        let mut cpu = Cpu::new(CpuConfig::default());
        let mut attr = Attribution::new();
        let mut stats = EventStats::new();
        {
            let mut tee = xobs::trace::TeeSink::new(vec![&mut attr, &mut stats]);
            cpu.run_traced(&p, Some(&mut tee)).expect("halts");
        }
        let total = cpu.cycles();
        prop_assert_eq!(attr.open_frames(), 0);
        prop_assert_eq!(attr.unmatched_rets(), 0);
        prop_assert_eq!(attr.total_cycles(), total);
        let folded_sum: u64 = attr
            .folded()
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        prop_assert_eq!(folded_sum, total);
        prop_assert_eq!(stats.retires, cpu_instructions(&p));
        prop_assert_eq!(stats.last_cycle, total);
    }
}

/// Instruction count of an untraced reference run (helper for the
/// conservation property).
fn cpu_instructions(p: &xr32::asm::Program) -> u64 {
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.run(p).expect("halts").instructions
}
