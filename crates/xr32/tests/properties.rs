//! Property-based tests for the XR32 simulator: assembler round trips,
//! ALU semantics against host arithmetic, and timing-model invariants.

use proptest::prelude::*;
use xr32::asm::assemble;
use xr32::config::CpuConfig;
use xr32::cpu::Cpu;

fn run_binop(op: &str, a: u32, b: u32) -> u32 {
    let src = format!(
        "main:
            movi a1, {a}
            movi a2, {b}
            {op}  a3, a1, a2
            halt",
        a = a as i64,
        b = b as i64,
    );
    let p = assemble(&src).expect("valid program");
    let mut cpu = Cpu::new(CpuConfig::default());
    cpu.run(&p).expect("halts");
    cpu.reg(3)
}

proptest! {
    #[test]
    fn alu_ops_match_host_semantics(a in any::<u32>(), b in any::<u32>()) {
        prop_assert_eq!(run_binop("add", a, b), a.wrapping_add(b));
        prop_assert_eq!(run_binop("sub", a, b), a.wrapping_sub(b));
        prop_assert_eq!(run_binop("and", a, b), a & b);
        prop_assert_eq!(run_binop("or", a, b), a | b);
        prop_assert_eq!(run_binop("xor", a, b), a ^ b);
        prop_assert_eq!(run_binop("sll", a, b), a << (b & 31));
        prop_assert_eq!(run_binop("srl", a, b), a >> (b & 31));
        prop_assert_eq!(run_binop("sra", a, b), ((a as i32) >> (b & 31)) as u32);
        prop_assert_eq!(run_binop("sltu", a, b), (a < b) as u32);
        prop_assert_eq!(run_binop("slt", a, b), ((a as i32) < (b as i32)) as u32);
        prop_assert_eq!(run_binop("mul", a, b), a.wrapping_mul(b));
        prop_assert_eq!(
            run_binop("mulhu", a, b),
            ((a as u64 * b as u64) >> 32) as u32
        );
    }

    #[test]
    fn addc_subc_chain_works_like_u64(a in any::<u64>(), b in any::<u64>()) {
        // Two-limb add with carry must equal 64-bit addition.
        let src = format!(
            "main:
                movi a1, {al}
                movi a2, {ah}
                movi a3, {bl}
                movi a4, {bh}
                clc
                addc a5, a1, a3
                addc a6, a2, a4
                halt",
            al = (a as u32) as i64,
            ah = ((a >> 32) as u32) as i64,
            bl = (b as u32) as i64,
            bh = ((b >> 32) as u32) as i64,
        );
        let p = assemble(&src).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.run(&p).expect("halts");
        let sum = a.wrapping_add(b);
        prop_assert_eq!(cpu.reg(5), sum as u32);
        prop_assert_eq!(cpu.reg(6), (sum >> 32) as u32);
    }

    #[test]
    fn memory_roundtrip_through_cpu(values in prop::collection::vec(any::<u32>(), 1..16)) {
        // Store then load each word through simulated instructions.
        let mut src = String::from("main:\n movi a1, 0x100\n");
        for (i, v) in values.iter().enumerate() {
            src.push_str(&format!(" movi a2, {}\n sw a2, a1, {}\n", *v as i64, 4 * i));
        }
        for (i, _) in values.iter().enumerate() {
            src.push_str(&format!(" lw a3, a1, {}\n sw a3, a1, {}\n", 4 * i, 0x100 + 4 * i));
        }
        src.push_str(" halt\n");
        let p = assemble(&src).expect("valid");
        let mut cpu = Cpu::new(CpuConfig::default());
        cpu.run(&p).expect("halts");
        let out = cpu.mem().read_words(0x200, values.len()).expect("in range");
        prop_assert_eq!(out, values);
    }

    #[test]
    fn cycles_monotone_in_loop_count(n in 1u32..200) {
        let src = format!(
            "main:
                movi a0, {n}
                movi a1, 0
            loop:
                addi a0, a0, -1
                bne  a0, a1, loop
                halt"
        );
        let p = assemble(&src).expect("valid");
        let mut c1 = Cpu::new(CpuConfig::default());
        let s1 = c1.run(&p).expect("halts");
        // Double the count must cost strictly more cycles.
        let src2 = src.replace(&format!("movi a0, {n}"), &format!("movi a0, {}", 2 * n));
        let p2 = assemble(&src2).expect("valid");
        let mut c2 = Cpu::new(CpuConfig::default());
        let s2 = c2.run(&p2).expect("halts");
        prop_assert!(s2.cycles > s1.cycles);
        prop_assert_eq!(s2.instructions, s1.instructions + 2 * n as u64);
    }

    #[test]
    fn cache_miss_penalty_visible(stride in 1u32..6) {
        // Strided loads across lines must not be faster than repeated
        // loads of one address.
        let hot = "main:
            movi a1, 0x100
            movi a0, 64
            movi a2, 0
        loop:
            lw a3, a1, 0
            addi a0, a0, -1
            bne a0, a2, loop
            halt";
        let cold_src = format!(
            "main:
                movi a1, 0x100
                movi a0, 64
                movi a2, 0
            loop:
                lw a3, a1, 0
                addi a1, a1, {}
                addi a0, a0, -1
                bne a0, a2, loop
                halt",
            stride * 64
        );
        let ph = assemble(hot).expect("valid");
        let pc = assemble(&cold_src).expect("valid");
        let mut ch = Cpu::new(CpuConfig::default());
        let sh = ch.run(&ph).expect("halts");
        let mut cc = Cpu::new(CpuConfig::default());
        let sc = cc.run(&pc).expect("halts");
        prop_assert!(sc.cycles > sh.cycles, "cold {} vs hot {}", sc.cycles, sh.cycles);
        prop_assert!(sc.dcache.misses > sh.dcache.misses);
    }
}
