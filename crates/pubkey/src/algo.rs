//! Multi-precision algorithms expressed over the metered [`MpnOps`]
//! boundary.
//!
//! Everything here performs its limb work *exclusively* through an
//! [`MpnOps`] provider, so the same code path serves functional
//! execution, macro-model estimation, and ISS co-simulation. Limb-vector
//! conventions match [`mpint::mpn`] (little-endian, `Vec<L>` results
//! sized exactly).

use crate::ops::MpnOps;
use mpint::limb::Limb;
use mpint::mpn;
use std::cmp::Ordering;

/// Default operand size (limbs) above which Karatsuba recursion is used.
pub const KARATSUBA_THRESHOLD: usize = 16;

/// Schoolbook product `a × b` (lengths may differ).
pub fn mul_schoolbook<L: Limb, O: MpnOps<L> + ?Sized>(ops: &mut O, a: &[L], b: &[L]) -> Vec<L> {
    let mut r = vec![L::ZERO; a.len() + b.len()];
    if a.is_empty() || b.is_empty() {
        return r;
    }
    for (j, &bj) in b.iter().enumerate() {
        let carry = ops.addmul_1(&mut r[j..j + a.len()], a, bj);
        r[j + a.len()] = carry;
    }
    ops.glue(b.len() as u64);
    r
}

/// Karatsuba product with the given basecase threshold.
pub fn mul_karatsuba<L: Limb, O: MpnOps<L> + ?Sized>(
    ops: &mut O,
    a: &[L],
    b: &[L],
    threshold: usize,
) -> Vec<L> {
    let an = mpn::normalized(a);
    let bn = mpn::normalized(b);
    let mut r = vec![L::ZERO; a.len() + b.len()];
    if an.is_empty() || bn.is_empty() {
        return r;
    }
    let prod = kara_rec(ops, an, bn, threshold.max(2));
    r[..prod.len()].copy_from_slice(&prod);
    r
}

fn kara_rec<L: Limb, O: MpnOps<L> + ?Sized>(
    ops: &mut O,
    a: &[L],
    b: &[L],
    threshold: usize,
) -> Vec<L> {
    if a.len().min(b.len()) <= threshold {
        return mul_schoolbook(ops, a, b);
    }
    let m = a.len().max(b.len()) / 2;
    let (a0, a1) = split_at_limb(a, m);
    let (b0, b1) = split_at_limb(b, m);

    let z0 = mul_nonempty(ops, a0, b0, threshold);
    let z2 = mul_nonempty(ops, a1, b1, threshold);
    let asum = add_full(ops, a0, a1);
    let bsum = add_full(ops, b0, b1);
    let mut z1 = mul_nonempty(ops, &asum, &bsum, threshold);
    sub_in_place(ops, &mut z1, &z0);
    sub_in_place(ops, &mut z1, &z2);

    let mut r = vec![L::ZERO; a.len() + b.len()];
    add_at(ops, &mut r, &z0, 0);
    add_at(ops, &mut r, &z1, m);
    add_at(ops, &mut r, &z2, 2 * m);
    ops.glue(3);
    r
}

fn mul_nonempty<L: Limb, O: MpnOps<L> + ?Sized>(
    ops: &mut O,
    a: &[L],
    b: &[L],
    threshold: usize,
) -> Vec<L> {
    let a = mpn::normalized(a);
    let b = mpn::normalized(b);
    if a.is_empty() || b.is_empty() {
        Vec::new()
    } else {
        kara_rec(ops, a, b, threshold)
    }
}

fn split_at_limb<L: Limb>(a: &[L], m: usize) -> (&[L], &[L]) {
    if a.len() <= m {
        (a, &[])
    } else {
        (&a[..m], &a[m..])
    }
}

/// Full-width addition of arbitrary-length vectors, metered as one
/// `add_n` of the longer length.
pub fn add_full<L: Limb, O: MpnOps<L> + ?Sized>(ops: &mut O, a: &[L], b: &[L]) -> Vec<L> {
    let n = a.len().max(b.len()) + 1;
    let mut ap = a.to_vec();
    ap.resize(n, L::ZERO);
    let mut bp = b.to_vec();
    bp.resize(n, L::ZERO);
    let mut r = vec![L::ZERO; n];
    let carry = ops.add_n(&mut r, &ap, &bp);
    debug_assert!(!carry);
    while r.last() == Some(&L::ZERO) && r.len() > a.len().max(b.len()) {
        r.pop();
    }
    r
}

/// In-place subtraction `a -= b` (numerically `a >= b`), metered as one
/// `sub_n`.
fn sub_in_place<L: Limb, O: MpnOps<L> + ?Sized>(ops: &mut O, a: &mut [L], b: &[L]) {
    let b = mpn::normalized(b);
    if b.is_empty() {
        return;
    }
    let mut bp = b.to_vec();
    bp.resize(a.len(), L::ZERO);
    let tmp = a.to_vec();
    let borrow = ops.sub_n(a, &tmp, &bp);
    debug_assert!(!borrow, "subtraction went negative");
}

/// Adds `v` into `r` at limb offset `off`, metered as one `add_n` of
/// `v`'s length (carry ripple accounted as glue).
fn add_at<L: Limb, O: MpnOps<L> + ?Sized>(ops: &mut O, r: &mut [L], v: &[L], off: usize) {
    let v = mpn::normalized(v);
    if v.is_empty() {
        return;
    }
    let seg = r[off..off + v.len()].to_vec();
    let mut out = vec![L::ZERO; v.len()];
    let mut carry = ops.add_n(&mut out, &seg, v);
    r[off..off + v.len()].copy_from_slice(&out);
    let mut i = off + v.len();
    while carry {
        debug_assert!(i < r.len(), "recombination overflow");
        let (s, c) = r[i].add_carry(L::ONE, false);
        r[i] = s;
        carry = c;
        i += 1;
        ops.glue(1);
    }
}

/// Full division: `(quotient, remainder)` via Knuth algorithm D with the
/// quotient estimate metered through [`MpnOps::div_qhat`].
///
/// # Panics
///
/// Panics if `d` is zero.
pub fn divrem<L: Limb, O: MpnOps<L> + ?Sized>(ops: &mut O, n: &[L], d: &[L]) -> (Vec<L>, Vec<L>) {
    let d = mpn::normalized(d);
    assert!(!d.is_empty(), "division by zero");
    let n = mpn::normalized(n);
    if mpn::cmp(n, d) == Ordering::Less {
        return (Vec::new(), n.to_vec());
    }
    if d.len() == 1 {
        // Single-limb divisor: one div_qhat per quotient limb against the
        // normalized divisor.
        let shift = d[0].leading_zeros();
        let dd = d[0] << shift;
        let mut nv = vec![L::ZERO; n.len() + 1];
        if shift > 0 {
            let out = ops.lshift(&mut nv[..n.len()], n, shift);
            nv[n.len()] = out;
        } else {
            nv[..n.len()].copy_from_slice(n);
        }
        let mut q = vec![L::ZERO; n.len()];
        let mut rem = nv[n.len()];
        for i in (0..n.len()).rev() {
            // Degenerate 2-by-1 estimate: reuse div_qhat with d0 = 0.
            let qi = ops.div_qhat(rem, nv[i], L::ZERO, dd, L::ZERO);
            // Correct residue natively (the kernel returns the quotient).
            let num = (rem.to_u64() << L::BITS) | nv[i].to_u64();
            rem = L::from_u64(num - qi.to_u64() * dd.to_u64());
            q[i] = qi;
        }
        let rem = rem >> shift;
        let rv = if rem == L::ZERO {
            Vec::new()
        } else {
            vec![rem]
        };
        return (mpn::normalized(&q).to_vec(), rv);
    }

    // Normalize so the divisor's top bit is set.
    let shift = d[d.len() - 1].leading_zeros();
    let mut dv = d.to_vec();
    let mut nv = vec![L::ZERO; n.len() + 1];
    if shift > 0 {
        let dsrc = d.to_vec();
        ops.lshift(&mut dv, &dsrc, shift);
        let out = ops.lshift(&mut nv[..n.len()], n, shift);
        nv[n.len()] = out;
    } else {
        nv[..n.len()].copy_from_slice(n);
    }
    let dn = dv.len();
    let m = nv.len() - 1;
    let d1 = dv[dn - 1];
    let d0 = dv[dn - 2];
    let mut q = vec![L::ZERO; m - dn + 1];
    for j in (0..=m - dn).rev() {
        let qhat = ops.div_qhat(nv[j + dn], nv[j + dn - 1], nv[j + dn - 2], d1, d0);
        let borrow = ops.submul_1(&mut nv[j..j + dn], &dv, qhat);
        let (t, under) = nv[j + dn].sub_borrow(borrow, false);
        nv[j + dn] = t;
        let mut qv = qhat;
        if under {
            qv = L::from_u64(qv.to_u64().wrapping_sub(1));
            let seg = nv[j..j + dn].to_vec();
            let mut out = vec![L::ZERO; dn];
            let carry = ops.add_n(&mut out, &seg, &dv);
            nv[j..j + dn].copy_from_slice(&out);
            let (t, _) = nv[j + dn].add_carry(L::from_u64(carry as u64), false);
            nv[j + dn] = t;
        }
        q[j] = qv;
        ops.glue(1);
    }
    let mut rem = nv[..dn].to_vec();
    if shift > 0 {
        let tmp = rem.clone();
        ops.rshift(&mut rem, &tmp, shift);
    }
    (mpn::normalized(&q).to_vec(), mpn::normalized(&rem).to_vec())
}

/// Computes the negated inverse of the odd limb `n0` modulo the limb
/// base (the Montgomery `n0'` constant), by Newton iteration.
pub fn monty_n0inv<L: Limb>(n0: L) -> L {
    debug_assert!(n0.to_u64() & 1 == 1, "montgomery modulus must be odd");
    let mask = L::MAX.to_u64();
    let x = n0.to_u64();
    let mut y = x;
    for _ in 0..6 {
        y = y.wrapping_mul(2u64.wrapping_sub(x.wrapping_mul(y))) & mask;
    }
    debug_assert_eq!(x.wrapping_mul(y) & mask, 1);
    L::from_u64(y.wrapping_neg() & mask)
}

/// Precomputed Montgomery context over the metered ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MontyState<L: Limb> {
    /// Modulus limbs (normalized length `k`).
    pub n: Vec<L>,
    /// `-n[0]^{-1} mod base`.
    pub n0inv: L,
    /// `R² mod n`, padded to `k` limbs.
    pub rr: Vec<L>,
}

impl<L: Limb> MontyState<L> {
    /// Builds the context, metering the `R² mod n` division through
    /// `ops`.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is even or zero.
    pub fn new<O: MpnOps<L> + ?Sized>(ops: &mut O, modulus: &[L]) -> Self {
        let n = mpn::normalized(modulus).to_vec();
        assert!(!n.is_empty(), "zero modulus");
        assert!(n[0].to_u64() & 1 == 1, "montgomery modulus must be odd");
        let k = n.len();
        // R^2 = base^(2k): a 1 followed by 2k zero limbs.
        let mut r2 = vec![L::ZERO; 2 * k + 1];
        r2[2 * k] = L::ONE;
        let (_, rem) = divrem(ops, &r2, &n);
        let mut rr = rem;
        rr.resize(k, L::ZERO);
        MontyState {
            n0inv: monty_n0inv(n[0]),
            n,
            rr,
        }
    }

    /// Montgomery product `a·b·R⁻¹ mod n` of `k`-limb operands.
    pub fn mul<O: MpnOps<L> + ?Sized>(&self, ops: &mut O, a: &[L], b: &[L]) -> Vec<L> {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        let mut t = mul_schoolbook(ops, a, b);
        t.push(L::ZERO);
        self.reduce(ops, &mut t)
    }

    /// Montgomery reduction of a `2k+1`-limb value.
    fn reduce<O: MpnOps<L> + ?Sized>(&self, ops: &mut O, t: &mut [L]) -> Vec<L> {
        let k = self.n.len();
        debug_assert_eq!(t.len(), 2 * k + 1);
        for i in 0..k {
            let m = L::from_u64(t[i].to_u64().wrapping_mul(self.n0inv.to_u64()) & L::MAX.to_u64());
            let carry = ops.addmul_1(&mut t[i..i + k], &self.n, m);
            let mut j = i + k;
            let mut c = carry;
            while c != L::ZERO {
                let (s, over) = t[j].add_carry(c, false);
                t[j] = s;
                c = if over { L::ONE } else { L::ZERO };
                j += 1;
            }
            ops.glue(1);
        }
        let mut r = t[k..2 * k].to_vec();
        let extra = t[2 * k];
        if extra != L::ZERO || mpn::cmp_n(&r, &self.n) != Ordering::Less {
            let tmp = r.clone();
            ops.sub_n(&mut r, &tmp, &self.n);
        }
        r
    }

    /// Converts a `k`-limb value into the Montgomery domain.
    pub fn to_monty<O: MpnOps<L> + ?Sized>(&self, ops: &mut O, a: &[L]) -> Vec<L> {
        let rr = self.rr.clone();
        self.mul(ops, a, &rr)
    }

    /// Converts a Montgomery-domain value back to plain representation.
    pub fn from_monty<O: MpnOps<L> + ?Sized>(&self, ops: &mut O, a: &[L]) -> Vec<L> {
        let k = self.n.len();
        let mut one = vec![L::ZERO; k];
        one[0] = L::ONE;
        self.mul(ops, a, &one)
    }
}

/// Precomputed Barrett context over the metered ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrettState<L: Limb> {
    /// Modulus limbs (normalized length `k`).
    pub m: Vec<L>,
    /// `⌊base^(2k) / m⌋`.
    pub mu: Vec<L>,
}

impl<L: Limb> BarrettState<L> {
    /// Builds the context, metering the `mu` division through `ops`.
    ///
    /// # Panics
    ///
    /// Panics if the modulus is zero.
    pub fn new<O: MpnOps<L> + ?Sized>(ops: &mut O, modulus: &[L]) -> Self {
        let m = mpn::normalized(modulus).to_vec();
        assert!(!m.is_empty(), "zero modulus");
        let k = m.len();
        let mut pow = vec![L::ZERO; 2 * k + 1];
        pow[2 * k] = L::ONE;
        let (mu, _) = divrem(ops, &pow, &m);
        BarrettState { m, mu }
    }

    /// Reduces `x < m²` modulo `m`.
    pub fn reduce<O: MpnOps<L> + ?Sized>(&self, ops: &mut O, x: &[L]) -> Vec<L> {
        let k = self.m.len();
        let x = mpn::normalized(x);
        if mpn::cmp(x, &self.m) == Ordering::Less {
            return x.to_vec();
        }
        // q1 = x >> base^(k-1) (limb-granular; free slice).
        let q1 = &x[(k - 1).min(x.len())..];
        let q2 = mul_schoolbook(ops, q1, &self.mu);
        let q3 = if q2.len() > k + 1 {
            q2[k + 1..].to_vec()
        } else {
            Vec::new()
        };
        let r2 = mul_schoolbook(ops, &q3, &self.m);
        // r = x - r2, then correct into [0, m).
        let mut r = x.to_vec();
        sub_in_place(ops, &mut r, &r2);
        let mut r = mpn::normalized(&r).to_vec();
        while mpn::cmp(&r, &self.m) != Ordering::Less {
            let mut rp = r.clone();
            rp.resize(r.len().max(k), L::ZERO);
            let mut mp = self.m.clone();
            mp.resize(rp.len(), L::ZERO);
            let tmp = rp.clone();
            ops.sub_n(&mut rp, &tmp, &mp);
            r = mpn::normalized(&rp).to_vec();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NativeMpn;
    use mpint::Natural;

    fn nat(hex: &str) -> Natural {
        Natural::from_hex_str(hex).unwrap()
    }

    fn to_nat(limbs: &[u32]) -> Natural {
        Natural::from_radix_limbs(limbs)
    }

    #[test]
    fn schoolbook_matches_natural_mul() {
        let mut ops = NativeMpn::new();
        let a = nat("fedcba9876543210deadbeef");
        let b = nat("0123456789abcdef");
        let p = mul_schoolbook::<u32, _>(&mut ops, a.limbs(), b.limbs());
        assert_eq!(to_nat(&p), &a * &b);
    }

    #[test]
    fn karatsuba_matches_schoolbook_over_ops() {
        let mut ops = NativeMpn::new();
        let a: Vec<u32> = (0u32..50).map(|i| i.wrapping_mul(2654435761) + 1).collect();
        let b: Vec<u32> = (0u32..47).map(|i| i * 40503 + 9).collect();
        let k = mul_karatsuba(&mut ops, &a, &b, 8);
        let s = mul_schoolbook(&mut ops, &a, &b);
        assert_eq!(k, s);
    }

    #[test]
    fn karatsuba_costs_fewer_cycles_on_large_inputs() {
        use crate::ops::{opname, ModeledMpn};
        use macromodel::model::{MacroModel, Monomial};
        // Linear addmul model: karatsuba trades fewer total limb-steps
        // for more (smaller) calls, so the modeled cycles must drop even
        // though the raw call count rises.
        let model = MacroModel::new(
            opname::ADDMUL_1,
            vec![Monomial::constant(1), Monomial::linear(1, 0)],
            vec![10.0, 10.0],
        );
        let mut models = std::collections::BTreeMap::new();
        models.insert(opname::ADDMUL_1, model);
        let a: Vec<u32> = (0u32..128)
            .map(|i| i.wrapping_mul(0x9e3779b9) | 1)
            .collect();
        let mut s_ops = ModeledMpn::new(models.clone(), 0.0);
        mul_schoolbook(&mut s_ops, &a, &a);
        let mut k_ops = ModeledMpn::new(models, 0.0);
        mul_karatsuba(&mut k_ops, &a, &a, 16);
        let s_c = MpnOps::<u32>::cycles(&s_ops);
        let k_c = MpnOps::<u32>::cycles(&k_ops);
        assert!(k_c < s_c, "karatsuba {k_c} vs schoolbook {s_c}");
    }

    #[test]
    fn divrem_matches_natural_division() {
        let mut ops = NativeMpn::new();
        let n = nat("fedcba9876543210fedcba9876543210fedcba98");
        let d = nat("123456789abcdef123");
        let (q, r) = divrem::<u32, _>(&mut ops, n.limbs(), d.limbs());
        let (qq, rr) = n.div_rem(&d);
        assert_eq!(to_nat(&q), qq);
        assert_eq!(to_nat(&r), rr);
    }

    #[test]
    fn divrem_single_limb_divisor() {
        let mut ops = NativeMpn::new();
        let n = nat("deadbeefcafebabe012345");
        let d = [0x8765_4321u32];
        let (q, r) = divrem(&mut ops, n.limbs(), &d);
        let (qq, rr) = n.div_rem(&Natural::from_u32(d[0]));
        assert_eq!(to_nat(&q), qq);
        assert_eq!(to_nat(&r), rr);
    }

    #[test]
    fn divrem_u16_radix() {
        let mut ops = NativeMpn::new();
        let n = nat("0123456789abcdef0123456789");
        let d = nat("fedcba987");
        let nl: Vec<u16> = n.to_radix_limbs();
        let dl: Vec<u16> = d.to_radix_limbs();
        let (q, r) = divrem(&mut ops, &nl, &dl);
        let (qq, rr) = n.div_rem(&d);
        assert_eq!(Natural::from_radix_limbs(&q), qq);
        assert_eq!(Natural::from_radix_limbs(&r), rr);
    }

    #[test]
    fn monty_state_roundtrip_and_mul() {
        let mut ops = NativeMpn::new();
        let m = nat("f123456789abcdef0000000000000061");
        let st = MontyState::<u32>::new(&mut ops, m.limbs());
        let a = &nat("deadbeef0badf00ddeadbeef0badf00d") % &m;
        let b = &nat("cafebabecafebabecafebabecafebabe") % &m;
        let k = st.n.len();
        let ap = a.to_limbs_padded(k);
        let bp = b.to_limbs_padded(k);
        let am = st.to_monty(&mut ops, &ap);
        let bm = st.to_monty(&mut ops, &bp);
        let pm = st.mul(&mut ops, &am, &bm);
        let p = st.from_monty(&mut ops, &pm);
        assert_eq!(to_nat(&p), &(&a * &b) % &m);
    }

    #[test]
    fn monty_state_u16_radix() {
        let mut ops = NativeMpn::new();
        let m = nat("e0000000000000000000000000000000f1"); // odd
        let ml: Vec<u16> = m.to_radix_limbs();
        let st = MontyState::<u16>::new(&mut ops, &ml);
        let a = &nat("123456789abcdef") % &m;
        let k = st.n.len();
        let mut ap: Vec<u16> = a.to_radix_limbs();
        ap.resize(k, 0);
        let am = st.to_monty(&mut ops, &ap);
        let back = st.from_monty(&mut ops, &am);
        assert_eq!(Natural::from_radix_limbs(&back), a);
    }

    #[test]
    fn barrett_state_reduces_products() {
        let mut ops = NativeMpn::new();
        let m = nat("fedcba987654321123456789abcdef01");
        let st = BarrettState::<u32>::new(&mut ops, m.limbs());
        let a = &nat("ffffffffffffffffffffffffffffffff") % &m;
        let b = &nat("12345678912345678912345678912345") % &m;
        let prod = mul_schoolbook::<u32, _>(&mut ops, a.limbs(), b.limbs());
        let r = st.reduce(&mut ops, &prod);
        assert_eq!(to_nat(&r), &(&a * &b) % &m);
    }

    #[test]
    fn barrett_reduce_small_input_is_identity() {
        let mut ops = NativeMpn::new();
        let m = nat("10000000000000001");
        let st = BarrettState::<u32>::new(&mut ops, m.limbs());
        let small = nat("1234");
        let r = st.reduce(&mut ops, small.limbs());
        assert_eq!(to_nat(&r), small);
    }

    #[test]
    fn monty_n0inv_correct_for_both_radices() {
        let v32 = monty_n0inv(0xdeadbeefu32 | 1);
        let x = (0xdeadbeefu32 | 1) as u64;
        assert_eq!((x.wrapping_mul(v32 as u64)) & 0xffff_ffff, 0xffff_ffff);
        let v16 = monty_n0inv(0xbeefu16 | 1);
        let x = (0xbeefu16 | 1) as u64;
        assert_eq!((x.wrapping_mul(v16 as u64)) & 0xffff, 0xffff);
    }

    #[test]
    fn add_full_handles_carry_growth() {
        let mut ops = NativeMpn::new();
        let a = [u32::MAX, u32::MAX];
        let b = [1u32];
        let r = add_full(&mut ops, &a, &b);
        assert_eq!(to_nat(&r), nat("10000000000000000"));
    }
}
