//! The metered basic-operations interface.
//!
//! The paper's layered software architecture treats the basic operations
//! (`mpn_add_n`, `mpn_addmul_1`, …) as black boxes below the algorithm
//! layer. [`MpnOps`] is that boundary: the modular-exponentiation
//! algorithms in [`crate::algo`]/[`crate::modexp`] perform *all* limb
//! work through it, so swapping the implementation swaps the evaluation
//! method:
//!
//! - [`NativeMpn`]: plain computation, only call counting — the fastest
//!   way to check functional behavior;
//! - [`ModeledMpn`]: computation plus cycle accrual from fitted
//!   macro-models — the paper's native-execution estimation (§3.2);
//! - an ISS-backed implementation (in the `secproc` crate): every call
//!   runs the XR32 assembly kernel on the cycle-accurate simulator —
//!   the paper's slow reference.

use macromodel::model::MacroModel;
use mpint::limb::Limb;
use mpint::mpn;
use std::collections::BTreeMap;

/// Canonical names of the metered basic operations (used as macro-model
/// registry keys and kernel names). These are the kernel-registry names:
/// the typed ids live in [`kreg::id`].
pub use kreg::opname;

/// The basic-operations provider: computes limb-level results and
/// accounts their cost.
pub trait MpnOps<L: Limb> {
    /// `r = a + b`, returning the carry (see [`mpn::add_n`]).
    fn add_n(&mut self, r: &mut [L], a: &[L], b: &[L]) -> bool;
    /// `r = a - b`, returning the borrow.
    fn sub_n(&mut self, r: &mut [L], a: &[L], b: &[L]) -> bool;
    /// `r = a * b` (single-limb `b`), returning the high limb.
    fn mul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L;
    /// `r += a * b`, returning the carry limb.
    fn addmul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L;
    /// `r -= a * b`, returning the borrow limb.
    fn submul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L;
    /// Left shift by `0 < cnt < L::BITS`.
    fn lshift(&mut self, r: &mut [L], a: &[L], cnt: u32) -> L;
    /// Right shift by `0 < cnt < L::BITS`.
    fn rshift(&mut self, r: &mut [L], a: &[L], cnt: u32) -> L;
    /// Knuth division quotient-limb estimate with correction
    /// (divides `(n2, n1, n0)` by normalized `(d1, d0)`).
    fn div_qhat(&mut self, n2: L, n1: L, n0: L, d1: L, d0: L) -> L;
    /// Accounts `units` of algorithm-layer control overhead (loop
    /// bookkeeping, function-call glue) — cycles outside the basic ops.
    fn glue(&mut self, units: u64);

    /// Cycles accounted so far.
    fn cycles(&self) -> f64;
    /// Resets the cycle and call counters.
    fn reset(&mut self);
    /// Calls recorded per op name.
    fn call_counts(&self) -> &BTreeMap<&'static str, u64>;
}

/// Reference implementation of the 3-by-2 quotient estimate shared by
/// all providers (semantics must be identical across them). Lives in
/// [`mpn`] so the kernel registry can embed it as a golden reference.
pub use mpint::mpn::div_qhat_reference;

/// Pure computation with call counting (zero cycle cost).
#[derive(Debug, Clone, Default)]
pub struct NativeMpn {
    counts: BTreeMap<&'static str, u64>,
}

impl NativeMpn {
    /// Creates a fresh provider.
    pub fn new() -> Self {
        Self::default()
    }
}

macro_rules! bump {
    ($self:ident, $name:expr) => {
        *$self.counts.entry($name).or_insert(0) += 1;
    };
}

impl<L: Limb> MpnOps<L> for NativeMpn {
    fn add_n(&mut self, r: &mut [L], a: &[L], b: &[L]) -> bool {
        bump!(self, opname::ADD_N);
        mpn::add_n(r, a, b)
    }

    fn sub_n(&mut self, r: &mut [L], a: &[L], b: &[L]) -> bool {
        bump!(self, opname::SUB_N);
        mpn::sub_n(r, a, b)
    }

    fn mul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L {
        bump!(self, opname::MUL_1);
        mpn::mul_1(r, a, b)
    }

    fn addmul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L {
        bump!(self, opname::ADDMUL_1);
        mpn::addmul_1(r, a, b)
    }

    fn submul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L {
        bump!(self, opname::SUBMUL_1);
        mpn::submul_1(r, a, b)
    }

    fn lshift(&mut self, r: &mut [L], a: &[L], cnt: u32) -> L {
        bump!(self, opname::LSHIFT);
        mpn::lshift(r, a, cnt)
    }

    fn rshift(&mut self, r: &mut [L], a: &[L], cnt: u32) -> L {
        bump!(self, opname::RSHIFT);
        mpn::rshift(r, a, cnt)
    }

    fn div_qhat(&mut self, n2: L, n1: L, n0: L, d1: L, d0: L) -> L {
        bump!(self, opname::DIV_QHAT);
        div_qhat_reference(n2, n1, n0, d1, d0)
    }

    fn glue(&mut self, _units: u64) {}

    fn cycles(&self) -> f64 {
        0.0
    }

    fn reset(&mut self) {
        self.counts.clear();
    }

    fn call_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }
}

/// Computation plus macro-model cycle accrual: the paper's fast
/// native-execution performance estimation.
///
/// Each basic op's cycles come from a fitted [`MacroModel`] evaluated at
/// the operand length (in limbs); `div_qhat` and `glue` use constant
/// models.
#[derive(Debug, Clone)]
pub struct ModeledMpn {
    models32: BTreeMap<&'static str, MacroModel>,
    models16: BTreeMap<&'static str, MacroModel>,
    glue_cost: f64,
    cycles: f64,
    counts: BTreeMap<&'static str, u64>,
}

impl ModeledMpn {
    /// Builds a provider from per-op macro-models (keyed by
    /// [`opname`] constants) and a per-unit glue cost. The same models
    /// serve both limb widths; use [`ModeledMpn::with_radix_models`]
    /// when the 16-bit kernels were characterized separately.
    ///
    /// Ops without a model cost zero cycles (call counting still
    /// happens), so partial registries degrade gracefully during
    /// bring-up.
    pub fn new(models: BTreeMap<&'static str, MacroModel>, glue_cost: f64) -> Self {
        ModeledMpn {
            models32: models.clone(),
            models16: models,
            glue_cost,
            cycles: 0.0,
            counts: BTreeMap::new(),
        }
    }

    /// Builds a provider with distinct model registries per limb width
    /// (radix 2^32 vs. radix 2^16 kernels have different cycle
    /// profiles).
    pub fn with_radix_models(
        models32: BTreeMap<&'static str, MacroModel>,
        models16: BTreeMap<&'static str, MacroModel>,
        glue_cost: f64,
    ) -> Self {
        ModeledMpn {
            models32,
            models16,
            glue_cost,
            cycles: 0.0,
            counts: BTreeMap::new(),
        }
    }

    fn charge(&mut self, width: u32, name: &'static str, len: usize) {
        *self.counts.entry(name).or_insert(0) += 1;
        let models = if width == 16 {
            &self.models16
        } else {
            &self.models32
        };
        if let Some(m) = models.get(name) {
            self.cycles += m.predict(&[len as u64]);
        }
    }
}

impl<L: Limb> MpnOps<L> for ModeledMpn {
    fn add_n(&mut self, r: &mut [L], a: &[L], b: &[L]) -> bool {
        self.charge(L::BITS, opname::ADD_N, a.len());
        mpn::add_n(r, a, b)
    }

    fn sub_n(&mut self, r: &mut [L], a: &[L], b: &[L]) -> bool {
        self.charge(L::BITS, opname::SUB_N, a.len());
        mpn::sub_n(r, a, b)
    }

    fn mul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L {
        self.charge(L::BITS, opname::MUL_1, a.len());
        mpn::mul_1(r, a, b)
    }

    fn addmul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L {
        self.charge(L::BITS, opname::ADDMUL_1, a.len());
        mpn::addmul_1(r, a, b)
    }

    fn submul_1(&mut self, r: &mut [L], a: &[L], b: L) -> L {
        self.charge(L::BITS, opname::SUBMUL_1, a.len());
        mpn::submul_1(r, a, b)
    }

    fn lshift(&mut self, r: &mut [L], a: &[L], cnt: u32) -> L {
        self.charge(L::BITS, opname::LSHIFT, a.len());
        mpn::lshift(r, a, cnt)
    }

    fn rshift(&mut self, r: &mut [L], a: &[L], cnt: u32) -> L {
        self.charge(L::BITS, opname::RSHIFT, a.len());
        mpn::rshift(r, a, cnt)
    }

    fn div_qhat(&mut self, n2: L, n1: L, n0: L, d1: L, d0: L) -> L {
        self.charge(L::BITS, opname::DIV_QHAT, 1);
        div_qhat_reference(n2, n1, n0, d1, d0)
    }

    fn glue(&mut self, units: u64) {
        self.cycles += self.glue_cost * units as f64;
    }

    fn cycles(&self) -> f64 {
        self.cycles
    }

    fn reset(&mut self) {
        self.cycles = 0.0;
        self.counts.clear();
    }

    fn call_counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use macromodel::model::Monomial;

    fn linear_model(name: &str, c0: f64, c1: f64) -> MacroModel {
        MacroModel::new(
            name,
            vec![Monomial::constant(1), Monomial::linear(1, 0)],
            vec![c0, c1],
        )
    }

    #[test]
    fn native_counts_but_costs_nothing() {
        let mut ops = NativeMpn::new();
        let a = [1u32, 2, 3];
        let b = [4u32, 5, 6];
        let mut r = [0u32; 3];
        MpnOps::add_n(&mut ops, &mut r, &a, &b);
        MpnOps::add_n(&mut ops, &mut r, &a, &b);
        MpnOps::addmul_1(&mut ops, &mut r, &a, 7);
        assert_eq!(<NativeMpn as MpnOps<u32>>::cycles(&ops), 0.0);
        assert_eq!(ops.counts[opname::ADD_N], 2);
        assert_eq!(ops.counts[opname::ADDMUL_1], 1);
    }

    #[test]
    fn modeled_accrues_predicted_cycles() {
        let mut models = BTreeMap::new();
        models.insert(opname::ADD_N, linear_model(opname::ADD_N, 12.0, 6.0));
        let mut ops = ModeledMpn::new(models, 3.0);
        let a = [1u32; 8];
        let b = [2u32; 8];
        let mut r = [0u32; 8];
        MpnOps::add_n(&mut ops, &mut r, &a, &b);
        assert_eq!(<ModeledMpn as MpnOps<u32>>::cycles(&ops), 12.0 + 6.0 * 8.0);
        MpnOps::<u32>::glue(&mut ops, 4);
        assert_eq!(<ModeledMpn as MpnOps<u32>>::cycles(&ops), 60.0 + 12.0);
        MpnOps::<u32>::reset(&mut ops);
        assert_eq!(<ModeledMpn as MpnOps<u32>>::cycles(&ops), 0.0);
    }

    #[test]
    fn div_qhat_reference_matches_division() {
        // Random-ish normalized divisors; compare against u128 division.
        for seed in 1u64..200 {
            let d1 = 0x8000_0000u32 | (seed as u32).wrapping_mul(2654435761);
            let d0 = (seed as u32).wrapping_mul(0x9e3779b9);
            let n2 = d1 - 1 - (seed as u32 % 7).min(d1 - 1);
            let n1 = (seed as u32).wrapping_mul(123456789);
            let n0 = (seed as u32).wrapping_mul(987654321);
            let q = div_qhat_reference(n2, n1, n0, d1, d0);
            // qhat is either the true quotient limb or within the Knuth
            // bound (at most 2 over before correction; ours corrects
            // against d1d0, so error vs the 3-limb/2-limb true quotient
            // is 0 or +1).
            let n = ((n2 as u128) << 64) | ((n1 as u128) << 32) | n0 as u128;
            let d = ((d1 as u128) << 32) | d0 as u128;
            let true_q = (n / d) as u64;
            assert!(
                (q as u64 == true_q) || (q as u64 == true_q + 1),
                "seed {seed}: qhat {q} vs true {true_q}"
            );
        }
    }

    #[test]
    fn results_identical_across_providers() {
        let mut native = NativeMpn::new();
        let mut modeled = ModeledMpn::new(BTreeMap::new(), 1.0);
        let a: Vec<u32> = (0u32..16)
            .map(|i| i.wrapping_mul(0x0101_0101) + 7)
            .collect();
        let b: Vec<u32> = (0u32..16)
            .map(|i| i.wrapping_mul(0x2020_2020) + 3)
            .collect();
        let mut r1 = vec![0u32; 16];
        let mut r2 = vec![0u32; 16];
        let c1 = MpnOps::add_n(&mut native, &mut r1, &a, &b);
        let c2 = MpnOps::add_n(&mut modeled, &mut r2, &a, &b);
        assert_eq!(r1, r2);
        assert_eq!(c1, c2);
        let h1 = MpnOps::addmul_1(&mut native, &mut r1, &a, 0xdead_beef);
        let h2 = MpnOps::addmul_1(&mut modeled, &mut r2, &a, 0xdead_beef);
        assert_eq!(r1, r2);
        assert_eq!(h1, h2);
    }

    #[test]
    fn u16_limbs_supported() {
        let mut ops = NativeMpn::new();
        let a = [0xffffu16, 0xffff];
        let b = [1u16, 0];
        let mut r = [0u16; 2];
        let carry = MpnOps::add_n(&mut ops, &mut r, &a, &b);
        assert!(carry);
        assert_eq!(r, [0, 0]);
    }
}
