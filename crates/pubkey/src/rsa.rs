//! RSA key generation, encryption and decryption.
//!
//! The paper's headline public-key numbers (Table 1: RSA encryption
//! 10.8×, decryption 66.4×) come from 1024-bit RSA with `e = 65537`:
//! the optimized platform pairs the explored modular-exponentiation
//! configuration (Montgomery + windows + CRT) with custom instructions,
//! while the baseline runs schoolbook multiply/divide binary
//! exponentiation without CRT.

use crate::modexp::{mod_exp, mod_exp_crt, CrtKey, ExpCache, ModExpError};
use crate::ops::MpnOps;
use crate::space::{CrtMode, ModExpConfig};
use mpint::{gcd, prime, Natural};
use rand::Rng;
use std::fmt;

/// The conventional public exponent.
pub const E_65537: u64 = 65_537;

/// An RSA public key `(n, e)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublicKey {
    /// Modulus.
    pub n: Natural,
    /// Public exponent.
    pub e: Natural,
}

/// An RSA private key with CRT components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrivateKey {
    /// Modulus.
    pub n: Natural,
    /// Public exponent.
    pub e: Natural,
    /// Private exponent.
    pub d: Natural,
    /// CRT material (`p`, `q`, `dp`, `dq`, `qinv`).
    pub crt: CrtKey,
}

/// An RSA key pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// The public half.
    pub public: PublicKey,
    /// The private half.
    pub private: PrivateKey,
}

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// The message is numerically not below the modulus.
    MessageTooLarge,
    /// The underlying exponentiation failed.
    ModExp(ModExpError),
    /// Padding was requested for data that does not fit the modulus.
    DataTooLong {
        /// Bytes supplied.
        data: usize,
        /// Maximum payload for this modulus.
        max: usize,
    },
    /// PKCS#1 v1.5 unpadding failed.
    BadPadding,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::MessageTooLarge => write!(f, "message representative exceeds the modulus"),
            RsaError::ModExp(e) => write!(f, "modular exponentiation failed: {e}"),
            RsaError::DataTooLong { data, max } => {
                write!(
                    f,
                    "data of {data} bytes exceeds the {max}-byte payload limit"
                )
            }
            RsaError::BadPadding => write!(f, "invalid pkcs#1 v1.5 padding"),
        }
    }
}

impl std::error::Error for RsaError {}

impl From<ModExpError> for RsaError {
    fn from(e: ModExpError) -> Self {
        RsaError::ModExp(e)
    }
}

impl KeyPair {
    /// Generates a key pair with a modulus of exactly `bits` bits and
    /// `e = 65537`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 32`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> KeyPair {
        assert!(bits >= 32, "modulus too small");
        let e = Natural::from_u64(E_65537);
        loop {
            let p = prime::gen_prime(bits / 2, rng);
            let q = prime::gen_prime(bits - bits / 2, rng);
            if p == q {
                continue;
            }
            let n = &p * &q;
            if n.bit_length() != bits {
                continue;
            }
            let one = Natural::one();
            let phi = &(&p - &one) * &(&q - &one);
            let d = match gcd::mod_inverse(&e, &phi) {
                Some(d) => d,
                None => continue, // e not coprime with phi; rare
            };
            let dp = &d % &(&p - &one);
            let dq = &d % &(&q - &one);
            let qinv = gcd::mod_inverse(&q, &p).expect("p != q primes");
            let public = PublicKey {
                n: n.clone(),
                e: e.clone(),
            };
            let private = PrivateKey {
                n,
                e: e.clone(),
                d,
                crt: CrtKey { p, q, dp, dq, qinv },
            };
            return KeyPair { public, private };
        }
    }
}

impl PublicKey {
    /// Raw (textbook) encryption: `m^e mod n` under a design-space
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLarge`] when `m >= n`, or a
    /// propagated exponentiation error.
    pub fn encrypt_raw<O>(
        &self,
        ops: &mut O,
        m: &Natural,
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<Natural, RsaError>
    where
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
    {
        if m >= &self.n {
            return Err(RsaError::MessageTooLarge);
        }
        // Encryption has no CRT (the factorization is private).
        let mut cfg = *cfg;
        cfg.crt = CrtMode::None;
        Ok(mod_exp(ops, m, &self.e, &self.n, &cfg, cache)?)
    }

    /// PKCS#1 v1.5 block-type-2 encryption of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::DataTooLong`] if `data` exceeds the payload
    /// limit (modulus bytes − 11), or a propagated exponentiation error.
    pub fn encrypt_pkcs1<O, R>(
        &self,
        ops: &mut O,
        rng: &mut R,
        data: &[u8],
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<Vec<u8>, RsaError>
    where
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
        R: Rng + ?Sized,
    {
        let k = self.n.bit_length().div_ceil(8);
        if data.len() + 11 > k {
            return Err(RsaError::DataTooLong {
                data: data.len(),
                max: k - 11,
            });
        }
        // 0x00 0x02 <nonzero padding> 0x00 <data>
        let mut block = Vec::with_capacity(k);
        block.push(0x00);
        block.push(0x02);
        for _ in 0..k - 3 - data.len() {
            loop {
                let b: u8 = rng.random();
                if b != 0 {
                    block.push(b);
                    break;
                }
            }
        }
        block.push(0x00);
        block.extend_from_slice(data);
        let m = Natural::from_bytes_be(&block);
        let c = self.encrypt_raw(ops, &m, cfg, cache)?;
        let mut out = c.to_bytes_be();
        while out.len() < k {
            out.insert(0, 0);
        }
        Ok(out)
    }
}

impl PrivateKey {
    /// Raw (textbook) decryption: `c^d mod n`, honoring the
    /// configuration's CRT mode.
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::MessageTooLarge`] when `c >= n`, or a
    /// propagated exponentiation error.
    pub fn decrypt_raw<O>(
        &self,
        ops: &mut O,
        c: &Natural,
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<Natural, RsaError>
    where
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
    {
        if c >= &self.n {
            return Err(RsaError::MessageTooLarge);
        }
        match cfg.crt {
            CrtMode::None => Ok(mod_exp(ops, c, &self.d, &self.n, cfg, cache)?),
            _ => Ok(mod_exp_crt(ops, c, &self.crt, cfg, cache)?),
        }
    }

    /// PKCS#1 v1.5 decryption (inverse of
    /// [`PublicKey::encrypt_pkcs1`]).
    ///
    /// # Errors
    ///
    /// Returns [`RsaError::BadPadding`] when the decrypted block is not
    /// a valid type-2 block, or a propagated exponentiation error.
    pub fn decrypt_pkcs1<O>(
        &self,
        ops: &mut O,
        ciphertext: &[u8],
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<Vec<u8>, RsaError>
    where
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
    {
        let c = Natural::from_bytes_be(ciphertext);
        let m = self.decrypt_raw(ops, &c, cfg, cache)?;
        let k = self.n.bit_length().div_ceil(8);
        let mut block = m.to_bytes_be();
        while block.len() < k - 1 {
            block.insert(0, 0);
        }
        // block should now be 0x02 || PS || 0x00 || data (leading 0x00
        // stripped by the integer conversion).
        if block.first() != Some(&0x02) {
            return Err(RsaError::BadPadding);
        }
        let sep = block
            .iter()
            .skip(1)
            .position(|&b| b == 0)
            .ok_or(RsaError::BadPadding)?;
        if sep < 8 {
            return Err(RsaError::BadPadding); // PS must be >= 8 bytes
        }
        Ok(block[sep + 2..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NativeMpn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5a5a)
    }

    fn small_key() -> KeyPair {
        KeyPair::generate(256, &mut rng())
    }

    #[test]
    fn generated_key_is_consistent() {
        let kp = small_key();
        assert_eq!(kp.public.n, kp.private.n);
        assert_eq!(kp.private.n, &kp.private.crt.p * &kp.private.crt.q);
        assert_eq!(kp.public.n.bit_length(), 256);
        // e*d ≡ 1 mod phi
        let one = Natural::one();
        let phi = &(&kp.private.crt.p - &one) * &(&kp.private.crt.q - &one);
        let ed = &kp.public.e * &kp.private.d;
        assert!((&ed % &phi).is_one());
    }

    #[test]
    fn raw_roundtrip_all_crt_modes() {
        let kp = small_key();
        let msg = Natural::from_u64(0xdead_beef_cafe_babe);
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let c = kp
            .public
            .encrypt_raw(&mut ops, &msg, &ModExpConfig::optimized(), &mut cache)
            .unwrap();
        assert_ne!(c, msg);
        for crt in CrtMode::ALL {
            let mut cfg = ModExpConfig::optimized();
            cfg.crt = crt;
            let m = kp
                .private
                .decrypt_raw(&mut ops, &c, &cfg, &mut cache)
                .unwrap();
            assert_eq!(m, msg, "crt {crt}");
        }
    }

    #[test]
    fn baseline_config_also_roundtrips() {
        let kp = small_key();
        let msg = Natural::from_u64(42);
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let cfg = ModExpConfig::baseline();
        let c = kp
            .public
            .encrypt_raw(&mut ops, &msg, &cfg, &mut cache)
            .unwrap();
        let m = kp
            .private
            .decrypt_raw(&mut ops, &c, &cfg, &mut cache)
            .unwrap();
        assert_eq!(m, msg);
    }

    #[test]
    fn message_larger_than_modulus_rejected() {
        let kp = small_key();
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let too_big = &kp.public.n + &Natural::one();
        assert_eq!(
            kp.public
                .encrypt_raw(&mut ops, &too_big, &ModExpConfig::baseline(), &mut cache),
            Err(RsaError::MessageTooLarge)
        );
    }

    #[test]
    fn pkcs1_roundtrip() {
        let kp = small_key();
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let cfg = ModExpConfig::optimized();
        let mut r = rng();
        let data = b"premaster secret";
        let ct = kp
            .public
            .encrypt_pkcs1(&mut ops, &mut r, data, &cfg, &mut cache)
            .unwrap();
        assert_eq!(ct.len(), 32); // 256-bit modulus
        let pt = kp
            .private
            .decrypt_pkcs1(&mut ops, &ct, &cfg, &mut cache)
            .unwrap();
        assert_eq!(pt, data);
    }

    #[test]
    fn pkcs1_rejects_oversized_payload() {
        let kp = small_key();
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let mut r = rng();
        let data = [0u8; 30]; // 32-byte modulus → max 21 bytes
        assert!(matches!(
            kp.public.encrypt_pkcs1(
                &mut ops,
                &mut r,
                &data,
                &ModExpConfig::baseline(),
                &mut cache
            ),
            Err(RsaError::DataTooLong { .. })
        ));
    }

    #[test]
    fn pkcs1_detects_corruption() {
        let kp = small_key();
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let cfg = ModExpConfig::optimized();
        let mut r = rng();
        let mut ct = kp
            .public
            .encrypt_pkcs1(&mut ops, &mut r, b"hello", &cfg, &mut cache)
            .unwrap();
        ct[5] ^= 0xff;
        // Either padding fails or the payload differs.
        match kp.private.decrypt_pkcs1(&mut ops, &ct, &cfg, &mut cache) {
            Err(RsaError::BadPadding) => {}
            Ok(pt) => assert_ne!(pt, b"hello"),
            Err(other) => panic!("unexpected error {other}"),
        }
    }
}
