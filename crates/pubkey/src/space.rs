//! The modular-exponentiation algorithm design space (paper §4.3).
//!
//! "Over 450 candidate algorithms were considered for evaluation due to
//! the permutations arising from five modular multiplication algorithms,
//! five input block sizes, three Chinese Remainder Theorem
//! implementations, two radix sizes and three different software caching
//! options." This module enumerates exactly that lattice:
//! 5 × 5 × 3 × 2 × 3 = 450 configurations.

use core::fmt;

/// The modular-multiplication strategy (5 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MulAlgo {
    /// Schoolbook product followed by a full division.
    MulDiv,
    /// Schoolbook product + Barrett reduction.
    Barrett,
    /// Montgomery (CIOS-style) multiplication.
    Montgomery,
    /// Karatsuba product followed by a full division.
    KaratsubaDiv,
    /// Karatsuba product + Barrett reduction.
    KaratsubaBarrett,
}

impl MulAlgo {
    /// All strategies.
    pub const ALL: [MulAlgo; 5] = [
        MulAlgo::MulDiv,
        MulAlgo::Barrett,
        MulAlgo::Montgomery,
        MulAlgo::KaratsubaDiv,
        MulAlgo::KaratsubaBarrett,
    ];
}

impl fmt::Display for MulAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MulAlgo::MulDiv => "muldiv",
            MulAlgo::Barrett => "barrett",
            MulAlgo::Montgomery => "montgomery",
            MulAlgo::KaratsubaDiv => "kara-div",
            MulAlgo::KaratsubaBarrett => "kara-barrett",
        };
        f.write_str(s)
    }
}

/// Chinese-Remainder-Theorem handling for RSA decryption (3 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrtMode {
    /// Single full-size exponentiation modulo `n`.
    None,
    /// Two half-size exponentiations; the recombination coefficient
    /// `q⁻¹ mod p` is recomputed on every call.
    Recompute,
    /// Two half-size exponentiations with the precomputed Garner
    /// coefficient stored in the key.
    Garner,
}

impl CrtMode {
    /// All CRT modes.
    pub const ALL: [CrtMode; 3] = [CrtMode::None, CrtMode::Recompute, CrtMode::Garner];
}

impl fmt::Display for CrtMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrtMode::None => "no-crt",
            CrtMode::Recompute => "crt-recompute",
            CrtMode::Garner => "crt-garner",
        };
        f.write_str(s)
    }
}

/// Limb radix of the multi-precision representation (2 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Radix {
    /// 16-bit limbs: products fit a 32-bit word, so no wide multiply is
    /// needed — attractive on multiplier-less cores.
    R16,
    /// 32-bit limbs: half the iterations, needs a 32×32 multiplier.
    R32,
}

impl Radix {
    /// All radices.
    pub const ALL: [Radix; 2] = [Radix::R16, Radix::R32];
}

impl fmt::Display for Radix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Radix::R16 => f.write_str("r16"),
            Radix::R32 => f.write_str("r32"),
        }
    }
}

/// Software caching of derived per-key state (3 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheMode {
    /// Recompute reduction constants (Barrett `mu`, Montgomery `R²`,
    /// `n0'`) on every exponentiation.
    None,
    /// Cache reduction constants per modulus (hash-table lookup).
    Context,
    /// Cache reduction constants *and* the window precomputation table
    /// per (base, modulus) pair.
    ContextAndTable,
}

impl CacheMode {
    /// All caching options.
    pub const ALL: [CacheMode; 3] = [
        CacheMode::None,
        CacheMode::Context,
        CacheMode::ContextAndTable,
    ];
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheMode::None => "nocache",
            CacheMode::Context => "ctxcache",
            CacheMode::ContextAndTable => "fullcache",
        };
        f.write_str(s)
    }
}

/// One point in the modular-exponentiation design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModExpConfig {
    /// Modular-multiplication strategy.
    pub mul: MulAlgo,
    /// Exponent window width in bits (1–5; the paper's "input block
    /// sizes").
    pub window: u32,
    /// CRT handling.
    pub crt: CrtMode,
    /// Limb radix.
    pub radix: Radix,
    /// Software caching option.
    pub cache: CacheMode,
}

impl ModExpConfig {
    /// Window widths explored (5 options).
    pub const WINDOWS: [u32; 5] = [1, 2, 3, 4, 5];

    /// A sensible default (and the baseline for Table 1's unoptimized
    /// software): schoolbook multiply + division, binary exponent
    /// scanning, no CRT, 32-bit limbs, no caching.
    pub fn baseline() -> Self {
        ModExpConfig {
            mul: MulAlgo::MulDiv,
            window: 1,
            crt: CrtMode::None,
            radix: Radix::R32,
            cache: CacheMode::None,
        }
    }

    /// The configuration the paper's exploration converges to for RSA
    /// decryption: Montgomery multiplication, 5-bit windows, Garner CRT,
    /// 32-bit limbs, cached contexts and tables.
    pub fn optimized() -> Self {
        ModExpConfig {
            mul: MulAlgo::Montgomery,
            window: 5,
            crt: CrtMode::Garner,
            radix: Radix::R32,
            cache: CacheMode::ContextAndTable,
        }
    }

    /// Enumerates the full 450-candidate lattice in a deterministic
    /// order.
    pub fn enumerate() -> Vec<ModExpConfig> {
        let mut out = Vec::with_capacity(450);
        for &mul in &MulAlgo::ALL {
            for &window in &Self::WINDOWS {
                for &crt in &CrtMode::ALL {
                    for &radix in &Radix::ALL {
                        for &cache in &CacheMode::ALL {
                            out.push(ModExpConfig {
                                mul,
                                window,
                                crt,
                                radix,
                                cache,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl ModExpConfig {
    /// Estimated persistent memory footprint in bytes of this
    /// configuration's software caches for a `bits`-bit modulus: the
    /// per-modulus reduction constants (Barrett `mu`, Montgomery `R²`
    /// and `n0'`) plus, under [`CacheMode::ContextAndTable`], the
    /// `2^(window-1)`-entry odd-power window table. CRT splits the work
    /// over two half-size moduli. Returns 0 when nothing is cached —
    /// the memory axis of the speed/space trade-off a [`ParetoFront`]
    /// ranks.
    pub fn table_bytes(&self, bits: usize) -> usize {
        if self.cache == CacheMode::None {
            return 0;
        }
        let moduli = match self.crt {
            CrtMode::None => 1,
            CrtMode::Recompute | CrtMode::Garner => 2,
        };
        let operand_bytes = match self.crt {
            CrtMode::None => bits.div_ceil(8),
            CrtMode::Recompute | CrtMode::Garner => (bits / 2).div_ceil(8),
        };
        let context = match self.mul {
            // Division-based reduction derives nothing reusable.
            MulAlgo::MulDiv | MulAlgo::KaratsubaDiv => 0,
            // Barrett caches mu (one word wider than the modulus).
            MulAlgo::Barrett | MulAlgo::KaratsubaBarrett => operand_bytes + 4,
            // Montgomery caches R² and the word-inverse n0'.
            MulAlgo::Montgomery => operand_bytes + 4,
        };
        let mut total = moduli * context;
        if self.cache == CacheMode::ContextAndTable {
            let entries = 1usize << (self.window.saturating_sub(1));
            total += moduli * entries * operand_bytes;
        }
        total
    }
}

impl fmt::Display for ModExpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/w{}/{}/{}/{}",
            self.mul, self.window, self.crt, self.radix, self.cache
        )
    }
}

/// One candidate surviving on the speed/space Pareto front.
#[derive(Debug, Clone)]
pub struct ParetoEntry {
    /// The configuration.
    pub config: ModExpConfig,
    /// Estimated workload cycles.
    pub cycles: f64,
    /// Persistent cache footprint in bytes
    /// ([`ModExpConfig::table_bytes`]).
    pub memory_bytes: usize,
}

/// The two-objective (cycles, memory) Pareto front over explored
/// design-space candidates: an entry survives iff no other offered
/// entry is at least as good on both axes and strictly better on one.
#[derive(Debug, Clone, Default)]
pub struct ParetoFront {
    entries: Vec<ParetoEntry>,
    offered: u64,
}

impl ParetoFront {
    /// An empty front.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a candidate; returns `true` if it survives (is not
    /// dominated by any current survivor). Dominated incumbents are
    /// evicted.
    pub fn offer(&mut self, config: ModExpConfig, cycles: f64, memory_bytes: usize) -> bool {
        self.offered += 1;
        let dominated = self.entries.iter().any(|e| {
            e.cycles <= cycles
                && e.memory_bytes <= memory_bytes
                && (e.cycles < cycles || e.memory_bytes < memory_bytes)
        });
        if dominated {
            return false;
        }
        self.entries
            .retain(|e| e.cycles < cycles || e.memory_bytes < memory_bytes);
        self.entries.push(ParetoEntry {
            config,
            cycles,
            memory_bytes,
        });
        true
    }

    /// The surviving entries, sorted fastest-first.
    pub fn survivors(&self) -> Vec<ParetoEntry> {
        let mut out = self.entries.clone();
        out.sort_by(|a, b| a.cycles.total_cmp(&b.cycles));
        out
    }

    /// Number of survivors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the front is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Candidates offered so far (exploration progress).
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Publishes exploration progress into a metrics registry:
    /// `space.candidates_offered` and `space.pareto_survivors` gauges,
    /// plus a `space.pareto_memory_bytes` histogram over survivors.
    pub fn record_metrics(&self, metrics: &xobs::Registry) {
        metrics
            .gauge("space.candidates_offered")
            .set(self.offered as f64);
        metrics
            .gauge("space.pareto_survivors")
            .set(self.entries.len() as f64);
        let hist = metrics.histogram("space.pareto_memory_bytes");
        for e in &self.entries {
            hist.observe(e.memory_bytes as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn lattice_has_450_distinct_points() {
        let all = ModExpConfig::enumerate();
        assert_eq!(all.len(), 450, "5 × 5 × 3 × 2 × 3");
        let set: BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 450);
    }

    #[test]
    fn baseline_and_optimized_are_members() {
        let all = ModExpConfig::enumerate();
        assert!(all.contains(&ModExpConfig::baseline()));
        assert!(all.contains(&ModExpConfig::optimized()));
    }

    #[test]
    fn display_is_unique_per_config() {
        let all = ModExpConfig::enumerate();
        let names: BTreeSet<String> = all.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), 450);
    }

    #[test]
    fn table_bytes_tracks_caching_aggressiveness() {
        let none = ModExpConfig::baseline();
        assert_eq!(none.table_bytes(1024), 0);
        let ctx = ModExpConfig {
            cache: CacheMode::Context,
            mul: MulAlgo::Montgomery,
            ..ModExpConfig::baseline()
        };
        let full = ModExpConfig {
            cache: CacheMode::ContextAndTable,
            ..ctx
        };
        assert!(ctx.table_bytes(1024) > 0);
        assert!(full.table_bytes(1024) > ctx.table_bytes(1024));
        // Wider windows cost exponentially more table memory.
        let w5 = ModExpConfig { window: 5, ..full };
        let w2 = ModExpConfig { window: 2, ..full };
        assert!(w5.table_bytes(1024) > 4 * w2.table_bytes(1024) / 2);
    }

    #[test]
    fn pareto_front_keeps_only_nondominated() {
        let mut front = ParetoFront::new();
        let cfg = ModExpConfig::baseline;
        assert!(front.offer(cfg(), 100.0, 50));
        assert!(front.offer(cfg(), 80.0, 80)); // trades memory for speed
        assert!(!front.offer(cfg(), 120.0, 60)); // dominated by (100, 50)
        assert!(front.offer(cfg(), 90.0, 40)); // evicts (100, 50)
        assert_eq!(front.len(), 2);
        assert_eq!(front.offered(), 4);
        let s = front.survivors();
        assert_eq!(s[0].cycles, 80.0);
        assert_eq!(s[1].memory_bytes, 40);

        let reg = xobs::Registry::new();
        front.record_metrics(&reg);
        let snap = reg.snapshot();
        assert!(snap.get("space.pareto_survivors").is_some());
    }

    #[test]
    fn axis_sizes_match_paper() {
        assert_eq!(MulAlgo::ALL.len(), 5);
        assert_eq!(ModExpConfig::WINDOWS.len(), 5);
        assert_eq!(CrtMode::ALL.len(), 3);
        assert_eq!(Radix::ALL.len(), 2);
        assert_eq!(CacheMode::ALL.len(), 3);
    }
}
