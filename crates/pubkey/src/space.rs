//! The modular-exponentiation algorithm design space (paper §4.3).
//!
//! "Over 450 candidate algorithms were considered for evaluation due to
//! the permutations arising from five modular multiplication algorithms,
//! five input block sizes, three Chinese Remainder Theorem
//! implementations, two radix sizes and three different software caching
//! options." This module enumerates exactly that lattice:
//! 5 × 5 × 3 × 2 × 3 = 450 configurations.

use core::fmt;

/// The modular-multiplication strategy (5 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MulAlgo {
    /// Schoolbook product followed by a full division.
    MulDiv,
    /// Schoolbook product + Barrett reduction.
    Barrett,
    /// Montgomery (CIOS-style) multiplication.
    Montgomery,
    /// Karatsuba product followed by a full division.
    KaratsubaDiv,
    /// Karatsuba product + Barrett reduction.
    KaratsubaBarrett,
}

impl MulAlgo {
    /// All strategies.
    pub const ALL: [MulAlgo; 5] = [
        MulAlgo::MulDiv,
        MulAlgo::Barrett,
        MulAlgo::Montgomery,
        MulAlgo::KaratsubaDiv,
        MulAlgo::KaratsubaBarrett,
    ];
}

impl fmt::Display for MulAlgo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MulAlgo::MulDiv => "muldiv",
            MulAlgo::Barrett => "barrett",
            MulAlgo::Montgomery => "montgomery",
            MulAlgo::KaratsubaDiv => "kara-div",
            MulAlgo::KaratsubaBarrett => "kara-barrett",
        };
        f.write_str(s)
    }
}

/// Chinese-Remainder-Theorem handling for RSA decryption (3 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CrtMode {
    /// Single full-size exponentiation modulo `n`.
    None,
    /// Two half-size exponentiations; the recombination coefficient
    /// `q⁻¹ mod p` is recomputed on every call.
    Recompute,
    /// Two half-size exponentiations with the precomputed Garner
    /// coefficient stored in the key.
    Garner,
}

impl CrtMode {
    /// All CRT modes.
    pub const ALL: [CrtMode; 3] = [CrtMode::None, CrtMode::Recompute, CrtMode::Garner];
}

impl fmt::Display for CrtMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrtMode::None => "no-crt",
            CrtMode::Recompute => "crt-recompute",
            CrtMode::Garner => "crt-garner",
        };
        f.write_str(s)
    }
}

/// Limb radix of the multi-precision representation (2 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Radix {
    /// 16-bit limbs: products fit a 32-bit word, so no wide multiply is
    /// needed — attractive on multiplier-less cores.
    R16,
    /// 32-bit limbs: half the iterations, needs a 32×32 multiplier.
    R32,
}

impl Radix {
    /// All radices.
    pub const ALL: [Radix; 2] = [Radix::R16, Radix::R32];
}

impl fmt::Display for Radix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Radix::R16 => f.write_str("r16"),
            Radix::R32 => f.write_str("r32"),
        }
    }
}

/// Software caching of derived per-key state (3 options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CacheMode {
    /// Recompute reduction constants (Barrett `mu`, Montgomery `R²`,
    /// `n0'`) on every exponentiation.
    None,
    /// Cache reduction constants per modulus (hash-table lookup).
    Context,
    /// Cache reduction constants *and* the window precomputation table
    /// per (base, modulus) pair.
    ContextAndTable,
}

impl CacheMode {
    /// All caching options.
    pub const ALL: [CacheMode; 3] = [
        CacheMode::None,
        CacheMode::Context,
        CacheMode::ContextAndTable,
    ];
}

impl fmt::Display for CacheMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheMode::None => "nocache",
            CacheMode::Context => "ctxcache",
            CacheMode::ContextAndTable => "fullcache",
        };
        f.write_str(s)
    }
}

/// One point in the modular-exponentiation design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModExpConfig {
    /// Modular-multiplication strategy.
    pub mul: MulAlgo,
    /// Exponent window width in bits (1–5; the paper's "input block
    /// sizes").
    pub window: u32,
    /// CRT handling.
    pub crt: CrtMode,
    /// Limb radix.
    pub radix: Radix,
    /// Software caching option.
    pub cache: CacheMode,
}

impl ModExpConfig {
    /// Window widths explored (5 options).
    pub const WINDOWS: [u32; 5] = [1, 2, 3, 4, 5];

    /// A sensible default (and the baseline for Table 1's unoptimized
    /// software): schoolbook multiply + division, binary exponent
    /// scanning, no CRT, 32-bit limbs, no caching.
    pub fn baseline() -> Self {
        ModExpConfig {
            mul: MulAlgo::MulDiv,
            window: 1,
            crt: CrtMode::None,
            radix: Radix::R32,
            cache: CacheMode::None,
        }
    }

    /// The configuration the paper's exploration converges to for RSA
    /// decryption: Montgomery multiplication, 5-bit windows, Garner CRT,
    /// 32-bit limbs, cached contexts and tables.
    pub fn optimized() -> Self {
        ModExpConfig {
            mul: MulAlgo::Montgomery,
            window: 5,
            crt: CrtMode::Garner,
            radix: Radix::R32,
            cache: CacheMode::ContextAndTable,
        }
    }

    /// Enumerates the full 450-candidate lattice in a deterministic
    /// order.
    pub fn enumerate() -> Vec<ModExpConfig> {
        let mut out = Vec::with_capacity(450);
        for &mul in &MulAlgo::ALL {
            for &window in &Self::WINDOWS {
                for &crt in &CrtMode::ALL {
                    for &radix in &Radix::ALL {
                        for &cache in &CacheMode::ALL {
                            out.push(ModExpConfig {
                                mul,
                                window,
                                crt,
                                radix,
                                cache,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for ModExpConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/w{}/{}/{}/{}",
            self.mul, self.window, self.crt, self.radix, self.cache
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn lattice_has_450_distinct_points() {
        let all = ModExpConfig::enumerate();
        assert_eq!(all.len(), 450, "5 × 5 × 3 × 2 × 3");
        let set: BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 450);
    }

    #[test]
    fn baseline_and_optimized_are_members() {
        let all = ModExpConfig::enumerate();
        assert!(all.contains(&ModExpConfig::baseline()));
        assert!(all.contains(&ModExpConfig::optimized()));
    }

    #[test]
    fn display_is_unique_per_config() {
        let all = ModExpConfig::enumerate();
        let names: BTreeSet<String> = all.iter().map(|c| c.to_string()).collect();
        assert_eq!(names.len(), 450);
    }

    #[test]
    fn axis_sizes_match_paper() {
        assert_eq!(MulAlgo::ALL.len(), 5);
        assert_eq!(ModExpConfig::WINDOWS.len(), 5);
        assert_eq!(CrtMode::ALL.len(), 3);
        assert_eq!(Radix::ALL.len(), 2);
        assert_eq!(CacheMode::ALL.len(), 3);
    }
}
