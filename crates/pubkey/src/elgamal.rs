//! ElGamal encryption over `Z_p*`.
//!
//! The paper lists ElGamal alongside RSA as a supported public-key
//! primitive of the platform. Operations route through the same
//! configurable modular-exponentiation engine, so the design-space
//! machinery applies unchanged.

use crate::modexp::{mod_exp, ExpCache, ModExpError};
use crate::ops::MpnOps;
use crate::space::ModExpConfig;
use mpint::{prime, Natural};
use rand::Rng;
use std::fmt;

/// Public parameters: a prime modulus and a generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Params {
    /// Prime modulus `p`.
    pub p: Natural,
    /// Generator `g` of (a large subgroup of) `Z_p*`.
    pub g: Natural,
}

impl Params {
    /// Generates parameters with a safe prime `p = 2q + 1` of `bits`
    /// bits and `g = 4` (a generator of the order-`q` subgroup).
    ///
    /// # Panics
    ///
    /// Panics if `bits < 16`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Params {
        assert!(bits >= 16);
        loop {
            let q = prime::gen_prime(bits - 1, rng);
            let p = &(&q * &Natural::from_u64(2)) + &Natural::one();
            if p.bit_length() == bits && prime::is_probable_prime(&p, 16, rng) {
                // 4 = 2² is a quadratic residue, hence generates the
                // order-q subgroup.
                return Params {
                    p,
                    g: Natural::from_u64(4),
                };
            }
        }
    }
}

/// An ElGamal key pair: secret `x`, public `y = g^x mod p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    /// The shared parameters.
    pub params: Params,
    /// Secret exponent.
    pub x: Natural,
    /// Public value `g^x mod p`.
    pub y: Natural,
}

/// An ElGamal ciphertext `(c1, c2) = (g^k, m·y^k)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ciphertext {
    /// `g^k mod p`.
    pub c1: Natural,
    /// `m · y^k mod p`.
    pub c2: Natural,
}

/// Errors from ElGamal operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElGamalError {
    /// The message is not in `[1, p)`.
    MessageOutOfRange,
    /// The underlying exponentiation failed.
    ModExp(ModExpError),
}

impl fmt::Display for ElGamalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElGamalError::MessageOutOfRange => write!(f, "message must lie in [1, p)"),
            ElGamalError::ModExp(e) => write!(f, "modular exponentiation failed: {e}"),
        }
    }
}

impl std::error::Error for ElGamalError {}

impl From<ModExpError> for ElGamalError {
    fn from(e: ModExpError) -> Self {
        ElGamalError::ModExp(e)
    }
}

impl KeyPair {
    /// Generates a key pair under the given parameters.
    pub fn generate<R, O>(
        params: Params,
        rng: &mut R,
        ops: &mut O,
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<KeyPair, ElGamalError>
    where
        R: Rng + ?Sized,
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
    {
        let two = Natural::from_u64(2);
        let span = &params.p - &two;
        let x = &Natural::random_below(rng, &span) + &Natural::one(); // [1, p-2]
        let y = mod_exp(ops, &params.g, &x, &params.p, cfg, cache)?;
        Ok(KeyPair { params, x, y })
    }

    /// Encrypts `m ∈ [1, p)` with an ephemeral exponent.
    ///
    /// # Errors
    ///
    /// Returns [`ElGamalError::MessageOutOfRange`] or a propagated
    /// exponentiation error.
    pub fn encrypt<R, O>(
        &self,
        m: &Natural,
        rng: &mut R,
        ops: &mut O,
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<Ciphertext, ElGamalError>
    where
        R: Rng + ?Sized,
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
    {
        if m.is_zero() || m >= &self.params.p {
            return Err(ElGamalError::MessageOutOfRange);
        }
        let two = Natural::from_u64(2);
        let span = &self.params.p - &two;
        let k = &Natural::random_below(rng, &span) + &Natural::one();
        let c1 = mod_exp(ops, &self.params.g, &k, &self.params.p, cfg, cache)?;
        let yk = mod_exp(ops, &self.y, &k, &self.params.p, cfg, cache)?;
        let c2 = &(m * &yk) % &self.params.p;
        Ok(Ciphertext { c1, c2 })
    }

    /// Decrypts a ciphertext: `m = c2 · (c1^x)⁻¹ mod p`, computed as
    /// `c2 · c1^(p-1-x)` to avoid an explicit inverse.
    ///
    /// # Errors
    ///
    /// Returns a propagated exponentiation error.
    pub fn decrypt<O>(
        &self,
        ct: &Ciphertext,
        ops: &mut O,
        cfg: &ModExpConfig,
        cache: &mut ExpCache,
    ) -> Result<Natural, ElGamalError>
    where
        O: MpnOps<u16> + MpnOps<u32> + ?Sized,
    {
        let exp = &(&self.params.p - &Natural::one()) - &self.x;
        let s_inv = mod_exp(ops, &ct.c1, &exp, &self.params.p, cfg, cache)?;
        Ok(&(&ct.c2 * &s_inv) % &self.params.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NativeMpn;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixed_params() -> Params {
        // p = 2·q + 1 with q prime: p = 0xE3 * ... use a known safe
        // prime: p = 1907 (q = 953 prime), g = 4 for tiny tests... use a
        // larger known safe prime 2^89 - ... simpler: generate once with
        // a seeded rng at 64 bits.
        let mut rng = StdRng::seed_from_u64(99);
        Params::generate(64, &mut rng)
    }

    #[test]
    fn roundtrip() {
        let params = fixed_params();
        let mut rng = StdRng::seed_from_u64(7);
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let cfg = ModExpConfig::optimized();
        let kp = KeyPair::generate(params, &mut rng, &mut ops, &cfg, &mut cache).unwrap();
        for m in [1u64, 2, 12345, 0xffff_ffff] {
            let m = Natural::from_u64(m);
            let ct = kp
                .encrypt(&m, &mut rng, &mut ops, &cfg, &mut cache)
                .unwrap();
            assert_ne!(ct.c2, m);
            let back = kp.decrypt(&ct, &mut ops, &cfg, &mut cache).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn encryption_is_randomized() {
        let params = fixed_params();
        let mut rng = StdRng::seed_from_u64(8);
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let cfg = ModExpConfig::baseline();
        let kp = KeyPair::generate(params, &mut rng, &mut ops, &cfg, &mut cache).unwrap();
        let m = Natural::from_u64(777);
        let a = kp
            .encrypt(&m, &mut rng, &mut ops, &cfg, &mut cache)
            .unwrap();
        let b = kp
            .encrypt(&m, &mut rng, &mut ops, &cfg, &mut cache)
            .unwrap();
        assert_ne!(a, b, "fresh ephemeral key per encryption");
    }

    #[test]
    fn message_range_validated() {
        let params = fixed_params();
        let mut rng = StdRng::seed_from_u64(9);
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let cfg = ModExpConfig::baseline();
        let kp = KeyPair::generate(params, &mut rng, &mut ops, &cfg, &mut cache).unwrap();
        assert!(matches!(
            kp.encrypt(&Natural::zero(), &mut rng, &mut ops, &cfg, &mut cache),
            Err(ElGamalError::MessageOutOfRange)
        ));
        let p = kp.params.p.clone();
        assert!(matches!(
            kp.encrypt(&p, &mut rng, &mut ops, &cfg, &mut cache),
            Err(ElGamalError::MessageOutOfRange)
        ));
    }

    #[test]
    fn params_are_safe_prime_shaped() {
        let p = fixed_params();
        let mut rng = StdRng::seed_from_u64(10);
        assert!(prime::is_probable_prime(&p.p, 16, &mut rng));
        let q = &(&p.p - &Natural::one()) / &Natural::from_u64(2);
        assert!(prime::is_probable_prime(&q, 16, &mut rng));
    }
}
