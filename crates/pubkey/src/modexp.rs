//! Configurable modular exponentiation over the metered ops boundary.
//!
//! [`mod_exp`] executes any point of the paper's 450-candidate design
//! space ([`crate::space::ModExpConfig`]): it selects the
//! modular-multiplication strategy, exponent window width, limb radix
//! and caching behavior, while performing all limb arithmetic through an
//! [`MpnOps`] provider so the same code is used for functional runs,
//! macro-model estimation, and ISS co-simulation.

use crate::algo::{self, BarrettState, MontyState};
use crate::ops::MpnOps;
use crate::space::{CacheMode, ModExpConfig, MulAlgo, Radix};
use mpint::limb::Limb;
use mpint::mpn;
use mpint::Natural;
use std::collections::BTreeMap;
use std::fmt;

/// Errors from configurable modular exponentiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModExpError {
    /// The modulus was zero.
    ZeroModulus,
    /// Montgomery multiplication requires an odd modulus.
    EvenModulusMontgomery,
}

impl fmt::Display for ModExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModExpError::ZeroModulus => write!(f, "modulus must be nonzero"),
            ModExpError::EvenModulusMontgomery => {
                write!(f, "montgomery multiplication requires an odd modulus")
            }
        }
    }
}

impl std::error::Error for ModExpError {}

/// Window-table cache key: `(modulus, base, window bits, mul algo)`.
type TableKey<L> = (Vec<L>, Vec<L>, u32, MulAlgo);

/// Per-radix cache of reduction contexts and window tables.
#[derive(Debug, Clone, Default)]
struct RadixCache<L: Limb> {
    monty: BTreeMap<Vec<L>, MontyState<L>>,
    barrett: BTreeMap<Vec<L>, BarrettState<L>>,
    tables: BTreeMap<TableKey<L>, Vec<Vec<L>>>,
}

/// Cross-call cache implementing the design space's software caching
/// axis. Create one per key/session and pass it to every call.
#[derive(Debug, Clone, Default)]
pub struct ExpCache {
    r16: RadixCache<u16>,
    r32: RadixCache<u32>,
}

impl ExpCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached reduction contexts (both radices).
    pub fn context_entries(&self) -> usize {
        self.r16.monty.len()
            + self.r16.barrett.len()
            + self.r32.monty.len()
            + self.r32.barrett.len()
    }

    /// Number of cached window tables (both radices).
    pub fn table_entries(&self) -> usize {
        self.r16.tables.len() + self.r32.tables.len()
    }
}

/// Computes `base^exp mod modulus` under the given design-space
/// configuration.
///
/// # Errors
///
/// Returns [`ModExpError`] for a zero modulus, or an even modulus with
/// a Montgomery configuration.
///
/// # Examples
///
/// ```
/// use pubkey::modexp::{mod_exp, ExpCache};
/// use pubkey::ops::NativeMpn;
/// use pubkey::space::ModExpConfig;
/// use mpint::Natural;
///
/// let mut ops = NativeMpn::new();
/// let mut cache = ExpCache::new();
/// let m = Natural::from_u64(0xffff_ffff_ffff_ffc5);
/// let b = Natural::from_u64(3);
/// let e = Natural::from_u64(1 << 40);
/// let got = mod_exp(&mut ops, &b, &e, &m, &ModExpConfig::optimized(), &mut cache)?;
/// assert_eq!(got, b.pow_mod(&e, &m));
/// # Ok::<(), pubkey::modexp::ModExpError>(())
/// ```
pub fn mod_exp<O>(
    ops: &mut O,
    base: &Natural,
    exp: &Natural,
    modulus: &Natural,
    cfg: &ModExpConfig,
    cache: &mut ExpCache,
) -> Result<Natural, ModExpError>
where
    O: MpnOps<u16> + MpnOps<u32> + ?Sized,
{
    match cfg.radix {
        Radix::R16 => mod_exp_radix::<u16, O>(ops, base, exp, modulus, cfg, &mut cache.r16),
        Radix::R32 => mod_exp_radix::<u32, O>(ops, base, exp, modulus, cfg, &mut cache.r32),
    }
}

fn mod_exp_radix<L: Limb, O: MpnOps<L> + ?Sized>(
    ops: &mut O,
    base: &Natural,
    exp: &Natural,
    modulus: &Natural,
    cfg: &ModExpConfig,
    cache: &mut RadixCache<L>,
) -> Result<Natural, ModExpError> {
    if modulus.is_zero() {
        return Err(ModExpError::ZeroModulus);
    }
    if modulus.is_one() {
        return Ok(Natural::zero());
    }
    let m_limbs: Vec<L> = modulus.to_radix_limbs();
    let k = m_limbs.len();
    if matches!(cfg.mul, MulAlgo::Montgomery) && modulus.is_even() {
        return Err(ModExpError::EvenModulusMontgomery);
    }

    // Reduce the base.
    let base_red = base % modulus;
    if exp.is_zero() {
        return Ok(Natural::one());
    }

    // Set up the reduction context per strategy and cache mode.
    let monty: Option<MontyState<L>> = if matches!(cfg.mul, MulAlgo::Montgomery) {
        Some(match cfg.cache {
            CacheMode::None => MontyState::new(ops, &m_limbs),
            _ => cache
                .monty
                .entry(m_limbs.clone())
                .or_insert_with(|| MontyState::new(ops, &m_limbs))
                .clone(),
        })
    } else {
        None
    };
    let barrett: Option<BarrettState<L>> =
        if matches!(cfg.mul, MulAlgo::Barrett | MulAlgo::KaratsubaBarrett) {
            Some(match cfg.cache {
                CacheMode::None => BarrettState::new(ops, &m_limbs),
                _ => cache
                    .barrett
                    .entry(m_limbs.clone())
                    .or_insert_with(|| BarrettState::new(ops, &m_limbs))
                    .clone(),
            })
        } else {
            None
        };

    // Domain representation: k-limb vectors, Montgomery domain when
    // applicable.
    let mut base_dom: Vec<L> = base_red.to_radix_limbs();
    base_dom.resize(k, L::ZERO);
    let one_dom: Vec<L>;
    if let Some(st) = &monty {
        base_dom = st.to_monty(ops, &base_dom);
        let mut one = vec![L::ZERO; k];
        one[0] = L::ONE;
        one_dom = st.to_monty(ops, &one);
    } else {
        let mut one = vec![L::ZERO; k];
        one[0] = L::ONE;
        one_dom = one;
    }

    let modmul = |ops: &mut O, a: &[L], b: &[L]| -> Vec<L> {
        match cfg.mul {
            MulAlgo::Montgomery => monty.as_ref().expect("set above").mul(ops, a, b),
            MulAlgo::MulDiv => {
                let t = algo::mul_schoolbook(ops, a, b);
                let (_, r) = algo::divrem(ops, &t, &m_limbs);
                pad(r, k)
            }
            MulAlgo::KaratsubaDiv => {
                let t = algo::mul_karatsuba(ops, a, b, algo::KARATSUBA_THRESHOLD);
                let (_, r) = algo::divrem(ops, &t, &m_limbs);
                pad(r, k)
            }
            MulAlgo::Barrett => {
                let t = algo::mul_schoolbook(ops, a, b);
                pad(barrett.as_ref().expect("set above").reduce(ops, &t), k)
            }
            MulAlgo::KaratsubaBarrett => {
                let t = algo::mul_karatsuba(ops, a, b, algo::KARATSUBA_THRESHOLD);
                pad(barrett.as_ref().expect("set above").reduce(ops, &t), k)
            }
        }
    };

    // Window precomputation table: table[i] = base^i (domain), i < 2^w.
    let w = cfg.window;
    let table_key = (m_limbs.clone(), base_dom.clone(), w, cfg.mul);
    let table: Vec<Vec<L>> = match cfg.cache {
        CacheMode::ContextAndTable if cache.tables.contains_key(&table_key) => {
            ops.glue(1); // hash lookup
            cache.tables[&table_key].clone()
        }
        _ => {
            let entries = 1usize << w;
            let mut t: Vec<Vec<L>> = Vec::with_capacity(entries);
            t.push(one_dom.clone());
            if entries > 1 {
                t.push(base_dom.clone());
            }
            for i in 2..entries {
                let prev = t[i - 1].clone();
                t.push(modmul(ops, &prev, &base_dom));
            }
            if matches!(cfg.cache, CacheMode::ContextAndTable) {
                cache.tables.insert(table_key, t.clone());
            }
            t
        }
    };

    // MSB-first fixed-window scan.
    let bits = exp.bit_length();
    let digits = bits.div_ceil(w as usize);
    let mut acc = one_dom.clone();
    let mut started = false;
    for d in (0..digits).rev() {
        if started {
            for _ in 0..w {
                acc = modmul(ops, &acc.clone(), &acc);
            }
        }
        let digit = exp.bits(d * w as usize, w);
        if digit != 0 {
            acc = if started {
                modmul(ops, &acc, &table[digit as usize])
            } else {
                table[digit as usize].clone()
            };
            started = true;
        } else if started {
            // nothing to multiply
        }
        ops.glue(1);
    }
    if !started {
        // exp was zero (handled earlier), defensive.
        acc = one_dom;
    }

    let out = if let Some(st) = &monty {
        st.from_monty(ops, &acc)
    } else {
        acc
    };
    Ok(Natural::from_radix_limbs(mpn::normalized(&out)))
}

fn pad<L: Limb>(mut v: Vec<L>, k: usize) -> Vec<L> {
    v.resize(k, L::ZERO);
    v
}

/// RSA-CRT private-key material for [`mod_exp_crt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrtKey {
    /// First prime factor.
    pub p: Natural,
    /// Second prime factor.
    pub q: Natural,
    /// `d mod (p-1)`.
    pub dp: Natural,
    /// `d mod (q-1)`.
    pub dq: Natural,
    /// Precomputed `q⁻¹ mod p` (used by [`crate::space::CrtMode::Garner`]).
    pub qinv: Natural,
}

/// Computes `base^d mod pq` with the configuration's CRT mode:
/// two half-size exponentiations recombined by Garner's formula, with
/// `q⁻¹ mod p` either precomputed or recomputed per call.
///
/// # Errors
///
/// Returns [`ModExpError`] from the underlying exponentiations.
pub fn mod_exp_crt<O>(
    ops: &mut O,
    base: &Natural,
    key: &CrtKey,
    cfg: &ModExpConfig,
    cache: &mut ExpCache,
) -> Result<Natural, ModExpError>
where
    O: MpnOps<u16> + MpnOps<u32> + ?Sized,
{
    use crate::space::CrtMode;
    let n = &key.p * &key.q;
    match cfg.crt {
        CrtMode::None => {
            // Caller should pass the full exponent through mod_exp; CRT
            // keys always carry dp/dq, so reconstruct d via CRT of the
            // exponents is not possible — the caller handles this case.
            unreachable!("mod_exp_crt requires a CRT mode; use mod_exp for CrtMode::None")
        }
        CrtMode::Recompute | CrtMode::Garner => {
            let m1 = mod_exp(ops, &(base % &key.p), &key.dp, &key.p, cfg, cache)?;
            let m2 = mod_exp(ops, &(base % &key.q), &key.dq, &key.q, cfg, cache)?;
            let qinv = match cfg.crt {
                CrtMode::Garner => key.qinv.clone(),
                _ => {
                    // Recompute q^{-1} mod p; metered as glue
                    // proportional to the (quadratic-ish) gcd work.
                    let bits = key.p.bit_length() as u64;
                    MpnOps::<u32>::glue(ops, bits * bits / 16);
                    mpint::gcd::mod_inverse(&key.q, &key.p)
                        .expect("p, q are distinct primes, so q is invertible mod p")
                }
            };
            // h = qinv * (m1 - m2) mod p  (Garner), result = m2 + h*q.
            let m2p = &m2 % &key.p;
            let diff = if m1 >= m2p {
                &m1 - &m2p
            } else {
                &(&m1 + &key.p) - &m2p
            };
            let h = mul_mod_metered(ops, &qinv, &diff, &key.p);
            let hq = mul_metered(ops, &h, &key.q);
            let out = &(&m2 + &hq) % &n;
            Ok(out)
        }
    }
}

/// `a*b` with the product metered through the 32-bit ops path.
fn mul_metered<O>(ops: &mut O, a: &Natural, b: &Natural) -> Natural
where
    O: MpnOps<u32> + ?Sized,
{
    let p = algo::mul_schoolbook::<u32, O>(ops, a.limbs(), b.limbs());
    Natural::from_limbs(p.to_vec())
}

/// `a*b mod m`, metered.
fn mul_mod_metered<O>(ops: &mut O, a: &Natural, b: &Natural, m: &Natural) -> Natural
where
    O: MpnOps<u32> + ?Sized,
{
    let p = algo::mul_schoolbook::<u32, O>(ops, a.limbs(), b.limbs());
    let (_, r) = algo::divrem::<u32, O>(ops, &p, m.limbs());
    Natural::from_limbs(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::NativeMpn;
    use crate::space::{CrtMode, ModExpConfig};
    use mpint::gcd;

    fn nat(hex: &str) -> Natural {
        Natural::from_hex_str(hex).unwrap()
    }

    /// A 128-bit odd modulus and operands for quick sweeps.
    fn fixture() -> (Natural, Natural, Natural) {
        let m = nat("f0000000000000000000000000000461"); // odd
        let b = nat("0123456789abcdef0123456789abcdef");
        let e = nat("deadbeefcafebabe");
        (m, b, e)
    }

    #[test]
    fn every_config_matches_the_reference() {
        let (m, b, e) = fixture();
        let expect = b.pow_mod(&e, &m);
        let mut cache = ExpCache::new();
        let mut ops = NativeMpn::new();
        for cfg in ModExpConfig::enumerate() {
            let got = mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache)
                .unwrap_or_else(|err| panic!("{cfg}: {err}"));
            assert_eq!(got, expect, "config {cfg}");
        }
    }

    #[test]
    fn even_modulus_rejected_only_by_montgomery() {
        let m = Natural::from_u64(1 << 40);
        let b = Natural::from_u64(12345);
        let e = Natural::from_u64(77);
        let mut cache = ExpCache::new();
        let mut ops = NativeMpn::new();
        let mut monty_cfg = ModExpConfig::baseline();
        monty_cfg.mul = MulAlgo::Montgomery;
        assert_eq!(
            mod_exp(&mut ops, &b, &e, &m, &monty_cfg, &mut cache),
            Err(ModExpError::EvenModulusMontgomery)
        );
        let cfg = ModExpConfig::baseline();
        assert_eq!(
            mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap(),
            b.pow_mod(&e, &m)
        );
    }

    #[test]
    fn trivial_cases() {
        let mut cache = ExpCache::new();
        let mut ops = NativeMpn::new();
        let cfg = ModExpConfig::optimized();
        let m = Natural::from_u64(97);
        let b = Natural::from_u64(5);
        assert_eq!(
            mod_exp(&mut ops, &b, &Natural::zero(), &m, &cfg, &mut cache).unwrap(),
            Natural::one()
        );
        assert_eq!(
            mod_exp(&mut ops, &b, &Natural::one(), &m, &cfg, &mut cache).unwrap(),
            b
        );
        assert_eq!(
            mod_exp(
                &mut ops,
                &b,
                &Natural::from_u64(2),
                &Natural::one(),
                &cfg,
                &mut cache
            )
            .unwrap(),
            Natural::zero()
        );
        assert!(matches!(
            mod_exp(&mut ops, &b, &b, &Natural::zero(), &cfg, &mut cache),
            Err(ModExpError::ZeroModulus)
        ));
    }

    #[test]
    fn caching_reuses_contexts() {
        let (m, b, e) = fixture();
        let mut cache = ExpCache::new();
        let mut ops = NativeMpn::new();
        let mut cfg = ModExpConfig::optimized();
        cfg.cache = CacheMode::ContextAndTable;
        mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap();
        assert_eq!(cache.context_entries(), 1);
        assert_eq!(cache.table_entries(), 1);
        mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap();
        assert_eq!(cache.context_entries(), 1, "context reused");
        assert_eq!(cache.table_entries(), 1, "table reused");
    }

    #[test]
    fn cache_mode_none_keeps_cache_empty() {
        let (m, b, e) = fixture();
        let mut cache = ExpCache::new();
        let mut ops = NativeMpn::new();
        let mut cfg = ModExpConfig::optimized();
        cfg.cache = CacheMode::None;
        mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap();
        assert_eq!(cache.context_entries(), 0);
        assert_eq!(cache.table_entries(), 0);
    }

    #[test]
    fn wider_windows_use_fewer_multiplications() {
        let (m, b, _) = fixture();
        let e = nat("ffffffffffffffffffffffffffffffff"); // dense exponent
        let mut counts = Vec::new();
        for w in [1u32, 4] {
            let mut ops = NativeMpn::new();
            let mut cache = ExpCache::new();
            let mut cfg = ModExpConfig::baseline();
            cfg.mul = MulAlgo::Montgomery;
            cfg.window = w;
            mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap();
            counts.push(MpnOps::<u32>::call_counts(&ops)[crate::ops::opname::ADDMUL_1]);
        }
        assert!(
            counts[1] < counts[0],
            "w=4 ({}) should beat w=1 ({})",
            counts[1],
            counts[0]
        );
    }

    #[test]
    fn crt_matches_full_exponentiation() {
        // p, q small primes; d chosen valid for e=65537? For the test we
        // only need m^d mod n consistency between CRT and direct paths.
        let p = nat("f123456789abcdf1"); // will be replaced by real primes below
        let _ = p;
        let p = Natural::from_u64(0xffff_fffb); // not prime; need primes.
        let _ = p;
        // Use known primes.
        let p = Natural::from_u64(4_294_967_291); // 2^32 - 5, prime
        let q = Natural::from_u64(4_294_967_279); // 2^32 - 17, prime
        let n = &p * &q;
        let d = nat("12345671234567");
        let dp = &d % &(&p - &Natural::one());
        let dq = &d % &(&q - &Natural::one());
        let qinv = gcd::mod_inverse(&q, &p).unwrap();
        let key = CrtKey {
            p: p.clone(),
            q: q.clone(),
            dp,
            dq,
            qinv,
        };
        let msg = nat("0123456789abcdeffedcba987");
        let direct = msg.pow_mod(&d, &n);
        for crt in [CrtMode::Recompute, CrtMode::Garner] {
            let mut cfg = ModExpConfig::optimized();
            cfg.crt = crt;
            let mut ops = NativeMpn::new();
            let mut cache = ExpCache::new();
            let got = mod_exp_crt(&mut ops, &msg, &key, &cfg, &mut cache).unwrap();
            assert_eq!(got, direct, "crt mode {crt}");
        }
    }

    #[test]
    fn radix16_and_radix32_agree() {
        let (m, b, e) = fixture();
        let expect = b.pow_mod(&e, &m);
        for mul in MulAlgo::ALL {
            let mut cfg = ModExpConfig::baseline();
            cfg.mul = mul;
            let mut ops = NativeMpn::new();
            let mut cache = ExpCache::new();
            cfg.radix = Radix::R16;
            assert_eq!(
                mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap(),
                expect,
                "{mul} r16"
            );
            cfg.radix = Radix::R32;
            assert_eq!(
                mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).unwrap(),
                expect,
                "{mul} r32"
            );
        }
    }
}
