//! Public-key cryptography and the modular-exponentiation algorithm
//! design space of the DAC 2002 wireless security processing platform.
//!
//! - [`ops`]: the metered basic-operations boundary ([`ops::MpnOps`])
//!   separating the algorithm layer from the `mpn` kernels, with native
//!   and macro-model-metered providers;
//! - [`algo`]: multiplication, division, Barrett and Montgomery
//!   machinery expressed over that boundary;
//! - [`modexp`]: configurable modular exponentiation covering the full
//!   450-candidate design space of [`space`] (5 modular-multiplication
//!   algorithms × 5 window sizes × 3 CRT modes × 2 radices × 3 caching
//!   options);
//! - [`rsa`] and [`elgamal`]: the platform's public-key primitives.
//!
//! # Examples
//!
//! ```
//! use pubkey::rsa::KeyPair;
//! use pubkey::ops::NativeMpn;
//! use pubkey::modexp::ExpCache;
//! use pubkey::space::ModExpConfig;
//! use mpint::Natural;
//!
//! let mut rng = rand::rng();
//! let kp = KeyPair::generate(256, &mut rng);
//! let mut ops = NativeMpn::new();
//! let mut cache = ExpCache::new();
//! let cfg = ModExpConfig::optimized();
//! let msg = Natural::from_u64(12345);
//! let ct = kp.public.encrypt_raw(&mut ops, &msg, &cfg, &mut cache)?;
//! let pt = kp.private.decrypt_raw(&mut ops, &ct, &cfg, &mut cache)?;
//! assert_eq!(pt, msg);
//! # Ok::<(), pubkey::rsa::RsaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod elgamal;
pub mod modexp;
pub mod ops;
pub mod rsa;
pub mod space;

pub use modexp::{mod_exp, mod_exp_crt, ExpCache};
pub use ops::{ModeledMpn, MpnOps, NativeMpn};
pub use space::{CacheMode, CrtMode, ModExpConfig, MulAlgo, Radix};
