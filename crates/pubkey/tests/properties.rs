//! Property-based tests for the public-key layer and the algorithm
//! design space.

use mpint::Natural;
use proptest::prelude::*;
use pubkey::algo;
use pubkey::modexp::{mod_exp, ExpCache};
use pubkey::ops::{MpnOps, NativeMpn};
use pubkey::space::{CacheMode, CrtMode, ModExpConfig, MulAlgo, Radix};

fn natural(max_limbs: usize) -> impl Strategy<Value = Natural> {
    prop::collection::vec(any::<u32>(), 1..=max_limbs).prop_map(Natural::from_limbs)
}

fn odd_modulus(max_limbs: usize) -> impl Strategy<Value = Natural> {
    natural(max_limbs).prop_map(|n| {
        let n = if n.is_even() { &n + &Natural::one() } else { n };
        if n.is_one() || n.is_zero() {
            Natural::from_u64(0xffff_ffff_ffff_ffc5)
        } else {
            n
        }
    })
}

fn any_config() -> impl Strategy<Value = ModExpConfig> {
    (
        prop::sample::select(MulAlgo::ALL.to_vec()),
        prop::sample::select(ModExpConfig::WINDOWS.to_vec()),
        prop::sample::select(CrtMode::ALL.to_vec()),
        prop::sample::select(Radix::ALL.to_vec()),
        prop::sample::select(CacheMode::ALL.to_vec()),
    )
        .prop_map(|(mul, window, crt, radix, cache)| ModExpConfig {
            mul,
            window,
            crt,
            radix,
            cache,
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn any_config_matches_reference_pow_mod(
        cfg in any_config(),
        m in odd_modulus(4),
        b in natural(4),
        e in natural(2),
    ) {
        let mut ops = NativeMpn::new();
        let mut cache = ExpCache::new();
        let got = mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache)
            .expect("odd modulus works for every strategy");
        prop_assert_eq!(got, b.pow_mod(&e, &m), "config {}", cfg);
    }

    #[test]
    fn cached_and_uncached_agree(
        m in odd_modulus(3),
        b in natural(3),
        e in natural(2),
    ) {
        let mut cfg = ModExpConfig::optimized();
        let mut ops = NativeMpn::new();
        cfg.cache = CacheMode::None;
        let mut c1 = ExpCache::new();
        let plain = mod_exp(&mut ops, &b, &e, &m, &cfg, &mut c1).expect("runs");
        cfg.cache = CacheMode::ContextAndTable;
        let mut c2 = ExpCache::new();
        let first = mod_exp(&mut ops, &b, &e, &m, &cfg, &mut c2).expect("runs");
        let second = mod_exp(&mut ops, &b, &e, &m, &cfg, &mut c2).expect("runs");
        prop_assert_eq!(&plain, &first);
        prop_assert_eq!(&plain, &second);
    }

    #[test]
    fn ops_divrem_matches_natural(n in natural(8), d in natural(4)) {
        let mut ops = NativeMpn::new();
        let (q, r) = algo::divrem::<u32, _>(&mut ops, n.limbs(), d.limbs());
        let (qq, rr) = n.div_rem(&d);
        prop_assert_eq!(Natural::from_limbs(q), qq);
        prop_assert_eq!(Natural::from_limbs(r), rr);
    }

    #[test]
    fn ops_karatsuba_matches_schoolbook(
        a in prop::collection::vec(any::<u32>(), 1..60),
        b in prop::collection::vec(any::<u32>(), 1..60),
    ) {
        let mut ops = NativeMpn::new();
        let k = algo::mul_karatsuba(&mut ops, &a, &b, 8);
        let s = algo::mul_schoolbook(&mut ops, &a, &b);
        prop_assert_eq!(k, s);
    }

    #[test]
    fn monty_state_roundtrips(m in odd_modulus(4), a in natural(4)) {
        let mut ops = NativeMpn::new();
        let ml: Vec<u32> = m.to_radix_limbs();
        let st = algo::MontyState::<u32>::new(&mut ops, &ml);
        let ar = &a % &m;
        let k = st.n.len();
        let ap = ar.to_limbs_padded(k);
        let dom = st.to_monty(&mut ops, &ap);
        let back = st.from_monty(&mut ops, &dom);
        prop_assert_eq!(Natural::from_limbs(back), ar);
    }

    #[test]
    fn barrett_state_reduces_correctly(m in odd_modulus(4), x in natural(4)) {
        let mut ops = NativeMpn::new();
        let ml: Vec<u32> = m.to_radix_limbs();
        let st = algo::BarrettState::<u32>::new(&mut ops, &ml);
        let xr = &x % &m;
        let sq = &xr * &xr;
        let mut padded = sq.limbs().to_vec();
        padded.resize(2 * ml.len(), 0);
        let r = st.reduce(&mut ops, &padded);
        prop_assert_eq!(Natural::from_limbs(r), &sq % &m);
    }

    #[test]
    fn call_counts_scale_with_window(e_raw in prop::collection::vec(any::<u32>(), 2..4)) {
        // More window bits => fewer total multiplications for *dense*
        // exponents (table cost amortized); sparse exponents favor
        // narrow windows, so densify the random input.
        let e = Natural::from_limbs(e_raw.iter().map(|l| l | 0xffff_fff0).collect());
        let m = Natural::from_hex_str("f0000000000000000000000000000461").unwrap();
        let b = Natural::from_u64(0x1234_5678_9abc_def1);
        prop_assume!(e.bit_length() > 48);
        let count = |w: u32| {
            let mut cfg = ModExpConfig::baseline();
            cfg.mul = MulAlgo::Montgomery;
            cfg.window = w;
            let mut ops = NativeMpn::new();
            let mut cache = ExpCache::new();
            mod_exp(&mut ops, &b, &e, &m, &cfg, &mut cache).expect("runs");
            MpnOps::<u32>::call_counts(&ops)[pubkey::ops::opname::ADDMUL_1]
        };
        prop_assert!(count(5) < count(1));
    }
}
