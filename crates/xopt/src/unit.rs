//! Structured assembly units: parse a kernel source into an item list
//! the rewriting passes can splice, reorder and re-print.
//!
//! The assembler resolves branch targets to instruction indices, which
//! would go stale the moment a pass inserts or removes an instruction.
//! [`Unit`] therefore re-symbolizes every control transfer: an
//! [`Item::Op`] carries the *label name* of its target, and
//! [`Unit::print`] emits label operands again, so any item-level edit
//! stays consistent by construction. Non-control instructions round-trip
//! through [`xr32::isa::Insn`]'s canonical `Display` text.

use std::collections::BTreeMap;

use xr32::asm::assemble;
use xr32::isa::Insn;

use crate::OptError;

/// One line of a structured unit.
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// A `;!` annotation line, kept verbatim (entry specs, secret
    /// classes, custom signatures).
    Annot(String),
    /// A label definition.
    Label(String),
    /// An instruction; `target` is the symbolic destination when the
    /// instruction is a branch, jump or call.
    Op {
        /// The decoded instruction. Branch-family variants carry a
        /// stale numeric target — [`Item::text`] prints `target`
        /// instead.
        insn: Insn,
        /// Symbolic control-transfer destination.
        target: Option<String>,
    },
}

impl Item {
    /// The item's assembly-source text (without indentation).
    pub fn text(&self) -> String {
        match self {
            Item::Annot(s) => s.clone(),
            Item::Label(l) => format!("{l}:"),
            Item::Op { insn, target } => op_text(insn, target.as_deref()),
        }
    }
}

fn op_text(insn: &Insn, target: Option<&str>) -> String {
    use Insn::*;
    let Some(l) = target else {
        return insn.to_string();
    };
    match insn {
        Beq(a, b, _) => format!("beq {a}, {b}, {l}"),
        Bne(a, b, _) => format!("bne {a}, {b}, {l}"),
        Bltu(a, b, _) => format!("bltu {a}, {b}, {l}"),
        Bgeu(a, b, _) => format!("bgeu {a}, {b}, {l}"),
        Blt(a, b, _) => format!("blt {a}, {b}, {l}"),
        Bge(a, b, _) => format!("bge {a}, {b}, {l}"),
        J(_) => format!("j {l}"),
        Call(_) => format!("call {l}"),
        _ => insn.to_string(),
    }
}

/// A kernel unit as an editable item list.
#[derive(Debug, Clone)]
pub struct Unit {
    /// The unit's lines, in order.
    pub items: Vec<Item>,
}

impl Unit {
    /// Parses `src` by assembling it and re-symbolizing branch targets.
    /// `;!` annotation lines are preserved (in source order, before the
    /// code); ordinary comments are dropped.
    ///
    /// # Errors
    ///
    /// [`OptError::Analyze`] when the source does not assemble, and
    /// [`OptError::Unsupported`] when a control transfer lands on an
    /// unlabeled instruction (cannot be re-symbolized).
    pub fn parse(src: &str) -> Result<Unit, OptError> {
        let program = assemble(src).map_err(OptError::from_assemble)?;
        let mut items = Vec::new();
        for line in src.lines() {
            let t = line.trim();
            if t.starts_with(";!") {
                items.push(Item::Annot(t.to_string()));
            }
        }
        // Labels sorted by (pc, name) so multiple labels at one pc are
        // emitted deterministically.
        let mut labels: Vec<(usize, &str)> = program
            .labels()
            .iter()
            .map(|(name, &pc)| (pc, name.as_str()))
            .collect();
        labels.sort();
        let mut by_pc: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        for (pc, name) in labels {
            by_pc.entry(pc).or_default().push(name);
        }
        for (pc, insn) in program.insns().iter().enumerate() {
            for name in by_pc.get(&pc).into_iter().flatten() {
                items.push(Item::Label(name.to_string()));
            }
            let target = match insn.branch_target() {
                Some(t) => Some(
                    program
                        .label_at(t)
                        .ok_or_else(|| {
                            OptError::Unsupported(format!(
                                "branch at pc {pc} targets unlabeled pc {t}"
                            ))
                        })?
                        .to_string(),
                ),
                None => None,
            };
            items.push(Item::Op {
                insn: insn.clone(),
                target,
            });
        }
        for name in by_pc.get(&program.len()).into_iter().flatten() {
            items.push(Item::Label(name.to_string()));
        }
        Ok(Unit { items })
    }

    /// Prints the unit as assemblable source: annotations and labels at
    /// column zero, instructions indented.
    pub fn print(&self) -> String {
        let mut out = String::new();
        for item in &self.items {
            match item {
                Item::Annot(_) | Item::Label(_) => {
                    out.push_str(&item.text());
                }
                Item::Op { .. } => {
                    out.push_str("    ");
                    out.push_str(&item.text());
                }
            }
            out.push('\n');
        }
        out
    }

    /// Item index of instruction `pc` (counting only [`Item::Op`]s).
    pub fn item_of_pc(&self, pc: usize) -> Option<usize> {
        self.items
            .iter()
            .enumerate()
            .filter(|(_, it)| matches!(it, Item::Op { .. }))
            .nth(pc)
            .map(|(ix, _)| ix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "
;! entry f inputs=a0,a1
;! cust ldur regs=1 uregs=1 kind=load
f:
    movi a2, 0
.lp:
    cust ldur ur0, a1, 2
    addi a2, a2, 1
    bne  a2, a0, .lp
    mov  a0, a2
    ret
";

    #[test]
    fn parse_print_round_trips_semantically() {
        let unit = Unit::parse(SRC).unwrap();
        let printed = unit.print();
        let a = assemble(SRC).unwrap();
        let b = assemble(&printed).unwrap();
        assert_eq!(a.insns(), b.insns(), "reprint must preserve the program");
        assert_eq!(a.label("f"), b.label("f"));
        assert_eq!(a.label(".lp"), b.label(".lp"));
        // Annotations survive verbatim.
        assert!(printed.contains(";! entry f inputs=a0,a1"));
        assert!(printed.contains(";! cust ldur"));
    }

    #[test]
    fn branches_are_resymbolized() {
        let unit = Unit::parse(SRC).unwrap();
        let branch = unit
            .items
            .iter()
            .find(|it| {
                matches!(
                    it,
                    Item::Op {
                        insn: Insn::Bne(..),
                        ..
                    }
                )
            })
            .unwrap();
        assert_eq!(branch.text(), "bne a2, a0, .lp");
    }

    #[test]
    fn item_of_pc_maps_through_labels() {
        let unit = Unit::parse(SRC).unwrap();
        let ix = unit.item_of_pc(1).unwrap(); // the cust after .lp
        assert!(
            matches!(&unit.items[ix], Item::Op { insn: Insn::Custom(op), .. } if op.name == "ldur")
        );
    }
}
