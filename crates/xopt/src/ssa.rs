//! SSA-lite: def-site value naming on top of `xlint`'s reaching
//! definitions.
//!
//! Full SSA would insert phi nodes at join points; the kernels this
//! pipeline rewrites are single loops, where the only joins are loop
//! headers. SSA-lite therefore names values by their *definition site*
//! (the defining pc, or the entry pseudo-def) and exposes a use as
//! either one unique value or an explicit loop-carried join of def
//! sites — exactly the reaching-defs facts, renamed, with no rewriting
//! of the program itself. The selection pass matches dataflow through
//! [`SsaView::unique_def`] edges, which is sound precisely because a
//! unique reaching definition *is* an SSA use-def edge.

use xlint::dataflow::ENTRY_DEF;
use xlint::ir::{EntryIr, UnitIr};
use xr32::isa::Reg;

/// The value observed by a register use, named by definition site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// The register's value on entry (argument or uninitialized).
    Entry(Reg),
    /// The result of the instruction at this pc.
    Def(usize),
    /// A join of several def sites (loop-carried); sorted, deduped,
    /// `ENTRY_DEF` encoded as `usize::MAX` last.
    Join(Vec<usize>),
}

/// A read-only SSA-lite view of one entry's dataflow.
pub struct SsaView<'a> {
    ir: &'a UnitIr,
    entry: &'a EntryIr,
}

impl<'a> SsaView<'a> {
    /// The view for `entry_label`, if that entry was analyzed.
    pub fn new(ir: &'a UnitIr, entry_label: &str) -> Option<SsaView<'a>> {
        ir.entry(entry_label).map(|entry| SsaView { ir, entry })
    }

    /// The underlying entry facts.
    pub fn entry(&self) -> &EntryIr {
        self.entry
    }

    /// The SSA-lite value register `r` holds at instruction `pc`.
    pub fn value(&self, pc: usize, r: Reg) -> Value {
        let defs = self.entry.reaching.defs_at(pc, r);
        let mut sites: Vec<usize> = defs.iter().copied().collect();
        sites.sort_unstable();
        sites.dedup();
        match sites.as_slice() {
            [d] if *d == ENTRY_DEF => Value::Entry(r),
            [d] => Value::Def(*d),
            _ => Value::Join(sites),
        }
    }

    /// The unique defining pc of `r` at `pc`, when the use has exactly
    /// one non-entry reaching definition (a proper SSA use-def edge).
    pub fn unique_def(&self, pc: usize, r: Reg) -> Option<usize> {
        match self.value(pc, r) {
            Value::Def(d) => Some(d),
            _ => None,
        }
    }

    /// True when `r` at `pc` still holds its entry value on every path
    /// (loop-invariant with respect to this entry).
    pub fn entry_valued(&self, pc: usize, r: Reg) -> bool {
        matches!(self.value(pc, r), Value::Entry(_))
    }

    /// The def sites of `r` at `pc` as a sorted list (`ENTRY_DEF`
    /// included when the entry value can reach).
    pub fn def_sites(&self, pc: usize, r: Reg) -> Vec<usize> {
        match self.value(pc, r) {
            Value::Entry(_) => vec![ENTRY_DEF],
            Value::Def(d) => vec![d],
            Value::Join(sites) => sites,
        }
    }

    /// Whether `pc` is reachable from this entry.
    pub fn reachable(&self, pc: usize) -> bool {
        self.entry.reachable.get(pc).copied().unwrap_or(false)
    }

    /// The analyzed unit.
    pub fn ir(&self) -> &UnitIr {
        self.ir
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr32::isa::Reg;

    const SRC: &str = "
;! entry f inputs=a0,a1,sp,ra
f:
    movi a2, 0
.lp:
    addi a2, a2, 1
    bne  a2, a0, .lp
    mov  a0, a2
    ret
";

    #[test]
    fn values_name_def_sites() {
        let ir = UnitIr::from_source(SRC).unwrap();
        let ssa = SsaView::new(&ir, "f").unwrap();
        // a0 is never written before pc 3: entry-valued everywhere it
        // is read in the loop.
        assert!(ssa.entry_valued(2, Reg::new(0)));
        // a2 at the loop header (the increment's own source) is the
        // loop-carried join of the init and the increment.
        assert_eq!(ssa.value(1, Reg::new(2)), Value::Join(vec![0, 1]));
        assert!(ssa.unique_def(1, Reg::new(2)).is_none());
        // Past the increment the redefinition kills the join: a proper
        // SSA use-def edge to pc 1.
        assert_eq!(ssa.unique_def(2, Reg::new(2)), Some(1));
        assert_eq!(ssa.def_sites(3, Reg::new(2)), vec![1]);
    }
}
