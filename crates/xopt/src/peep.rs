//! Dead-code elimination and peephole cleanup over a structured unit.
//!
//! DCE re-derives liveness for the *current* unit text (via
//! [`UnitIr`], so the facts are the analyzer's own) and deletes
//! register writes that are dead at their program point, provided the
//! instruction has no other architectural effect — stores, control
//! transfers, custom instructions and carry-flag writers are always
//! kept. The peephole then drops identity moves (`mov r, r`,
//! `addi r, r, 0`). Both passes iterate to a fixed point, since a
//! deletion can kill further writes.

use xlint::dataflow::insn_dests;
use xlint::ir::UnitIr;
use xr32::isa::Insn;

use crate::unit::{Item, Unit};
use crate::OptError;

fn writes_carry(insn: &Insn, ir: &UnitIr) -> bool {
    match insn {
        Insn::Addc(..) | Insn::Subc(..) | Insn::Clc => true,
        Insn::Custom(op) => ir.spec.sig(&op.name).is_none_or(|sig| sig.writes_carry),
        _ => false,
    }
}

/// One DCE sweep; returns the pcs (instruction indices) to delete.
fn dead_pcs(ir: &UnitIr) -> Vec<usize> {
    let insns = ir.program.insns();
    let mut dead = Vec::new();
    for (pc, insn) in insns.iter().enumerate() {
        if insn.is_store()
            || insn.ends_block()
            || insn.branch_target().is_some()
            || matches!(insn, Insn::Custom(_))
            || writes_carry(insn, ir)
        {
            continue;
        }
        let dests = insn_dests(insn, &ir.spec);
        if dests.is_empty() {
            continue;
        }
        let live = ir.liveness.live_out(pc);
        if dests.iter().all(|&d| !live.contains(d)) {
            dead.push(pc);
        }
    }
    dead
}

/// True for instructions the peephole removes outright.
fn identity(insn: &Insn) -> bool {
    matches!(insn, Insn::Mov(d, s) if d == s) || matches!(insn, Insn::Addi(d, s, 0) if d == s)
}

/// Runs DCE + peephole to a fixed point. Returns the number of items
/// removed.
///
/// # Errors
///
/// Propagates analysis errors on the unit's own printed source (which
/// would indicate a malformed rewrite upstream).
pub fn clean(unit: &mut Unit) -> Result<usize, OptError> {
    let mut removed = 0;
    loop {
        // Peephole first: purely syntactic.
        let before = unit.items.len();
        unit.items.retain(|it| match it {
            Item::Op { insn, .. } => !identity(insn),
            _ => true,
        });
        removed += before - unit.items.len();

        // One liveness-backed DCE sweep on the current text.
        let ir = UnitIr::from_source(&unit.print()).map_err(OptError::Analyze)?;
        let dead = dead_pcs(&ir);
        if dead.is_empty() {
            return Ok(removed);
        }
        // Map pcs to item indices and delete from the back.
        let mut item_ixs: Vec<usize> = dead.iter().filter_map(|&pc| unit.item_of_pc(pc)).collect();
        item_ixs.sort_unstable();
        for ix in item_ixs.into_iter().rev() {
            unit.items.remove(ix);
            removed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removes_dead_writes_and_identity_moves() {
        let src = "
f:
    movi a2, 7
    mov  a2, a2
    addi a3, a3, 0
    movi a2, 1
    add  a0, a2, a2
    ret
";
        let mut unit = Unit::parse(src).unwrap();
        let removed = clean(&mut unit).unwrap();
        // mov a2,a2 and addi a3,a3,0 are identities; movi a2,7 is
        // overwritten before any read once they are gone.
        assert_eq!(removed, 3, "{}", unit.print());
        let printed = unit.print();
        assert!(!printed.contains("movi a2, 7"));
        assert!(printed.contains("movi a2, 1"));
    }

    #[test]
    fn keeps_stores_carry_writers_and_customs() {
        let src = "
;! cust mac1 regs=2 uregs=2 kind=compute writes-reg=1
f:
    clc
    addc a4, a4, a5
    sw   a4, a0, 0
    cust mac1 ur0, ur1, a3, a4
    ret
";
        let mut unit = Unit::parse(src).unwrap();
        let removed = clean(&mut unit).unwrap();
        assert_eq!(removed, 0, "{}", unit.print());
    }
}
