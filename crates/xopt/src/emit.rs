//! Wide-datapath emission: rewrite a matched canonical loop into a
//! blocked loop over the family's custom instructions, keeping the
//! canonical body as the scalar tail.
//!
//! The generated unit mirrors the hand-written accelerated library's
//! structure — `k`-limb blocks through `ldur`/`add<k>`-or-`mac<k>`/
//! `stur`, a scalar tail for the remaining `n mod k` limbs, and the
//! canonical epilogue — but is derived mechanically from the matched
//! roles, so it works for any kernel whose dataflow matches the
//! pattern, not just the two the library hand-codes. The scalar tail
//! is the canonical body verbatim (minus the back-branch); the list
//! scheduler then rebalances it, which is where generated variants
//! recover the interlock stalls the hand-written tails pay.

use kreg::AccelLevel;
use xr32::isa::{CustomOp, Insn, Reg, UserReg};

use crate::select::{LoopShape, PatternMatch};
use crate::unit::{Item, Unit};
use crate::OptError;

/// The blocking threshold register: the lowest general register the
/// unit never mentions (outside sp/ra), so the insertion cannot clobber
/// live state.
fn free_reg(unit: &Unit) -> Result<Reg, OptError> {
    let mut used = [false; 16];
    used[Reg::SP.index()] = true;
    used[Reg::RA.index()] = true;
    for item in &unit.items {
        if let Item::Op { insn, .. } = item {
            for r in insn.sources() {
                used[r.index()] = true;
            }
            if let Some(d) = insn.dest() {
                used[d.index()] = true;
            }
            if let Insn::Custom(op) = insn {
                for &r in &op.regs {
                    used[r.index()] = true;
                }
            }
        }
    }
    (0..14)
        .find(|&i| !used[i])
        .map(|i| Reg::new(i as u8))
        .ok_or(OptError::NoFreeReg)
}

fn cust(name: String, regs: Vec<Reg>, uregs: Vec<UserReg>, imm: i32) -> Item {
    Item::Op {
        insn: Insn::Custom(CustomOp {
            name,
            regs,
            uregs,
            imm,
        }),
        target: None,
    }
}

fn op(insn: Insn) -> Item {
    Item::Op { insn, target: None }
}

fn branch(insn: Insn, target: &str) -> Item {
    Item::Op {
        insn,
        target: Some(target.to_string()),
    }
}

/// Splits `unit` around the matched loop: `(prologue, body, epilogue)`
/// item ranges, where the body excludes the head label (kept in the
/// prologue slice boundary) and includes the back-branch.
fn split(unit: &Unit, shape: LoopShape) -> Result<(usize, usize, usize), OptError> {
    let head_ix = unit
        .item_of_pc(shape.head)
        .ok_or_else(|| OptError::Unsupported("loop head outside unit".into()))?;
    let back_ix = unit
        .item_of_pc(shape.back)
        .ok_or_else(|| OptError::Unsupported("loop back-branch outside unit".into()))?;
    // The head label (an `Item::Label` immediately before the first
    // body op) belongs to the removed loop.
    let mut lo = head_ix;
    while lo > 0 && matches!(unit.items[lo - 1], Item::Label(ref l) if l.starts_with('.')) {
        lo -= 1;
    }
    Ok((lo, head_ix, back_ix))
}

/// Emits the blocked variant of `unit` for `level`, given the matched
/// roles. The signature annotations for the custom instructions used
/// are prepended so the taint checker and the scheduler see them.
pub fn emit(unit: &Unit, m: &PatternMatch, level: &AccelLevel) -> Result<Unit, OptError> {
    let shape = m.shape();
    let thr = free_reg(unit)?;
    let (lo, head_ix, back_ix) = split(unit, shape)?;

    let (lanes, block_insns, sig_annots) = match *m {
        PatternMatch::Elementwise(em) => {
            let k = level.add_lanes;
            let mnem = if em.subtract { "sub" } else { "add" };
            let sigs = vec![
                ";! cust ldur regs=1 uregs=1 kind=load".to_string(),
                ";! cust stur regs=1 uregs=1 kind=store".to_string(),
                format!(";! cust {mnem}{k} regs=0 uregs=3 kind=compute reads-carry writes-carry"),
            ];
            let ops = vec![
                cust("ldur".into(), vec![em.ap], vec![UserReg::new(0)], k as i32),
                cust("ldur".into(), vec![em.bp], vec![UserReg::new(1)], k as i32),
                cust(
                    format!("{mnem}{k}"),
                    vec![],
                    vec![UserReg::new(2), UserReg::new(0), UserReg::new(1)],
                    0,
                ),
                cust("stur".into(), vec![em.rp], vec![UserReg::new(2)], k as i32),
                op(Insn::Addi(em.rp, em.rp, 4 * k as i32)),
                op(Insn::Addi(em.ap, em.ap, 4 * k as i32)),
                op(Insn::Addi(em.bp, em.bp, 4 * k as i32)),
            ];
            (k, ops, sigs)
        }
        PatternMatch::MulAcc(mm) => {
            let k = level.mac_lanes;
            let mnem = if mm.subtract { "msub" } else { "mac" };
            let sigs = vec![
                ";! cust ldur regs=1 uregs=1 kind=load".to_string(),
                ";! cust stur regs=1 uregs=1 kind=store".to_string(),
                format!(";! cust {mnem}{k} regs=2 uregs=2 kind=compute writes-reg=1"),
            ];
            let ops = vec![
                cust("ldur".into(), vec![mm.rp], vec![UserReg::new(0)], k as i32),
                cust("ldur".into(), vec![mm.ap], vec![UserReg::new(1)], k as i32),
                cust(
                    format!("{mnem}{k}"),
                    vec![mm.b, mm.carry],
                    vec![UserReg::new(0), UserReg::new(1)],
                    0,
                ),
                cust("stur".into(), vec![mm.rp], vec![UserReg::new(0)], k as i32),
                op(Insn::Addi(mm.rp, mm.rp, 4 * k as i32)),
                op(Insn::Addi(mm.ap, mm.ap, 4 * k as i32)),
            ];
            (k, ops, sigs)
        }
    };

    let mut items = Vec::new();
    // Custom signatures first, then the unit's own annotations.
    for s in sig_annots {
        items.push(Item::Annot(s));
    }
    for it in &unit.items {
        if let Item::Annot(_) = it {
            items.push(it.clone());
        }
    }
    // Prologue (labels + ops before the loop), skipping annotations
    // (already emitted).
    for it in &unit.items[..lo] {
        if !matches!(it, Item::Annot(_)) {
            items.push(it.clone());
        }
    }
    // Blocking threshold.
    items.push(op(Insn::Movi(thr, lanes as i32)));
    // Blocked loop.
    items.push(Item::Label(".xg_blk".into()));
    items.push(branch(Insn::Bltu(shape.counter, thr, 0), ".xg_tail"));
    items.extend(block_insns);
    items.push(op(Insn::Addi(
        shape.counter,
        shape.counter,
        -(lanes as i32),
    )));
    items.push(branch(Insn::J(0), ".xg_blk"));
    // Scalar tail: the canonical body minus its back-branch, re-looped.
    items.push(Item::Label(".xg_tail".into()));
    items.push(branch(Insn::Beq(shape.counter, shape.zero, 0), ".xg_done"));
    for it in &unit.items[head_ix..back_ix] {
        items.push(it.clone());
    }
    items.push(branch(Insn::J(0), ".xg_tail"));
    // Epilogue.
    items.push(Item::Label(".xg_done".into()));
    for it in &unit.items[back_ix + 1..] {
        items.push(it.clone());
    }
    Ok(Unit { items })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreg::{id, kernels::mpn, registry, LoopPattern};
    use xlint::ir::UnitIr;

    fn emit_for(id: kreg::KernelId, pattern: LoopPattern, level: &AccelLevel) -> Unit {
        let src = mpn::canonical_source32(id).unwrap();
        let ir = UnitIr::from_source(src).unwrap();
        let m = crate::select::match_pattern(&ir, id.name(), pattern).unwrap();
        let unit = Unit::parse(src).unwrap();
        emit(&unit, &m, level).unwrap()
    }

    #[test]
    fn blocked_add_n_assembles_and_keeps_the_entry() {
        let desc = registry().iter().find(|d| d.id == id::ADD_N).unwrap();
        let level = desc.family.unwrap().levels[1]; // 4 lanes
        let unit = emit_for(id::ADD_N, LoopPattern::ElementwiseCarry, &level);
        let printed = unit.print();
        let prog = xr32::asm::assemble(&printed).unwrap();
        assert!(prog.label("mpn_add_n").is_some(), "{printed}");
        assert!(printed.contains("cust add4 ur2, ur0, ur1"), "{printed}");
        assert!(printed.contains("movi a7, 4"), "{printed}");
        assert!(printed.contains(";! cust add4"), "{printed}");
        // The canonical secret annotation survives.
        assert!(printed.contains("secret-ptr=a1,a2"), "{printed}");
    }

    #[test]
    fn blocked_addmul_uses_the_carry_gpr() {
        let desc = registry().iter().find(|d| d.id == id::ADDMUL_1).unwrap();
        let level = desc.family.unwrap().levels[2]; // 4 mac lanes
        let unit = emit_for(id::ADDMUL_1, LoopPattern::MulAccumulate, &level);
        let printed = unit.print();
        xr32::asm::assemble(&printed).unwrap();
        assert!(printed.contains("cust mac4 ur0, ur1, a3, a7"), "{printed}");
        assert!(printed.contains("movi a11, 4"), "{printed}");
    }
}
