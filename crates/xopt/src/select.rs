//! Custom-instruction selection: match an [`kreg::InsnFamilySpec`]'s
//! [`LoopPattern`] against a kernel's SSA-lite dataflow and recover the
//! register roles the wide-datapath rewrite needs.
//!
//! Matching is structural, not positional: operands are traced through
//! [`SsaView`] use-def edges, so the matcher is insensitive to the
//! exact ordering of pointer bumps and loads inside the loop body and
//! refuses (rather than mis-rewrites) anything whose dataflow deviates
//! from the family's canonical shape.

use kreg::LoopPattern;
use xlint::ir::UnitIr;
use xr32::isa::{Insn, Reg};

use crate::ssa::SsaView;
use crate::OptError;

/// The single counted loop of a kernel entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoopShape {
    /// First body pc (the back-branch target).
    pub head: usize,
    /// The conditional back-branch pc (last body instruction).
    pub back: usize,
    /// The loop counter (decremented once per iteration).
    pub counter: Reg,
    /// The register holding zero that the back-branch compares against.
    pub zero: Reg,
}

/// Roles recovered from an `ElementwiseCarry` loop
/// (`mpn_add_n`/`mpn_sub_n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementwiseMatch {
    /// The loop.
    pub shape: LoopShape,
    /// Result stream pointer.
    pub rp: Reg,
    /// First source stream pointer.
    pub ap: Reg,
    /// Second source stream pointer.
    pub bp: Reg,
    /// True for the borrow chain (`subc`), false for carry (`addc`).
    pub subtract: bool,
}

/// Roles recovered from a `MulAccumulate` loop
/// (`mpn_addmul_1`/`mpn_submul_1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MulAccMatch {
    /// The loop.
    pub shape: LoopShape,
    /// Accumulated stream pointer (read and written).
    pub rp: Reg,
    /// Multiplicand stream pointer.
    pub ap: Reg,
    /// The loop-invariant scalar multiplier.
    pub b: Reg,
    /// The GPR threading the carry limb between iterations.
    pub carry: Reg,
    /// True when the product is subtracted (`submul`).
    pub subtract: bool,
}

/// A successful pattern match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternMatch {
    /// Two loads, one carry-chained add/sub, one store.
    Elementwise(ElementwiseMatch),
    /// Load × invariant scalar accumulated into a second stream.
    MulAcc(MulAccMatch),
}

impl PatternMatch {
    /// The matched loop.
    pub fn shape(&self) -> LoopShape {
        match self {
            PatternMatch::Elementwise(m) => m.shape,
            PatternMatch::MulAcc(m) => m.shape,
        }
    }
}

/// Finds the entry's single counted loop: a conditional back-branch
/// `bne counter, zero, head` with `head <= back`, where the counter is
/// decremented in the body and `zero` is a `movi 0` from the prologue.
pub fn find_loop(ssa: &SsaView<'_>) -> Result<LoopShape, OptError> {
    let insns = ssa.ir().program.insns();
    let mut found = None;
    for (pc, insn) in insns.iter().enumerate() {
        if !ssa.reachable(pc) {
            continue;
        }
        let Insn::Bne(c, z, t) = insn else {
            continue; // the canonical counted-loop back edge is a bne
        };
        if *t > pc {
            continue; // forward branch, not a back edge
        }
        if found.is_some() {
            return Err(OptError::PatternMismatch(
                "more than one counted loop in entry".into(),
            ));
        }
        found = Some((pc, *t, *c, *z));
    }
    let Some((back, head, counter, zero)) = found else {
        return Err(OptError::PatternMismatch("no counted loop found".into()));
    };
    // The compared-against register must be a constant zero from
    // outside the loop.
    let Some(zdef) = ssa.unique_def(back, zero) else {
        return Err(OptError::PatternMismatch(format!(
            "loop bound {zero} is not singly defined"
        )));
    };
    if !matches!(insns[zdef], Insn::Movi(r, 0) if r == zero) || zdef >= head {
        return Err(OptError::PatternMismatch(format!(
            "loop bound {zero} is not a prologue zero"
        )));
    }
    // The counter must step by exactly -1 inside the body.
    let steps: Vec<usize> = (head..=back)
        .filter(|&pc| matches!(insns[pc], Insn::Addi(d, s, -1) if d == counter && s == counter))
        .collect();
    if steps.len() != 1 {
        return Err(OptError::PatternMismatch(format!(
            "loop counter {counter} must be decremented exactly once per iteration"
        )));
    }
    Ok(LoopShape {
        head,
        back,
        counter,
        zero,
    })
}

/// Matches `pattern` against `entry_label`'s loop in `ir`.
///
/// # Errors
///
/// [`OptError::PatternMismatch`] with a diagnostic when the entry's
/// dataflow does not have the family's canonical shape, and
/// [`OptError::Unsupported`] when the entry was not analyzed.
pub fn match_pattern(
    ir: &UnitIr,
    entry_label: &str,
    pattern: LoopPattern,
) -> Result<PatternMatch, OptError> {
    let ssa = SsaView::new(ir, entry_label)
        .ok_or_else(|| OptError::Unsupported(format!("entry {entry_label} not analyzed")))?;
    let shape = find_loop(&ssa)?;
    match pattern {
        LoopPattern::ElementwiseCarry => match_elementwise(&ssa, shape),
        LoopPattern::MulAccumulate => match_mul_acc(&ssa, shape),
    }
}

/// Body pcs of `shape`, back-branch included.
fn body(shape: LoopShape) -> std::ops::RangeInclusive<usize> {
    shape.head..=shape.back
}

/// The word loads (`lw _, base, 0`) inside the body.
fn body_loads(insns: &[Insn], shape: LoopShape) -> Vec<(usize, Reg, Reg)> {
    body(shape)
        .filter_map(|pc| match insns[pc] {
            Insn::Lw(d, base, 0) => Some((pc, d, base)),
            _ => None,
        })
        .collect()
}

/// Checks the body bumps pointer `p` by exactly `step` once.
fn bumped_once(insns: &[Insn], shape: LoopShape, p: Reg, step: i32) -> bool {
    body(shape)
        .filter(|&pc| matches!(insns[pc], Insn::Addi(d, s, k) if d == p && s == p && k == step))
        .count()
        == 1
}

fn match_elementwise(ssa: &SsaView<'_>, shape: LoopShape) -> Result<PatternMatch, OptError> {
    let insns = ssa.ir().program.insns();
    let loads = body_loads(insns, shape);
    if loads.len() != 2 {
        return Err(OptError::PatternMismatch(format!(
            "elementwise loop needs exactly 2 streamed loads, found {}",
            loads.len()
        )));
    }
    // The carry-chained combine, with both operands traced to the
    // loads by SSA use-def edges.
    let mut combine = None;
    for pc in body(shape) {
        let (d, x, y, subtract) = match insns[pc] {
            Insn::Addc(d, x, y) => (d, x, y, false),
            Insn::Subc(d, x, y) => (d, x, y, true),
            _ => continue,
        };
        if combine.is_some() {
            return Err(OptError::PatternMismatch(
                "multiple carry-chained combines in body".into(),
            ));
        }
        combine = Some((pc, d, x, y, subtract));
    }
    let Some((cpc, _, cx, cy, subtract)) = combine else {
        return Err(OptError::PatternMismatch(
            "no carry-chained add/sub in body".into(),
        ));
    };
    let xd = ssa.unique_def(cpc, cx);
    let yd = ssa.unique_def(cpc, cy);
    // x must come from the first-stream load, y from the second; for
    // subtraction the operand order fixes which stream is the
    // minuend, so ap/bp are recovered from the combine's operand
    // order, not from load order.
    let ap = loads
        .iter()
        .find(|&&(pc, d, _)| Some(pc) == xd && d == cx)
        .map(|&(_, _, base)| base);
    let bp = loads
        .iter()
        .find(|&&(pc, d, _)| Some(pc) == yd && d == cy)
        .map(|&(_, _, base)| base);
    let (Some(ap), Some(bp)) = (ap, bp) else {
        return Err(OptError::PatternMismatch(
            "combine operands are not the streamed loads".into(),
        ));
    };
    if ap == bp {
        return Err(OptError::PatternMismatch(
            "both streams load through the same pointer".into(),
        ));
    }
    // The result is stored to a third stream.
    let mut store = None;
    for pc in body(shape) {
        if let Insn::Sw(v, base, 0) = insns[pc] {
            if store.is_some() {
                return Err(OptError::PatternMismatch("multiple stores in body".into()));
            }
            store = Some((pc, v, base));
        }
    }
    let Some((spc, sv, rp)) = store else {
        return Err(OptError::PatternMismatch(
            "no streamed store in body".into(),
        ));
    };
    if ssa.unique_def(spc, sv) != Some(cpc) {
        return Err(OptError::PatternMismatch(
            "stored value is not the combine result".into(),
        ));
    }
    for p in [rp, ap, bp] {
        if !bumped_once(insns, shape, p, 4) {
            return Err(OptError::PatternMismatch(format!(
                "stream pointer {p} is not bumped by 4 exactly once"
            )));
        }
    }
    Ok(PatternMatch::Elementwise(ElementwiseMatch {
        shape,
        rp,
        ap,
        bp,
        subtract,
    }))
}

fn match_mul_acc(ssa: &SsaView<'_>, shape: LoopShape) -> Result<PatternMatch, OptError> {
    let insns = ssa.ir().program.insns();
    let loads = body_loads(insns, shape);
    if loads.len() != 2 {
        return Err(OptError::PatternMismatch(format!(
            "mul-accumulate loop needs exactly 2 streamed loads, found {}",
            loads.len()
        )));
    }
    // The low product: one operand from a streamed load, the other
    // loop-invariant (the scalar b).
    let mut mul = None;
    for pc in body(shape) {
        if let Insn::Mul(d, x, y) = insns[pc] {
            if mul.is_some() {
                return Err(OptError::PatternMismatch("multiple muls in body".into()));
            }
            mul = Some((pc, d, x, y));
        }
    }
    let Some((mpc, _, mx, my)) = mul else {
        return Err(OptError::PatternMismatch("no mul in body".into()));
    };
    let from_load = |r: Reg| {
        ssa.unique_def(mpc, r)
            .and_then(|d| loads.iter().find(|&&(pc, ld, _)| pc == d && ld == r))
            .map(|&(_, _, base)| base)
    };
    let (ap, b) = if ssa.entry_valued(mpc, my) {
        (from_load(mx), my)
    } else if ssa.entry_valued(mpc, mx) {
        (from_load(my), mx)
    } else {
        return Err(OptError::PatternMismatch(
            "neither mul operand is loop-invariant".into(),
        ));
    };
    let Some(ap) = ap else {
        return Err(OptError::PatternMismatch(
            "mul operand is not a streamed load".into(),
        ));
    };
    // The high product must mirror the low one.
    let mulhu_ok = body(shape).any(|pc| {
        matches!(insns[pc], Insn::Mulhu(_, x, y)
            if (x, y) == (mx, my) || (x, y) == (my, mx))
    });
    if !mulhu_ok {
        return Err(OptError::PatternMismatch(
            "no matching mulhu for the carry limb".into(),
        ));
    }
    // The accumulated stream: the second load's base, stored back to.
    let rp = loads
        .iter()
        .map(|&(_, _, base)| base)
        .find(|&base| base != ap)
        .ok_or_else(|| {
            OptError::PatternMismatch("no accumulated stream distinct from the multiplicand".into())
        })?;
    let stores_rp = body(shape).any(|pc| matches!(insns[pc], Insn::Sw(_, base, 0) if base == rp));
    if !stores_rp {
        return Err(OptError::PatternMismatch(
            "accumulated stream is never stored back".into(),
        ));
    }
    for p in [rp, ap] {
        if !bumped_once(insns, shape, p, 4) {
            return Err(OptError::PatternMismatch(format!(
                "stream pointer {p} is not bumped by 4 exactly once"
            )));
        }
    }
    // The carry-limb GPR: zero-initialized in the prologue, read in the
    // body, redefined by a body `mov` — a loop-carried join of exactly
    // those two def sites.
    let mut carry = None;
    for pc in body(shape) {
        let Insn::Mov(cr, _) = insns[pc] else {
            continue;
        };
        if cr == shape.counter || cr == shape.zero {
            continue;
        }
        let sites = ssa.def_sites(shape.head, cr);
        let [init, redef] = sites.as_slice() else {
            continue;
        };
        let prologue_zero =
            *init < shape.head && matches!(insns[*init], Insn::Movi(r, 0) if r == cr);
        if prologue_zero && *redef == pc {
            if carry.is_some() {
                return Err(OptError::PatternMismatch(
                    "multiple carry-limb candidates in body".into(),
                ));
            }
            carry = Some(cr);
        }
    }
    let Some(carry) = carry else {
        return Err(OptError::PatternMismatch(
            "no loop-carried carry-limb GPR found".into(),
        ));
    };
    let subtract = body(shape).any(|pc| matches!(insns[pc], Insn::Sub(..) | Insn::Subc(..)));
    Ok(PatternMatch::MulAcc(MulAccMatch {
        shape,
        rp,
        ap,
        b,
        carry,
        subtract,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreg::{id, kernels::mpn};

    fn matched(id: kreg::KernelId, pattern: LoopPattern) -> PatternMatch {
        let src = mpn::canonical_source32(id).unwrap();
        let ir = UnitIr::from_source(src).unwrap();
        match_pattern(&ir, id.name(), pattern).unwrap()
    }

    #[test]
    fn add_n_matches_elementwise_carry() {
        let PatternMatch::Elementwise(m) = matched(id::ADD_N, LoopPattern::ElementwiseCarry) else {
            panic!("wrong match kind");
        };
        assert_eq!(m.rp, Reg::new(0));
        assert_eq!(m.ap, Reg::new(1));
        assert_eq!(m.bp, Reg::new(2));
        assert!(!m.subtract);
        assert_eq!(m.shape.counter, Reg::new(3));
        assert_eq!(m.shape.zero, Reg::new(6));
    }

    #[test]
    fn sub_n_matches_with_subtract_direction() {
        let PatternMatch::Elementwise(m) = matched(id::SUB_N, LoopPattern::ElementwiseCarry) else {
            panic!("wrong match kind");
        };
        // Operand order of subc fixes the minuend stream: ap must be
        // the first-loaded stream (a1), not whichever load came first.
        assert_eq!(m.ap, Reg::new(1));
        assert_eq!(m.bp, Reg::new(2));
        assert!(m.subtract);
    }

    #[test]
    fn addmul_1_matches_mul_accumulate() {
        let PatternMatch::MulAcc(m) = matched(id::ADDMUL_1, LoopPattern::MulAccumulate) else {
            panic!("wrong match kind");
        };
        assert_eq!(m.rp, Reg::new(0));
        assert_eq!(m.ap, Reg::new(1));
        assert_eq!(m.b, Reg::new(3));
        assert_eq!(m.carry, Reg::new(7));
        assert!(!m.subtract);
        assert_eq!(m.shape.counter, Reg::new(2));
    }

    #[test]
    fn mismatched_pattern_is_refused() {
        let src = mpn::canonical_source32(id::ADD_N).unwrap();
        let ir = UnitIr::from_source(src).unwrap();
        let err = match_pattern(&ir, "mpn_add_n", LoopPattern::MulAccumulate).unwrap_err();
        assert!(matches!(err, OptError::PatternMismatch(_)), "{err}");
    }
}
