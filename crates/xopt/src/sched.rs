//! List scheduling of straight-line runs against the core's
//! [`CostModel`].
//!
//! The in-order XR32 core stalls a consumer until its producer's
//! result delay elapses (load-use interlock, multiplier latency), so
//! reordering independent instructions into those slots is free
//! speedup. The scheduler:
//!
//! 1. splits a [`Unit`] into maximal straight-line runs (no labels, no
//!    control transfers inside a run),
//! 2. builds a dependence DAG per run — RAW/WAR/WAW over general
//!    registers, the carry flag and wide user registers (custom
//!    signatures consulted, conservatively for `Compute` uregs), with
//!    stores ordered against every other memory access,
//! 3. greedily lists ready nodes, preferring stall-free issue, then
//!    the longer critical path, then original order (deterministic),
//! 4. keeps whichever of {scheduled, original} order the cost model
//!    scores better — the pass can never regress a run.

use xlint::{CustomKind, SecretSpec};
use xr32::config::CostModel;
use xr32::isa::{Insn, Reg, UserReg};

use crate::unit::{Item, Unit};

/// A scheduling resource: something an instruction reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rsrc {
    R(Reg),
    Carry,
    U(UserReg),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MemKind {
    None,
    Load,
    Store,
}

struct Effects {
    reads: Vec<Rsrc>,
    writes: Vec<Rsrc>,
    mem: MemKind,
}

fn effects(insn: &Insn, spec: &SecretSpec) -> Effects {
    let mut reads: Vec<Rsrc> = insn.sources().into_iter().map(Rsrc::R).collect();
    let mut writes: Vec<Rsrc> = xlint::dataflow::insn_dests(insn, spec)
        .into_iter()
        .map(Rsrc::R)
        .collect();
    let mut mem = if insn.is_load() {
        MemKind::Load
    } else if insn.is_store() {
        MemKind::Store
    } else {
        MemKind::None
    };
    match insn {
        Insn::Addc(..) | Insn::Subc(..) => {
            reads.push(Rsrc::Carry);
            writes.push(Rsrc::Carry);
        }
        Insn::Clc => writes.push(Rsrc::Carry),
        Insn::Custom(op) => {
            if let Some(sig) = spec.sig(&op.name) {
                if sig.reads_carry {
                    reads.push(Rsrc::Carry);
                }
                if sig.writes_carry {
                    writes.push(Rsrc::Carry);
                }
                match sig.kind {
                    CustomKind::Load => {
                        mem = MemKind::Load;
                        writes.extend(op.uregs.iter().copied().map(Rsrc::U));
                    }
                    CustomKind::Store => {
                        mem = MemKind::Store;
                        reads.extend(op.uregs.iter().copied().map(Rsrc::U));
                    }
                    CustomKind::Compute => {
                        // Conservative: a compute custom both reads and
                        // writes every ureg operand, so relative order
                        // against its producers/consumers is preserved.
                        reads.extend(op.uregs.iter().copied().map(Rsrc::U));
                        writes.extend(op.uregs.iter().copied().map(Rsrc::U));
                    }
                }
            } else {
                // Unknown signature: act as a full barrier.
                mem = MemKind::Store;
                reads.push(Rsrc::Carry);
                writes.push(Rsrc::Carry);
                reads.extend(op.uregs.iter().copied().map(Rsrc::U));
                writes.extend(op.uregs.iter().copied().map(Rsrc::U));
            }
        }
        _ => {}
    }
    Effects { reads, writes, mem }
}

/// One dependence edge: `from` must issue before the dependent, whose
/// earliest stall-free issue is `from`'s issue time plus `latency`.
struct Edge {
    from: usize,
    latency: u32,
}

/// Builds the dependence DAG of a run. `preds[j]` lists edges into `j`.
fn dag(run: &[Insn], spec: &SecretSpec, cost: &CostModel) -> Vec<Vec<Edge>> {
    let fx: Vec<Effects> = run.iter().map(|i| effects(i, spec)).collect();
    let mut preds: Vec<Vec<Edge>> = (0..run.len()).map(|_| Vec::new()).collect();
    for j in 0..run.len() {
        for i in 0..j {
            let raw = fx[i].writes.iter().any(|w| fx[j].reads.contains(w));
            let war = fx[i].reads.iter().any(|r| fx[j].writes.contains(r));
            let waw = fx[i].writes.iter().any(|w| fx[j].writes.contains(w));
            let mem = matches!(
                (fx[i].mem, fx[j].mem),
                (MemKind::Store, MemKind::Load)
                    | (MemKind::Load, MemKind::Store)
                    | (MemKind::Store, MemKind::Store)
            );
            if raw {
                let lat = cost.issue_cycles(&run[i], None) + cost.result_delay(&run[i]);
                preds[j].push(Edge {
                    from: i,
                    latency: lat,
                });
            } else if war || waw || mem {
                let lat = cost.issue_cycles(&run[i], None);
                preds[j].push(Edge {
                    from: i,
                    latency: lat,
                });
            }
        }
    }
    preds
}

/// Scores an issue order: total cycles including interlock stalls.
fn order_cost(run: &[Insn], order: &[usize], spec: &SecretSpec, cost: &CostModel) -> u64 {
    let preds = dag(run, spec, cost);
    let mut issue_at = vec![0u64; run.len()];
    let mut t = 0u64;
    for &n in order {
        let ready = preds[n]
            .iter()
            .map(|e| issue_at[e.from] + u64::from(e.latency))
            .max()
            .unwrap_or(0);
        t = t.max(ready);
        issue_at[n] = t;
        t += u64::from(cost.issue_cycles(&run[n], None));
    }
    t
}

/// List-schedules one run, returning the chosen issue order.
fn schedule_run(run: &[Insn], spec: &SecretSpec, cost: &CostModel) -> Vec<usize> {
    let n = run.len();
    let preds = dag(run, spec, cost);
    let mut succs: Vec<Vec<(usize, u32)>> = (0..n).map(|_| Vec::new()).collect();
    let mut npreds = vec![0usize; n];
    for (j, es) in preds.iter().enumerate() {
        npreds[j] = es.len();
        for e in es {
            succs[e.from].push((j, e.latency));
        }
    }
    // Critical-path height (latency-weighted longest path to any leaf).
    let mut height = vec![0u64; n];
    for i in (0..n).rev() {
        height[i] = u64::from(cost.issue_cycles(&run[i], None));
        for &(j, lat) in &succs[i] {
            height[i] = height[i].max(u64::from(lat) + height[j]);
        }
    }

    let mut remaining: Vec<usize> = (0..n).filter(|&i| npreds[i] == 0).collect();
    let mut left = npreds.clone();
    let mut issue_at = vec![0u64; n];
    let mut order = Vec::with_capacity(n);
    let mut t = 0u64;
    while order.len() < n {
        // Earliest stall-free issue time per ready node.
        let ready_time = |i: usize| {
            preds[i]
                .iter()
                .map(|e| issue_at[e.from] + u64::from(e.latency))
                .max()
                .unwrap_or(0)
        };
        // Prefer: issuable now without stall, then tallest critical
        // path, then original order.
        let pick = *remaining
            .iter()
            .min_by_key(|&&i| {
                let stall = ready_time(i).saturating_sub(t);
                (stall, u64::MAX - height[i], i)
            })
            .expect("ready set cannot be empty while nodes remain");
        remaining.retain(|&i| i != pick);
        t = t.max(ready_time(pick));
        issue_at[pick] = t;
        t += u64::from(cost.issue_cycles(&run[pick], None));
        order.push(pick);
        for &(j, _) in &succs[pick] {
            left[j] -= 1;
            if left[j] == 0 {
                remaining.push(j);
            }
        }
    }
    order
}

/// Schedules every straight-line run of `unit` in place, consulting
/// `spec` for custom-instruction signatures. Runs whose scheduled
/// order does not beat the original cost are left untouched.
///
/// Returns the number of runs that were actually reordered.
pub fn schedule_unit(unit: &mut Unit, spec: &SecretSpec, cost: &CostModel) -> usize {
    // Collect maximal runs of consecutive Op items whose instructions
    // neither transfer control nor end a block.
    let mut runs: Vec<(usize, usize)> = Vec::new(); // [start, end) item indices
    let mut start = None;
    for (ix, item) in unit.items.iter().enumerate() {
        let breaks = match item {
            Item::Op { insn, .. } => insn.ends_block() || insn.branch_target().is_some(),
            _ => true,
        };
        match (start, breaks) {
            (None, false) => start = Some(ix),
            (Some(s), true) => {
                runs.push((s, ix));
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        runs.push((s, unit.items.len()));
    }

    let mut reordered = 0;
    for (s, e) in runs {
        if e - s < 2 {
            continue;
        }
        let insns: Vec<Insn> = unit.items[s..e]
            .iter()
            .map(|it| match it {
                Item::Op { insn, .. } => insn.clone(),
                _ => unreachable!("runs contain only ops"),
            })
            .collect();
        let order = schedule_run(&insns, spec, cost);
        let identity: Vec<usize> = (0..insns.len()).collect();
        if order == identity {
            continue;
        }
        let old = order_cost(&insns, &identity, spec, cost);
        let new = order_cost(&insns, &order, spec, cost);
        if new >= old {
            continue;
        }
        let items: Vec<Item> = unit.items[s..e].to_vec();
        for (k, &src) in order.iter().enumerate() {
            unit.items[s + k] = items[src].clone();
        }
        reordered += 1;
    }
    reordered
}

#[cfg(test)]
mod tests {
    use super::*;
    use xr32::config::CpuConfig;

    fn sched(src: &str) -> (Unit, usize) {
        let mut unit = Unit::parse(src).unwrap();
        let spec = SecretSpec::from_source(src).unwrap();
        let cost = CpuConfig::default().cost_model();
        let n = schedule_unit(&mut unit, &spec, &cost);
        (unit, n)
    }

    #[test]
    fn fills_the_load_use_slot() {
        // lw;addc back-to-back stalls one cycle; the independent
        // pointer bumps can hide it.
        let src = "
f:
    lw   a4, a1, 0
    lw   a5, a2, 0
    addc a4, a4, a5
    sw   a4, a0, 0
    addi a1, a1, 4
    addi a2, a2, 4
    ret
";
        let (unit, n) = sched(src);
        assert_eq!(n, 1, "the run must be reordered");
        let ops: Vec<String> = unit
            .items
            .iter()
            .filter_map(|it| match it {
                Item::Op { .. } => Some(it.text()),
                _ => None,
            })
            .collect();
        // The addc must no longer immediately follow the second load.
        let addc = ops.iter().position(|t| t.starts_with("addc")).unwrap();
        assert!(
            ops[addc - 1].starts_with("addi"),
            "a bump should fill the load-use slot: {ops:?}"
        );
        // The store still sees the combine before it.
        let sw = ops.iter().position(|t| t.starts_with("sw")).unwrap();
        assert!(addc < sw);
    }

    #[test]
    fn already_optimal_runs_are_untouched() {
        let src = "
f:
    lw   a4, a1, 0
    lw   a5, a2, 0
    addi a1, a1, 4
    addi a2, a2, 4
    addc a4, a4, a5
    sw   a4, a0, 0
    ret
";
        let (unit, _) = sched(src);
        let cost = CpuConfig::default().cost_model();
        let spec = SecretSpec::from_source(src).unwrap();
        let insns: Vec<Insn> = unit
            .items
            .iter()
            .filter_map(|it| match it {
                Item::Op { insn, .. } => Some(insn.clone()),
                _ => None,
            })
            .collect();
        // Whatever the scheduler did, the cost never regressed the
        // hand-scheduled order.
        let run = &insns[..insns.len() - 1]; // drop ret
        let identity: Vec<usize> = (0..run.len()).collect();
        assert!(order_cost(run, &identity, &spec, &cost) <= 8);
    }

    #[test]
    fn stores_stay_ordered_against_loads() {
        let src = "
f:
    sw   a4, a0, 0
    lw   a5, a0, 0
    add  a6, a5, a5
    ret
";
        let (unit, _) = sched(src);
        let ops: Vec<String> = unit
            .items
            .iter()
            .filter_map(|it| match it {
                Item::Op { .. } => Some(it.text()),
                _ => None,
            })
            .collect();
        let sw = ops.iter().position(|t| t.starts_with("sw")).unwrap();
        let lw = ops.iter().position(|t| t.starts_with("lw")).unwrap();
        assert!(sw < lw, "store/load order must be preserved: {ops:?}");
    }
}
