//! `xopt`: an SSA-lite optimizing rewrite pipeline for XR32 kernel
//! sources, built on `xlint`'s published dataflow facts.
//!
//! The DAC 2002 methodology hand-writes one accelerated kernel library
//! per custom-instruction configuration. This crate generates those
//! variants instead: starting from the *canonical* (base, scalar)
//! kernel source, it
//!
//! 1. builds an SSA-lite view from `xlint` reaching definitions
//!    ([`ssa`]),
//! 2. pattern-matches the kernel's registered
//!    [`kreg::InsnFamilySpec`] loop shape and recovers operand roles
//!    ([`select`]),
//! 3. emits a blocked wide-datapath loop with the canonical body as
//!    scalar tail ([`emit`]),
//! 4. list-schedules straight-line runs against the core's
//!    [`xr32::config::CostModel`] ([`sched`]),
//! 5. cleans up with liveness-backed DCE and a peephole ([`peep`]),
//!    and
//! 6. refuses to admit any variant that fails the constant-time lint
//!    gate or golden-reference verification ([`gate`]).
//!
//! The pipeline's outputs are complete annotated units: they carry the
//! canonical entry/secret annotations plus generated custom-instruction
//! signatures, so the same `xlint` checks that gate hand-written
//! libraries gate generated ones.

use std::fmt;

use kreg::{AccelLevel, KernelDescriptor, KernelId};
use xlint::ir::UnitIr;
use xlint::AnalyzeError;
use xr32::asm::AssembleError;
use xr32::config::CpuConfig;
use xr32::ext::ExtensionSet;

pub mod emit;
pub mod gate;
pub mod peep;
pub mod sched;
pub mod select;
pub mod ssa;
pub mod unit;

pub use gate::{golden_gate, lint_gate, sweep_sizes};
pub use select::{match_pattern, PatternMatch};
pub use ssa::{SsaView, Value};
pub use unit::{Item, Unit};

/// Why the pipeline could not produce (or refused to admit) a variant.
#[derive(Debug)]
pub enum OptError {
    /// The source failed to assemble or analyze.
    Analyze(AnalyzeError),
    /// The kernel has no registered custom-instruction family.
    NoFamily(KernelId),
    /// The kernel has no canonical 32-bit source to rewrite.
    NoCanonical(KernelId),
    /// The kernel's dataflow does not match the family's loop pattern.
    PatternMismatch(String),
    /// No free general register for the blocking threshold.
    NoFreeReg,
    /// The generated variant fired lint errors the canonical source
    /// does not.
    LintRejected {
        /// The fresh findings, rendered.
        findings: Vec<String>,
    },
    /// The generated variant diverged from the golden reference.
    GoldenRejected {
        /// Operand size at which the divergence was observed.
        n: u32,
        /// What diverged.
        detail: String,
    },
    /// A simulation fault while running the golden gate.
    Sim(String),
    /// The construct is outside the rewriter's scope.
    Unsupported(String),
}

impl OptError {
    pub(crate) fn from_assemble(e: AssembleError) -> OptError {
        OptError::Analyze(AnalyzeError::Assemble(e))
    }
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Analyze(e) => write!(f, "analysis failed: {e}"),
            OptError::NoFamily(k) => write!(f, "{k}: no custom-instruction family registered"),
            OptError::NoCanonical(k) => write!(f, "{k}: no canonical source to rewrite"),
            OptError::PatternMismatch(d) => write!(f, "pattern mismatch: {d}"),
            OptError::NoFreeReg => write!(f, "no free register for the blocking threshold"),
            OptError::LintRejected { findings } => {
                write!(f, "lint gate rejected the variant: {}", findings.join("; "))
            }
            OptError::GoldenRejected { n, detail } => {
                write!(f, "golden gate rejected the variant at n={n}: {detail}")
            }
            OptError::Sim(d) => write!(f, "simulation fault: {d}"),
            OptError::Unsupported(d) => write!(f, "unsupported: {d}"),
        }
    }
}

impl std::error::Error for OptError {}

/// One generated, lint-gated kernel variant.
#[derive(Debug, Clone)]
pub struct GeneratedVariant {
    /// The kernel this variant implements.
    pub kernel: KernelId,
    /// The entry label (same as the canonical unit's).
    pub entry: String,
    /// The family level the variant was generated for.
    pub level: AccelLevel,
    /// The family mnemonic root (`add`, `mac`).
    pub family: &'static str,
    /// Cache/report tag (`gen-a{a}m{m}`), distinct from the
    /// hand-written `accel-` tags.
    pub tag: String,
    /// The complete annotated unit source.
    pub source: String,
    /// Straight-line runs the scheduler actually reordered.
    pub scheduled_runs: usize,
    /// Items removed by DCE + peephole.
    pub cleaned: usize,
}

impl GeneratedVariant {
    /// Runs the golden-reference half of the admission gate on this
    /// variant, under the caller's core configuration and custom
    /// instruction set (the half that needs hardware semantics, which
    /// live above this crate).
    ///
    /// # Errors
    ///
    /// See [`gate::golden_gate`].
    pub fn verify_golden(
        &self,
        conv: &kreg::CallConv,
        config: &CpuConfig,
        ext: &ExtensionSet,
    ) -> Result<(), OptError> {
        let lanes = match self.family {
            "mac" => self.level.mac_lanes,
            _ => self.level.add_lanes,
        };
        gate::golden_gate(&self.source, &self.entry, conv, lanes, config, ext)
    }
}

/// Generates the variant of `desc` at `level`, running every rewrite
/// pass and the lint half of the admission gate. The golden half needs
/// the custom instructions' execution semantics, so it is a separate
/// step: [`GeneratedVariant::verify_golden`].
///
/// # Errors
///
/// Any [`OptError`]: unregistered family, missing canonical source,
/// pattern mismatch, or a lint-gate rejection.
pub fn generate(
    desc: &KernelDescriptor,
    level: &AccelLevel,
    config: &CpuConfig,
) -> Result<GeneratedVariant, OptError> {
    let family = desc.family.ok_or(OptError::NoFamily(desc.id))?;
    let canonical =
        kreg::kernels::mpn::canonical_source32(desc.id).ok_or(OptError::NoCanonical(desc.id))?;

    // Passes 1-2: SSA-lite facts + instruction selection.
    let ir = UnitIr::from_source(canonical).map_err(OptError::Analyze)?;
    let matched = select::match_pattern(&ir, desc.entry, family.pattern)?;

    // Pass 3: blocked wide-datapath emission.
    let base = Unit::parse(canonical)?;
    let mut rewritten = emit::emit(&base, &matched, level)?;

    // Pass 4: list scheduling under the core's cost model.
    let spec = xlint::SecretSpec::from_source(&rewritten.print())
        .map_err(|e| OptError::Analyze(AnalyzeError::Spec(e)))?;
    let cost = config.cost_model();
    let scheduled_runs = sched::schedule_unit(&mut rewritten, &spec, &cost);

    // Pass 5: DCE + peephole.
    let cleaned = peep::clean(&mut rewritten)?;

    // Gate (lint half): the variant may not regress a single verdict.
    let source = rewritten.print();
    gate::lint_gate(canonical, &source)?;

    Ok(GeneratedVariant {
        kernel: desc.id,
        entry: desc.entry.to_string(),
        level: *level,
        family: family.family,
        tag: level.generated_tag(),
        source,
        scheduled_runs,
        cleaned,
    })
}

/// Generates every level of `desc`'s family, cheapest first.
///
/// # Errors
///
/// The first failing level's [`OptError`].
pub fn generate_all(
    desc: &KernelDescriptor,
    config: &CpuConfig,
) -> Result<Vec<GeneratedVariant>, OptError> {
    let family = desc.family.ok_or(OptError::NoFamily(desc.id))?;
    family
        .levels
        .iter()
        .map(|level| generate(desc, level, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreg::{id, registry, VariantSource};
    use xr32::asm::assemble;

    fn desc(kid: KernelId) -> &'static KernelDescriptor {
        registry().iter().find(|d| d.id == kid).unwrap()
    }

    #[test]
    fn generates_every_level_for_both_generated_kernels() {
        let config = CpuConfig::default();
        for kid in [id::ADD_N, id::ADDMUL_1] {
            let d = desc(kid);
            assert_eq!(d.variants, VariantSource::Generated);
            let variants = generate_all(d, &config).unwrap();
            assert_eq!(variants.len(), d.family.unwrap().levels.len());
            for v in &variants {
                let prog = assemble(&v.source).unwrap();
                assert!(prog.label(&v.entry).is_some());
                assert!(v.tag.starts_with("gen-a"));
            }
        }
    }

    #[test]
    fn generated_add_n_schedules_its_scalar_tail() {
        let config = CpuConfig::default();
        let d = desc(id::ADD_N);
        let level = d.family.unwrap().levels[0];
        let v = generate(d, &level, &config).unwrap();
        // The canonical body already hides its load-use slots; the
        // emitted unit must still be branch-correct and keep the addc
        // away from its producing loads.
        let tail = v.source.split(".xg_tail:").nth(1).unwrap();
        let addc_pos = tail.find("addc").unwrap();
        let before = &tail[..addc_pos];
        assert!(
            before.matches("lw").count() == 2,
            "tail keeps both scalar loads before the combine:\n{}",
            v.source
        );
    }

    #[test]
    fn hand_written_kernels_refuse_generation() {
        let config = CpuConfig::default();
        let d = desc(id::SUB_N);
        assert_eq!(d.variants, VariantSource::HandWritten);
        // sub_n has no registered family, so generation refuses.
        let err = generate_all(d, &config).unwrap_err();
        assert!(matches!(err, OptError::NoFamily(_)), "{err}");
    }
}
