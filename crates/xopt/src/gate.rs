//! The admission gate: no generated variant reaches a measurement
//! curve without passing the constant-time lints AND golden-reference
//! verification on a real core.
//!
//! The lint gate is differential: the generated unit may not fire any
//! error rule the canonical source does not already fire (canonical
//! kernels are clean, so in practice the generated unit must be clean
//! too — but the differential form also keeps the gate meaningful for
//! sources that carry waived findings). The golden gate assembles the
//! variant standalone, runs it on a [`Cpu`] configured with the
//! caller's custom-instruction extensions, and compares memory and the
//! return register against the registry's golden-reference function
//! across a size sweep that straddles every blocking boundary.

use std::collections::BTreeSet;

use kreg::CallConv;
use xr32::asm::assemble;
use xr32::config::CpuConfig;
use xr32::cpu::Cpu;
use xr32::ext::ExtensionSet;

use crate::OptError;

/// Operand memory map of the golden runs (mirrors the ISS harness:
/// result, first and second operand regions, far enough apart that a
/// stray write cannot alias another operand).
const RP_ADDR: u32 = 0x1000;
const AP_ADDR: u32 = 0x4_0000;
const BP_ADDR: u32 = 0x8_0000;

/// Checks that `generated` does not fire any error rule `canonical`
/// does not already fire.
///
/// # Errors
///
/// [`OptError::LintRejected`] listing the fresh findings, or
/// [`OptError::Analyze`] if either source fails to analyze.
pub fn lint_gate(canonical: &str, generated: &str) -> Result<(), OptError> {
    let base = xlint::analyze_source(canonical).map_err(OptError::Analyze)?;
    let genr = xlint::analyze_source(generated).map_err(OptError::Analyze)?;
    let waived: BTreeSet<_> = base.errors().map(|f| f.rule).collect();
    let fresh: Vec<String> = genr
        .errors()
        .filter(|f| !waived.contains(&f.rule))
        .map(|f| f.to_string())
        .collect();
    if fresh.is_empty() {
        Ok(())
    } else {
        Err(OptError::LintRejected { findings: fresh })
    }
}

/// The operand-size sweep for `lanes`-limb blocking: the degenerate
/// sizes, both sides of each block boundary, and a multi-block run.
pub fn sweep_sizes(lanes: u32) -> Vec<u32> {
    let mut sizes: Vec<u32> = [
        1,
        2,
        lanes.saturating_sub(1),
        lanes,
        lanes + 1,
        2 * lanes,
        2 * lanes + 1,
        32,
    ]
    .into_iter()
    .filter(|&n| n >= 1)
    .collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

fn lcg(x: &mut u64) -> u32 {
    *x = x
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    (*x >> 32) as u32
}

fn limbs(n: usize, seed: &mut u64) -> Vec<u32> {
    (0..n).map(|_| lcg(seed)).collect()
}

struct Run {
    result: Vec<u32>,
    ret: u32,
}

fn run_variant(
    program: &xr32::asm::Program,
    entry: &str,
    config: &CpuConfig,
    ext: &ExtensionSet,
    args: &[u32],
    preload: &[(u32, &[u32])],
    result_len: usize,
) -> Result<Run, OptError> {
    let mut cpu = Cpu::with_extensions(config.clone(), ext.clone());
    // Golden admission compares architectural results only, so variant
    // sweeps ride the pre-decoded fast path; timing is measured elsewhere.
    cpu.set_fidelity(xr32::Fidelity::Fast);
    cpu.set_fuel(u64::MAX);
    for &(addr, data) in preload {
        for (i, &w) in data.iter().enumerate() {
            cpu.mem_mut()
                .store_u32(addr + 4 * i as u32, w)
                .map_err(|e| OptError::Sim(format!("preload at {addr:#x}: {e:?}")))?;
        }
    }
    cpu.call(program, entry, args)
        .map_err(|e| OptError::Sim(format!("{entry}: {e}")))?;
    let result = (0..result_len)
        .map(|i| {
            cpu.mem()
                .load_u32(RP_ADDR + 4 * i as u32)
                .map_err(|e| OptError::Sim(format!("readback: {e:?}")))
        })
        .collect::<Result<_, _>>()?;
    Ok(Run {
        result,
        ret: cpu.reg(0),
    })
}

/// Verifies `source`'s `entry` against the calling convention's golden
/// reference across [`sweep_sizes`]`(lanes)`.
///
/// # Errors
///
/// [`OptError::GoldenRejected`] on the first divergence,
/// [`OptError::Sim`] on a simulation fault, and
/// [`OptError::Unsupported`] for calling conventions without a vector
/// memory interface (nothing the blocking rewrite applies to).
pub fn golden_gate(
    source: &str,
    entry: &str,
    conv: &CallConv,
    lanes: u32,
    config: &CpuConfig,
    ext: &ExtensionSet,
) -> Result<(), OptError> {
    let program = assemble(source).map_err(OptError::from_assemble)?;
    let mut seed = 0x9e37_79b9_7f4a_7c15u64 ^ u64::from(lanes);
    for n in sweep_sizes(lanes) {
        let nn = n as usize;
        match conv {
            CallConv::VecVec { golden32, .. } => {
                let a = limbs(nn, &mut seed);
                let b = limbs(nn, &mut seed);
                let mut want = vec![0u32; nn];
                let carry = golden32(&mut want, &a, &b);
                let got = run_variant(
                    &program,
                    entry,
                    config,
                    ext,
                    &[RP_ADDR, AP_ADDR, BP_ADDR, n],
                    &[(AP_ADDR, &a), (BP_ADDR, &b)],
                    nn,
                )?;
                if got.result != want || got.ret != u32::from(carry) {
                    return Err(OptError::GoldenRejected {
                        n,
                        detail: format!(
                            "{entry}: ret {} (want {}), limbs diverge at {:?}",
                            got.ret,
                            u32::from(carry),
                            first_diff(&got.result, &want)
                        ),
                    });
                }
            }
            CallConv::VecScalar {
                accumulate,
                golden32,
                ..
            } => {
                let a = limbs(nn, &mut seed);
                let b = lcg(&mut seed);
                let r0 = if *accumulate {
                    limbs(nn, &mut seed)
                } else {
                    vec![0u32; nn]
                };
                let mut want = r0.clone();
                let carry = golden32(&mut want, &a, b);
                let got = run_variant(
                    &program,
                    entry,
                    config,
                    ext,
                    &[RP_ADDR, AP_ADDR, n, b],
                    &[(AP_ADDR, &a), (RP_ADDR, &r0)],
                    nn,
                )?;
                if got.result != want || got.ret != carry {
                    return Err(OptError::GoldenRejected {
                        n,
                        detail: format!(
                            "{entry}: ret {} (want {carry}), limbs diverge at {:?}",
                            got.ret,
                            first_diff(&got.result, &want)
                        ),
                    });
                }
            }
            _ => {
                return Err(OptError::Unsupported(format!(
                    "{entry}: golden gate supports vector-memory conventions only"
                )))
            }
        }
    }
    Ok(())
}

fn first_diff(got: &[u32], want: &[u32]) -> Option<(usize, u32, u32)> {
    got.iter()
        .zip(want)
        .enumerate()
        .find(|(_, (g, w))| g != w)
        .map(|(i, (g, w))| (i, *g, *w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kreg::{id, kernels::mpn, registry};

    #[test]
    fn sweep_straddles_block_boundaries() {
        assert_eq!(sweep_sizes(4), vec![1, 2, 3, 4, 5, 8, 9, 32]);
        assert_eq!(sweep_sizes(1), vec![1, 2, 3, 32]);
    }

    #[test]
    fn lint_gate_accepts_the_canonical_source_itself() {
        let src = mpn::canonical_source32(id::ADD_N).unwrap();
        lint_gate(src, src).unwrap();
    }

    #[test]
    fn lint_gate_rejects_a_fresh_secret_leak() {
        let canonical = mpn::canonical_source32(id::ADDMUL_1).unwrap();
        // A rewrite that branches on the secret multiplier: must be
        // refused even though it assembles fine.
        let leaky = "
;! entry mpn_addmul_1 inputs=a0-a3 secret=a3 secret-ptr=a0,a1
mpn_addmul_1:
    movi a6, 0
    beq  a3, a6, .zero
    movi a0, 1
    ret
.zero:
    movi a0, 0
    ret
";
        let err = lint_gate(canonical, leaky).unwrap_err();
        assert!(matches!(err, OptError::LintRejected { .. }), "{err}");
    }

    #[test]
    fn golden_gate_passes_the_canonical_kernels() {
        for kid in [id::ADD_N, id::ADDMUL_1] {
            let desc = registry().iter().find(|d| d.id == kid).unwrap();
            let src = mpn::canonical_source32(kid).unwrap();
            golden_gate(
                src,
                desc.entry,
                &desc.conv,
                1,
                &CpuConfig::default(),
                &ExtensionSet::new(),
            )
            .unwrap();
        }
    }

    #[test]
    fn golden_gate_catches_a_wrong_kernel() {
        let desc = registry().iter().find(|d| d.id == id::ADD_N).unwrap();
        // "add" that drops the carry chain: wrong for carrying inputs.
        let wrong = "
;! entry mpn_add_n inputs=a0-a3 secret-ptr=a1,a2
mpn_add_n:
    movi a6, 0
.lp:
    lw   a4, a1, 0
    lw   a5, a2, 0
    add  a4, a4, a5
    sw   a4, a0, 0
    addi a0, a0, 4
    addi a1, a1, 4
    addi a2, a2, 4
    addi a3, a3, -1
    bne  a3, a6, .lp
    movi a0, 0
    ret
";
        let err = golden_gate(
            wrong,
            desc.entry,
            &desc.conv,
            1,
            &CpuConfig::default(),
            &ExtensionSet::new(),
        )
        .unwrap_err();
        assert!(matches!(err, OptError::GoldenRejected { .. }), "{err}");
    }
}
