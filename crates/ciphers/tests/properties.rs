//! Property-based tests for the symmetric algorithms.

use ciphers::modes;
use ciphers::{Aes, BlockCipher, Des, Sha1, TripleDes};
use proptest::prelude::*;

proptest! {
    #[test]
    fn des_roundtrips(key in any::<u64>(), block in any::<u64>()) {
        let des = Des::new(key.to_be_bytes());
        prop_assert_eq!(des.decrypt_u64(des.encrypt_u64(block)), block);
    }

    #[test]
    fn des_complementation(key in any::<u64>(), block in any::<u64>()) {
        let c = Des::new(key.to_be_bytes()).encrypt_u64(block);
        let cc = Des::new((!key).to_be_bytes()).encrypt_u64(!block);
        prop_assert_eq!(cc, !c);
    }

    #[test]
    fn tdes_roundtrips_and_degenerates(k1 in any::<u64>(), k2 in any::<u64>(), block in any::<u64>()) {
        let tdes = TripleDes::new(k1.to_be_bytes(), k2.to_be_bytes(), k1.to_be_bytes());
        prop_assert_eq!(tdes.decrypt_u64(tdes.encrypt_u64(block)), block);
        let same = TripleDes::new(k1.to_be_bytes(), k1.to_be_bytes(), k1.to_be_bytes());
        let des = Des::new(k1.to_be_bytes());
        prop_assert_eq!(same.encrypt_u64(block), des.encrypt_u64(block));
    }

    #[test]
    fn aes_roundtrips_all_key_sizes(
        key in prop::collection::vec(any::<u8>(), 32),
        block in any::<[u8; 16]>(),
    ) {
        for len in [16usize, 24, 32] {
            let aes = Aes::new(&key[..len]);
            let mut b = block;
            aes.encrypt_block(&mut b);
            prop_assert_ne!(b, block);
            aes.decrypt_block(&mut b);
            prop_assert_eq!(b, block);
        }
    }

    #[test]
    fn aes_blocks_differ_under_different_keys(block in any::<[u8; 16]>(), k in any::<u8>()) {
        let a = Aes::new(&[k; 16]);
        let b = Aes::new(&[k.wrapping_add(1); 16]);
        let mut x = block;
        let mut y = block;
        a.encrypt_block(&mut x);
        b.encrypt_block(&mut y);
        prop_assert_ne!(x, y);
    }

    #[test]
    fn cbc_roundtrips_any_length(
        data in prop::collection::vec(any::<u8>(), 0..200),
        key in any::<[u8; 16]>(),
        iv in any::<[u8; 16]>(),
    ) {
        let aes = Aes::new_128(&key);
        let ct = modes::cbc_encrypt(&aes, &iv, &data).expect("iv is block sized");
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > data.len());
        let pt = modes::cbc_decrypt(&aes, &iv, &ct).expect("valid ciphertext");
        prop_assert_eq!(pt, data);
    }

    #[test]
    fn ctr_preserves_length_and_roundtrips(
        data in prop::collection::vec(any::<u8>(), 0..200),
        key in any::<[u8; 16]>(),
        nonce in any::<[u8; 16]>(),
    ) {
        let aes = Aes::new_128(&key);
        let ct = modes::ctr_xcrypt(&aes, &nonce, &data).expect("nonce sized");
        prop_assert_eq!(ct.len(), data.len());
        let pt = modes::ctr_xcrypt(&aes, &nonce, &ct).expect("nonce sized");
        prop_assert_eq!(pt, data);
    }

    #[test]
    fn pkcs7_roundtrips(data in prop::collection::vec(any::<u8>(), 0..100), block in 1usize..32) {
        let padded = modes::pad_pkcs7(&data, block);
        prop_assert_eq!(padded.len() % block, 0);
        let unpadded = modes::unpad_pkcs7(&padded, block).expect("fresh padding is valid");
        prop_assert_eq!(unpadded, data);
    }

    #[test]
    fn sha1_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..500),
        split in any::<prop::sample::Index>(),
    ) {
        let oneshot = Sha1::digest(&data);
        let mid = split.index(data.len() + 1);
        let mut h = Sha1::new();
        h.update(&data[..mid.min(data.len())]);
        h.update(&data[mid.min(data.len())..]);
        prop_assert_eq!(h.finalize(), oneshot);
    }

    #[test]
    fn sha1_distinguishes_inputs(data in prop::collection::vec(any::<u8>(), 1..100)) {
        let mut flipped = data.clone();
        flipped[0] ^= 1;
        prop_assert_ne!(Sha1::digest(&data), Sha1::digest(&flipped));
    }
}
