//! Private-key cryptographic algorithms for the security processing
//! platform.
//!
//! Implements the symmetric algorithms evaluated in the DAC 2002 paper
//! (Table 1): [`des`] (FIPS 46-3), [`tdes`] (triple DES, EDE), and
//! [`aes`] (FIPS 197), plus [`sha1`] (FIPS 180-1) for the unaccelerated
//! "miscellaneous" share of SSL processing, block-cipher [`modes`], and
//! the [`bits`] permutation helpers the ciphers (and the XR32
//! bit-permutation custom instructions) are built on.
//!
//! # Examples
//!
//! ```
//! use ciphers::{BlockCipher, aes::Aes};
//!
//! let key = [0u8; 16];
//! let aes = Aes::new_128(&key);
//! let mut block = *b"hello aes 128!!!";
//! let original = block;
//! aes.encrypt_block(&mut block);
//! assert_ne!(block, original);
//! aes.decrypt_block(&mut block);
//! assert_eq!(block, original);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aes;
pub mod bits;
pub mod des;
pub mod modes;
pub mod sha1;
pub mod tdes;

pub use aes::Aes;
pub use des::Des;
pub use sha1::Sha1;
pub use tdes::TripleDes;

/// A block cipher operating in place on fixed-size blocks.
///
/// Object-safe so the platform's layered API can dispatch over algorithms
/// selected at run time.
pub trait BlockCipher {
    /// Block size in bytes (8 for DES/3DES, 16 for AES).
    fn block_size(&self) -> usize;

    /// Encrypts one block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != self.block_size()`.
    fn encrypt_block(&self, block: &mut [u8]);

    /// Decrypts one block in place.
    ///
    /// # Panics
    ///
    /// Panics if `block.len() != self.block_size()`.
    fn decrypt_block(&self, block: &mut [u8]);
}
