//! SHA-1 (FIPS 180-1).
//!
//! SSL record processing MACs every record; in the paper's Fig. 8
//! workload breakdown this hashing belongs to the *miscellaneous* share
//! that the custom instructions do **not** accelerate — the Amdahl term
//! that caps large-transaction speedup at ~3×.

/// SHA-1 digest size in bytes.
pub const DIGEST_SIZE: usize = 20;

/// Streaming SHA-1 hasher.
///
/// # Examples
///
/// ```
/// use ciphers::Sha1;
///
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// let digest = h.finalize();
/// assert_eq!(digest[..4], [0xa9, 0x99, 0x3e, 0x36]);
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

/// The SHA-1 compression function: folds one 64-byte block into the
/// state. Public so the XR32 assembly kernel can be validated against it.
pub fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 80];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes(chunk.try_into().expect("chunked by 4"));
    }
    for i in 16..80 {
        w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
    }
    let [mut a, mut b, mut c, mut d, mut e] = *state;
    for (i, &wi) in w.iter().enumerate() {
        let (f, k) = match i {
            0..=19 => ((b & c) | ((!b) & d), 0x5a82_7999),
            20..=39 => (b ^ c ^ d, 0x6ed9_eba1),
            40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
            _ => (b ^ c ^ d, 0xca62_c1d6),
        };
        let t = a
            .rotate_left(5)
            .wrapping_add(f)
            .wrapping_add(e)
            .wrapping_add(k)
            .wrapping_add(wi);
        e = d;
        d = c;
        c = b.rotate_left(30);
        b = a;
        a = t;
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

impl Sha1 {
    /// Creates a hasher in the FIPS 180-1 initial state.
    pub fn new() -> Self {
        Sha1 {
            state: [
                0x6745_2301,
                0xefcd_ab89,
                0x98ba_dcfe,
                0x1032_5476,
                0xc3d2_e1f0,
            ],
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs input bytes.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len += data.len() as u64;
        if self.buffer_len > 0 {
            let take = data.len().min(64 - self.buffer_len);
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                compress(&mut self.state, &block);
                self.buffer_len = 0;
            }
            if data.is_empty() {
                return; // everything absorbed into the partial buffer
            }
        }
        while data.len() >= 64 {
            compress(
                &mut self.state,
                data[..64].try_into().expect("length checked"),
            );
            data = &data[64..];
        }
        self.buffer[..data.len()].copy_from_slice(data);
        self.buffer_len = data.len();
    }

    /// Pads, finishes, and returns the 20-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_SIZE] {
        let bit_len = self.total_len * 8;
        self.update(&[0x80]);
        while self.buffer_len != 56 {
            self.update(&[0]);
        }
        // Length field must not recount into total_len; write directly.
        self.buffer[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buffer;
        compress(&mut self.state, &block);
        let mut out = [0u8; DIGEST_SIZE];
        for (i, s) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&s.to_be_bytes());
        }
        out
    }

    /// One-shot convenience digest.
    pub fn digest(data: &[u8]) -> [u8; DIGEST_SIZE] {
        let mut h = Sha1::new();
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &[u8]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn fips_vector_two_blocks() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha1::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            hex(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let oneshot = Sha1::digest(&data);
        for chunk in [1usize, 3, 63, 64, 65, 127] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk={chunk}");
        }
    }

    #[test]
    fn exact_block_boundary_padding() {
        // 55, 56 and 64 byte messages exercise all padding branches.
        for n in [55usize, 56, 63, 64, 119, 120] {
            let data = vec![0xabu8; n];
            let d1 = Sha1::digest(&data);
            let mut h = Sha1::new();
            h.update(&data[..n / 2]);
            h.update(&data[n / 2..]);
            assert_eq!(h.finalize(), d1, "n={n}");
        }
    }
}
