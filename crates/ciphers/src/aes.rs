//! The Advanced Encryption Standard (FIPS 197).
//!
//! Supports AES-128/192/256. The S-box is derived algebraically (GF(2⁸)
//! inversion plus the affine transform) rather than transcribed, so the
//! table is self-constructing; known-answer tests pin it to FIPS 197.
//! Round primitives ([`sub_bytes`], [`shift_rows`], [`mix_columns`], …)
//! are public because the platform's XR32 `aes_tbox` custom instruction
//! is validated against them.

use crate::BlockCipher;
use std::sync::OnceLock;

/// Multiplies two elements of GF(2⁸) modulo the AES polynomial
/// `x⁸ + x⁴ + x³ + x + 1` (0x11b).
pub fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    p
}

fn sbox_tables() -> &'static ([u8; 256], [u8; 256]) {
    static TABLES: OnceLock<([u8; 256], [u8; 256])> = OnceLock::new();
    TABLES.get_or_init(|| {
        // GF(2^8) inverses by exhaustive search (one-time cost).
        let mut inv = [0u8; 256];
        for x in 1..=255u8 {
            for y in 1..=255u8 {
                if gmul(x, y) == 1 {
                    inv[x as usize] = y;
                    break;
                }
            }
        }
        let mut sbox = [0u8; 256];
        let mut inv_sbox = [0u8; 256];
        for x in 0..=255u8 {
            let b = inv[x as usize];
            let s = b
                ^ b.rotate_left(1)
                ^ b.rotate_left(2)
                ^ b.rotate_left(3)
                ^ b.rotate_left(4)
                ^ 0x63;
            sbox[x as usize] = s;
            inv_sbox[s as usize] = x;
        }
        (sbox, inv_sbox)
    })
}

/// The AES S-box value for `x`.
pub fn sbox(x: u8) -> u8 {
    sbox_tables().0[x as usize]
}

/// The inverse AES S-box value for `x`.
pub fn inv_sbox(x: u8) -> u8 {
    sbox_tables().1[x as usize]
}

/// Applies SubBytes to a state (16 bytes, `state[r + 4c]` layout).
pub fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = sbox(*b);
    }
}

/// Applies InvSubBytes.
pub fn inv_sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = inv_sbox(*b);
    }
}

/// Applies ShiftRows: row `r` rotates left by `r`.
pub fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * c] = s[r + 4 * ((c + r) % 4)];
        }
    }
}

/// Applies InvShiftRows.
pub fn inv_shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[r + 4 * ((c + r) % 4)] = s[r + 4 * c];
        }
    }
}

/// Applies MixColumns.
pub fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[1 + 4 * c],
            state[2 + 4 * c],
            state[3 + 4 * c],
        ];
        state[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        state[1 + 4 * c] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        state[2 + 4 * c] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        state[3 + 4 * c] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

/// Applies InvMixColumns.
pub fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[4 * c],
            state[1 + 4 * c],
            state[2 + 4 * c],
            state[3 + 4 * c],
        ];
        state[4 * c] = gmul(col[0], 14) ^ gmul(col[1], 11) ^ gmul(col[2], 13) ^ gmul(col[3], 9);
        state[1 + 4 * c] = gmul(col[0], 9) ^ gmul(col[1], 14) ^ gmul(col[2], 11) ^ gmul(col[3], 13);
        state[2 + 4 * c] = gmul(col[0], 13) ^ gmul(col[1], 9) ^ gmul(col[2], 14) ^ gmul(col[3], 11);
        state[3 + 4 * c] = gmul(col[0], 11) ^ gmul(col[1], 13) ^ gmul(col[2], 9) ^ gmul(col[3], 14);
    }
}

/// XORs a round key (as four words) into the state.
pub fn add_round_key(state: &mut [u8; 16], round_key: &[u32; 4]) {
    for c in 0..4 {
        let w = round_key[c].to_be_bytes();
        for r in 0..4 {
            state[r + 4 * c] ^= w[r];
        }
    }
}

/// AES key size variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeySize {
    /// 128-bit key, 10 rounds.
    Aes128,
    /// 192-bit key, 12 rounds.
    Aes192,
    /// 256-bit key, 14 rounds.
    Aes256,
}

impl KeySize {
    /// Key length in 32-bit words (Nk).
    pub fn nk(self) -> usize {
        match self {
            KeySize::Aes128 => 4,
            KeySize::Aes192 => 6,
            KeySize::Aes256 => 8,
        }
    }

    /// Number of rounds (Nr).
    pub fn rounds(self) -> usize {
        match self {
            KeySize::Aes128 => 10,
            KeySize::Aes192 => 12,
            KeySize::Aes256 => 14,
        }
    }
}

/// An expanded AES key schedule.
///
/// # Examples
///
/// ```
/// use ciphers::aes::Aes;
///
/// // FIPS 197 Appendix C.1 known-answer test.
/// let key: Vec<u8> = (0..16).collect();
/// let aes = Aes::new_128(key[..].try_into().expect("16 bytes"));
/// let mut block = [0u8; 16];
/// for (i, b) in block.iter_mut().enumerate() {
///     *b = (i as u8) * 0x11;
/// }
/// aes.encrypt_block16(&mut block);
/// assert_eq!(block[0], 0x69);
/// assert_eq!(block[15], 0x5a);
/// ```
#[derive(Debug, Clone)]
pub struct Aes {
    round_keys: Vec<[u32; 4]>,
    size: KeySize,
}

impl Aes {
    /// Expands a 128-bit key.
    pub fn new_128(key: &[u8; 16]) -> Self {
        Self::expand(key, KeySize::Aes128)
    }

    /// Expands a 192-bit key.
    pub fn new_192(key: &[u8; 24]) -> Self {
        Self::expand(key, KeySize::Aes192)
    }

    /// Expands a 256-bit key.
    pub fn new_256(key: &[u8; 32]) -> Self {
        Self::expand(key, KeySize::Aes256)
    }

    /// Expands a key whose length selects the variant (16, 24 or 32
    /// bytes).
    ///
    /// # Panics
    ///
    /// Panics if the key length is not 16, 24 or 32 bytes.
    pub fn new(key: &[u8]) -> Self {
        let size = match key.len() {
            16 => KeySize::Aes128,
            24 => KeySize::Aes192,
            32 => KeySize::Aes256,
            n => panic!("invalid AES key length {n}; expected 16, 24 or 32"),
        };
        Self::expand(key, size)
    }

    fn expand(key: &[u8], size: KeySize) -> Self {
        let nk = size.nk();
        let nr = size.rounds();
        debug_assert_eq!(key.len(), 4 * nk);
        let mut w = vec![0u32; 4 * (nr + 1)];
        for (i, wi) in w.iter_mut().take(nk).enumerate() {
            *wi = u32::from_be_bytes(key[4 * i..4 * i + 4].try_into().expect("chunked"));
        }
        let mut rcon = 1u8;
        for i in nk..4 * (nr + 1) {
            let mut t = w[i - 1];
            if i % nk == 0 {
                t = sub_word(t.rotate_left(8)) ^ ((rcon as u32) << 24);
                rcon = gmul(rcon, 2);
            } else if nk > 6 && i % nk == 4 {
                t = sub_word(t);
            }
            w[i] = w[i - nk] ^ t;
        }
        let round_keys = w
            .chunks_exact(4)
            .map(|c| [c[0], c[1], c[2], c[3]])
            .collect();
        Aes { round_keys, size }
    }

    /// The key size variant of this schedule.
    pub fn key_size(&self) -> KeySize {
        self.size
    }

    /// The expanded round keys (Nr + 1 entries of four words).
    pub fn round_keys(&self) -> &[[u32; 4]] {
        &self.round_keys
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block16(&self, block: &mut [u8; 16]) {
        let mut state = to_state(block);
        let nr = self.size.rounds();
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..nr {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[nr]);
        from_state(&state, block);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block16(&self, block: &mut [u8; 16]) {
        let mut state = to_state(block);
        let nr = self.size.rounds();
        add_round_key(&mut state, &self.round_keys[nr]);
        for round in (1..nr).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        from_state(&state, block);
    }
}

fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([sbox(b[0]), sbox(b[1]), sbox(b[2]), sbox(b[3])])
}

// FIPS 197 fills the state column by column (state[r][c] = in[r + 4c]),
// which with the flat `r + 4c` layout used here is exactly input order.
fn to_state(block: &[u8; 16]) -> [u8; 16] {
    *block
}

fn from_state(state: &[u8; 16], block: &mut [u8; 16]) {
    *block = *state;
}

impl BlockCipher for Aes {
    fn block_size(&self) -> usize {
        16
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES blocks are 16 bytes");
        let mut b: [u8; 16] = block.try_into().expect("length checked");
        self.encrypt_block16(&mut b);
        block.copy_from_slice(&b);
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 16, "AES blocks are 16 bytes");
        let mut b: [u8; 16] = block.try_into().expect("length checked");
        self.decrypt_block16(&mut b);
        block.copy_from_slice(&b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        assert_eq!(sbox(0x00), 0x63);
        assert_eq!(sbox(0x01), 0x7c);
        assert_eq!(sbox(0x53), 0xed);
        assert_eq!(sbox(0xff), 0x16);
        for x in 0..=255u8 {
            assert_eq!(inv_sbox(sbox(x)), x);
        }
    }

    #[test]
    fn gmul_known_products() {
        assert_eq!(gmul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gmul(0x57, 0x13), 0xfe);
        assert_eq!(gmul(1, 0xab), 0xab);
        assert_eq!(gmul(0, 0xab), 0);
    }

    #[test]
    fn fips197_appendix_c1_aes128() {
        let key: Vec<u8> = (0..16).collect();
        let aes = Aes::new_128(key[..].try_into().unwrap());
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block16(&mut block);
        assert_eq!(block.to_vec(), hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        aes.decrypt_block16(&mut block);
        assert_eq!(block.to_vec(), hex("00112233445566778899aabbccddeeff"));
    }

    #[test]
    fn fips197_appendix_c2_aes192() {
        let key: Vec<u8> = (0..24).collect();
        let aes = Aes::new_192(key[..].try_into().unwrap());
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block16(&mut block);
        assert_eq!(block.to_vec(), hex("dda97ca4864cdfe06eaf70a0ec0d7191"));
    }

    #[test]
    fn fips197_appendix_c3_aes256() {
        let key: Vec<u8> = (0..32).collect();
        let aes = Aes::new_256(key[..].try_into().unwrap());
        let mut block: [u8; 16] = hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        aes.encrypt_block16(&mut block);
        assert_eq!(block.to_vec(), hex("8ea2b7ca516745bfeafc49904b496089"));
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key);
        let mut block: [u8; 16] = hex("3243f6a8885a308d313198a2e0370734").try_into().unwrap();
        aes.encrypt_block16(&mut block);
        assert_eq!(block.to_vec(), hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn key_expansion_first_words_fips_a1() {
        // FIPS 197 Appendix A.1, w[4] and w[43].
        let key = hex("2b7e151628aed2a6abf7158809cf4f3c");
        let aes = Aes::new(&key);
        assert_eq!(aes.round_keys()[1][0], 0xa0fafe17);
        assert_eq!(aes.round_keys()[10][3], 0xb6630ca6);
    }

    #[test]
    fn round_primitives_invert() {
        let mut state: [u8; 16] = hex("00102030405060708090a0b0c0d0e0f0").try_into().unwrap();
        let orig = state;
        shift_rows(&mut state);
        inv_shift_rows(&mut state);
        assert_eq!(state, orig);
        mix_columns(&mut state);
        inv_mix_columns(&mut state);
        assert_eq!(state, orig);
        sub_bytes(&mut state);
        inv_sub_bytes(&mut state);
        assert_eq!(state, orig);
    }

    #[test]
    #[should_panic(expected = "invalid AES key length")]
    fn bad_key_length_panics() {
        let _ = Aes::new(&[0u8; 10]);
    }

    #[test]
    fn trait_roundtrip_all_sizes() {
        use crate::BlockCipher;
        for key_len in [16usize, 24, 32] {
            let key: Vec<u8> = (0..key_len as u8).map(|i| i.wrapping_mul(37)).collect();
            let aes = Aes::new(&key);
            let mut block = *b"0123456789abcdef";
            aes.encrypt_block(&mut block);
            assert_ne!(&block, b"0123456789abcdef");
            aes.decrypt_block(&mut block);
            assert_eq!(&block, b"0123456789abcdef");
        }
    }
}
