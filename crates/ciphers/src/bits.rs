//! Bit-permutation helpers.
//!
//! DES is dominated by bit permutations — the operation class that maps
//! worst onto a 32-bit RISC ISA and best onto custom hardware (cf. the
//! bit-permutation instructions of Shi & Lee cited by the paper). These
//! helpers use FIPS-style numbering: **bit 1 is the most significant bit**
//! of the `width`-bit value.

/// Applies a FIPS-style permutation table to the top `in_width` bits of
/// `input`, producing a `table.len()`-bit output (left-aligned in the
/// returned `u64`'s low `table.len()` bits).
///
/// `table[i]` gives the 1-based source bit (MSB = 1) for output bit
/// `i + 1`.
///
/// # Examples
///
/// ```
/// use ciphers::bits::permute;
///
/// // Swap the two halves of a 4-bit value: output bits take source
/// // bits 3,4,1,2.
/// let out = permute(0b1001, 4, &[3, 4, 1, 2]);
/// assert_eq!(out, 0b0110);
/// ```
///
/// # Panics
///
/// Panics if any table entry is 0 or exceeds `in_width`, or if
/// `in_width`/`table.len()` exceed 64.
pub fn permute(input: u64, in_width: u32, table: &[u8]) -> u64 {
    assert!(in_width <= 64);
    assert!(table.len() <= 64);
    let mut out = 0u64;
    for &src in table {
        assert!(
            src >= 1 && (src as u32) <= in_width,
            "bad permutation entry"
        );
        let bit = (input >> (in_width - src as u32)) & 1;
        out = (out << 1) | bit;
    }
    out
}

/// Rotates the low `width` bits of `v` left by `n` (used by the DES key
/// schedule on 28-bit register halves).
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds 63, or if `n >= width`.
pub fn rotl(v: u64, width: u32, n: u32) -> u64 {
    assert!((1..=63).contains(&width));
    assert!(n < width);
    let mask = (1u64 << width) - 1;
    ((v << n) | (v >> (width - n))) & mask
}

/// Splits a `width`-bit value into two `width/2`-bit halves `(hi, lo)`.
///
/// # Panics
///
/// Panics if `width` is odd or exceeds 64.
pub fn split(v: u64, width: u32) -> (u64, u64) {
    assert!(width.is_multiple_of(2) && width <= 64);
    let half = width / 2;
    let mask = if half == 64 {
        u64::MAX
    } else {
        (1u64 << half) - 1
    };
    ((v >> half) & mask, v & mask)
}

/// Joins two `width/2`-bit halves back into a `width`-bit value.
///
/// # Panics
///
/// Panics if `width` is odd or exceeds 64.
pub fn join(hi: u64, lo: u64, width: u32) -> u64 {
    assert!(width.is_multiple_of(2) && width <= 64);
    let half = width / 2;
    let mask = if half == 64 {
        u64::MAX
    } else {
        (1u64 << half) - 1
    };
    ((hi & mask) << half) | (lo & mask)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_permutation() {
        let table: Vec<u8> = (1..=16).collect();
        assert_eq!(permute(0xbeef, 16, &table), 0xbeef);
    }

    #[test]
    fn reverse_permutation() {
        let table: Vec<u8> = (1..=8).rev().collect();
        assert_eq!(permute(0b1000_0001, 8, &table), 0b1000_0001);
        assert_eq!(permute(0b1100_0000, 8, &table), 0b0000_0011);
    }

    #[test]
    fn permutation_then_inverse_is_identity() {
        let table = [3u8, 1, 4, 2];
        // inverse: output bit of `table` position.
        let mut inv = [0u8; 4];
        for (i, &t) in table.iter().enumerate() {
            inv[(t - 1) as usize] = (i + 1) as u8;
        }
        for v in 0..16u64 {
            let p = permute(v, 4, &table);
            assert_eq!(permute(p, 4, &inv), v);
        }
    }

    #[test]
    fn expansion_tables_duplicate_bits() {
        // A 2-bit input expanded to 4 bits by repeating each bit.
        let out = permute(0b10, 2, &[1, 1, 2, 2]);
        assert_eq!(out, 0b1100);
    }

    #[test]
    fn rotl_28_wraps() {
        let v = 0x8000001u64; // bit 28 and bit 1 set
        assert_eq!(rotl(v, 28, 1), 0x3);
        assert_eq!(rotl(v, 28, 2), 0x6);
    }

    #[test]
    fn split_join_roundtrip() {
        let v = 0x0123_4567_89ab_cdefu64;
        let (hi, lo) = split(v, 64);
        assert_eq!(join(hi, lo, 64), v);
        let (hi, lo) = split(0xabcdef, 24);
        assert_eq!(hi, 0xabc);
        assert_eq!(lo, 0xdef);
        assert_eq!(join(hi, lo, 24), 0xabcdef);
    }

    #[test]
    #[should_panic(expected = "bad permutation entry")]
    fn out_of_range_entry_panics() {
        let _ = permute(0, 4, &[5]);
    }
}
