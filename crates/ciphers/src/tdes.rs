//! Triple DES (EDE mode, FIPS 46-3 / SP 800-67).
//!
//! 3DES is the bulk cipher used in the paper's SSL transaction model
//! (Fig. 8) and the second row of Table 1. Encryption is
//! `E_K3(D_K2(E_K1(p)))`; with `K1 == K2 == K3` it degenerates to single
//! DES, which the tests exploit as a correctness oracle.

use crate::des::Des;
use crate::BlockCipher;

/// A three-key triple-DES (EDE3) schedule.
///
/// # Examples
///
/// ```
/// use ciphers::{BlockCipher, TripleDes};
///
/// let tdes = TripleDes::new(*b"key1key1", *b"key2key2", *b"key3key3");
/// let mut block = *b"8 bytes!";
/// tdes.encrypt_block(&mut block);
/// tdes.decrypt_block(&mut block);
/// assert_eq!(&block, b"8 bytes!");
/// ```
#[derive(Debug, Clone)]
pub struct TripleDes {
    k1: Des,
    k2: Des,
    k3: Des,
}

impl TripleDes {
    /// Builds an EDE3 schedule from three independent 8-byte keys.
    pub fn new(k1: [u8; 8], k2: [u8; 8], k3: [u8; 8]) -> Self {
        TripleDes {
            k1: Des::new(k1),
            k2: Des::new(k2),
            k3: Des::new(k3),
        }
    }

    /// Two-key variant (`K3 = K1`), common in legacy protocols.
    pub fn new_two_key(k1: [u8; 8], k2: [u8; 8]) -> Self {
        Self::new(k1, k2, k1)
    }

    /// Builds the schedule from a single 24-byte key blob.
    pub fn from_key_bytes(key: &[u8; 24]) -> Self {
        let mut k1 = [0u8; 8];
        let mut k2 = [0u8; 8];
        let mut k3 = [0u8; 8];
        k1.copy_from_slice(&key[0..8]);
        k2.copy_from_slice(&key[8..16]);
        k3.copy_from_slice(&key[16..24]);
        Self::new(k1, k2, k3)
    }

    /// Encrypts a 64-bit block (`E_K3(D_K2(E_K1(p)))`).
    pub fn encrypt_u64(&self, block: u64) -> u64 {
        self.k3
            .encrypt_u64(self.k2.decrypt_u64(self.k1.encrypt_u64(block)))
    }

    /// Decrypts a 64-bit block.
    pub fn decrypt_u64(&self, block: u64) -> u64 {
        self.k1
            .decrypt_u64(self.k2.encrypt_u64(self.k3.decrypt_u64(block)))
    }
}

impl BlockCipher for TripleDes {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "3DES blocks are 8 bytes");
        let v = u64::from_be_bytes(block.try_into().expect("length checked"));
        block.copy_from_slice(&self.encrypt_u64(v).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "3DES blocks are 8 bytes");
        let v = u64::from_be_bytes(block.try_into().expect("length checked"));
        block.copy_from_slice(&self.decrypt_u64(v).to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerates_to_single_des_with_equal_keys() {
        let key = 0x1334_5779_9BBC_DFF1u64.to_be_bytes();
        let tdes = TripleDes::new(key, key, key);
        let des = Des::new(key);
        for p in [0u64, 1, 0x0123_4567_89AB_CDEF, u64::MAX] {
            assert_eq!(tdes.encrypt_u64(p), des.encrypt_u64(p));
            assert_eq!(tdes.decrypt_u64(p), des.decrypt_u64(p));
        }
    }

    #[test]
    fn sp800_67_style_vector() {
        // Known-answer: NIST SP 800-67 example keys applied to the
        // classic plaintext; verified against the EDE composition of the
        // independently tested DES core.
        let k1 = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
        let k2 = 0x2345_6789_ABCD_EF01u64.to_be_bytes();
        let k3 = 0x4567_89AB_CDEF_0123u64.to_be_bytes();
        let tdes = TripleDes::new(k1, k2, k3);
        let p = 0x5468_6520_7175_6663u64; // "The qufc"
        let c = tdes.encrypt_u64(p);
        let e1 = Des::new(k1).encrypt_u64(p);
        let d2 = Des::new(k2).decrypt_u64(e1);
        let e3 = Des::new(k3).encrypt_u64(d2);
        assert_eq!(c, e3);
        assert_eq!(tdes.decrypt_u64(c), p);
    }

    #[test]
    fn two_key_variant_reuses_k1() {
        let k1 = *b"firstkey";
        let k2 = *b"secondk!";
        let two = TripleDes::new_two_key(k1, k2);
        let three = TripleDes::new(k1, k2, k1);
        assert_eq!(two.encrypt_u64(42), three.encrypt_u64(42));
    }

    #[test]
    fn from_key_bytes_splits_correctly() {
        let mut blob = [0u8; 24];
        for (i, b) in blob.iter_mut().enumerate() {
            *b = i as u8;
        }
        let a = TripleDes::from_key_bytes(&blob);
        let b = TripleDes::new(
            blob[0..8].try_into().unwrap(),
            blob[8..16].try_into().unwrap(),
            blob[16..24].try_into().unwrap(),
        );
        assert_eq!(a.encrypt_u64(7), b.encrypt_u64(7));
    }

    #[test]
    fn trait_roundtrip() {
        let tdes = TripleDes::from_key_bytes(b"0123456789abcdefghijklmn");
        let mut block = *b"testdata";
        tdes.encrypt_block(&mut block);
        assert_ne!(&block, b"testdata");
        tdes.decrypt_block(&mut block);
        assert_eq!(&block, b"testdata");
    }
}
