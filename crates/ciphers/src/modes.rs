//! Block-cipher modes of operation (ECB, CBC, CTR) with PKCS#7 padding.
//!
//! The platform's bulk-data path (SSL record encryption in Fig. 8,
//! real-time video decryption in the prototype demo) runs a block cipher
//! in one of these modes.

use crate::BlockCipher;
use core::fmt;

/// Error returned when decryption output has invalid PKCS#7 padding or a
/// ciphertext has an impossible length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CipherError {
    /// Ciphertext length is not a multiple of the block size.
    BadLength {
        /// Offending input length.
        len: usize,
        /// Cipher block size.
        block: usize,
    },
    /// PKCS#7 padding bytes are inconsistent.
    BadPadding,
    /// An initialization vector of the wrong size was supplied.
    BadIv {
        /// Offending IV length.
        len: usize,
        /// Cipher block size.
        block: usize,
    },
}

impl fmt::Display for CipherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CipherError::BadLength { len, block } => {
                write!(f, "ciphertext length {len} is not a multiple of {block}")
            }
            CipherError::BadPadding => write!(f, "invalid pkcs#7 padding"),
            CipherError::BadIv { len, block } => {
                write!(f, "iv length {len} does not match block size {block}")
            }
        }
    }
}

impl std::error::Error for CipherError {}

/// Applies PKCS#7 padding, returning a buffer whose length is a multiple
/// of `block`.
pub fn pad_pkcs7(data: &[u8], block: usize) -> Vec<u8> {
    assert!((1..=255).contains(&block));
    let pad = block - data.len() % block;
    let mut out = data.to_vec();
    out.extend(std::iter::repeat_n(pad as u8, pad));
    out
}

/// Strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CipherError::BadPadding`] if the final bytes are not valid
/// padding.
pub fn unpad_pkcs7(data: &[u8], block: usize) -> Result<Vec<u8>, CipherError> {
    if data.is_empty() || !data.len().is_multiple_of(block) {
        return Err(CipherError::BadPadding);
    }
    let pad = *data.last().expect("nonempty") as usize;
    if pad == 0 || pad > block || pad > data.len() {
        return Err(CipherError::BadPadding);
    }
    if data[data.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CipherError::BadPadding);
    }
    Ok(data[..data.len() - pad].to_vec())
}

/// Encrypts `data` in ECB mode with PKCS#7 padding.
pub fn ecb_encrypt<C: BlockCipher + ?Sized>(cipher: &C, data: &[u8]) -> Vec<u8> {
    let bs = cipher.block_size();
    let mut out = pad_pkcs7(data, bs);
    for block in out.chunks_exact_mut(bs) {
        cipher.encrypt_block(block);
    }
    out
}

/// Decrypts ECB-mode ciphertext and strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CipherError`] on bad length or padding.
pub fn ecb_decrypt<C: BlockCipher + ?Sized>(
    cipher: &C,
    data: &[u8],
) -> Result<Vec<u8>, CipherError> {
    let bs = cipher.block_size();
    if data.is_empty() || !data.len().is_multiple_of(bs) {
        return Err(CipherError::BadLength {
            len: data.len(),
            block: bs,
        });
    }
    let mut out = data.to_vec();
    for block in out.chunks_exact_mut(bs) {
        cipher.decrypt_block(block);
    }
    unpad_pkcs7(&out, bs)
}

/// Encrypts `data` in CBC mode with PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CipherError::BadIv`] if the IV length differs from the block
/// size.
pub fn cbc_encrypt<C: BlockCipher + ?Sized>(
    cipher: &C,
    iv: &[u8],
    data: &[u8],
) -> Result<Vec<u8>, CipherError> {
    let bs = cipher.block_size();
    if iv.len() != bs {
        return Err(CipherError::BadIv {
            len: iv.len(),
            block: bs,
        });
    }
    let mut out = pad_pkcs7(data, bs);
    let mut prev = iv.to_vec();
    for block in out.chunks_exact_mut(bs) {
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        cipher.encrypt_block(block);
        prev.copy_from_slice(block);
    }
    Ok(out)
}

/// Decrypts CBC-mode ciphertext and strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CipherError`] on bad IV, length, or padding.
pub fn cbc_decrypt<C: BlockCipher + ?Sized>(
    cipher: &C,
    iv: &[u8],
    data: &[u8],
) -> Result<Vec<u8>, CipherError> {
    let bs = cipher.block_size();
    if iv.len() != bs {
        return Err(CipherError::BadIv {
            len: iv.len(),
            block: bs,
        });
    }
    if data.is_empty() || !data.len().is_multiple_of(bs) {
        return Err(CipherError::BadLength {
            len: data.len(),
            block: bs,
        });
    }
    let mut out = data.to_vec();
    let mut prev = iv.to_vec();
    for block in out.chunks_exact_mut(bs) {
        let saved = block.to_vec();
        cipher.decrypt_block(block);
        for (b, p) in block.iter_mut().zip(&prev) {
            *b ^= p;
        }
        prev = saved;
    }
    unpad_pkcs7(&out, bs)
}

/// Encrypts or decrypts in CTR mode (symmetric). The counter block is the
/// IV with its trailing 4 bytes treated as a big-endian counter. No
/// padding is applied; output length equals input length.
///
/// # Errors
///
/// Returns [`CipherError::BadIv`] if the nonce length differs from the
/// block size.
pub fn ctr_xcrypt<C: BlockCipher + ?Sized>(
    cipher: &C,
    nonce: &[u8],
    data: &[u8],
) -> Result<Vec<u8>, CipherError> {
    let bs = cipher.block_size();
    if nonce.len() != bs {
        return Err(CipherError::BadIv {
            len: nonce.len(),
            block: bs,
        });
    }
    let mut out = data.to_vec();
    let mut counter_block = nonce.to_vec();
    let mut counter = u32::from_be_bytes(
        counter_block[bs - 4..]
            .try_into()
            .expect("4 trailing bytes"),
    );
    for chunk in out.chunks_mut(bs) {
        let mut keystream = counter_block.clone();
        cipher.encrypt_block(&mut keystream);
        for (b, k) in chunk.iter_mut().zip(&keystream) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
        counter_block[bs - 4..].copy_from_slice(&counter.to_be_bytes());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::Aes;
    use crate::des::Des;

    fn aes() -> Aes {
        Aes::new(&[7u8; 16])
    }

    fn des() -> Des {
        Des::new([3u8; 8])
    }

    #[test]
    fn pkcs7_roundtrip_all_remainders() {
        for n in 0..33 {
            let data: Vec<u8> = (0..n as u8).collect();
            let padded = pad_pkcs7(&data, 16);
            assert_eq!(padded.len() % 16, 0);
            assert!(padded.len() > data.len());
            assert_eq!(unpad_pkcs7(&padded, 16).unwrap(), data);
        }
    }

    #[test]
    fn pkcs7_rejects_corruption() {
        let padded = pad_pkcs7(b"hello", 8);
        let mut bad = padded.clone();
        *bad.last_mut().unwrap() = 0;
        assert_eq!(unpad_pkcs7(&bad, 8), Err(CipherError::BadPadding));
        let mut bad2 = padded;
        *bad2.last_mut().unwrap() = 9; // > block size
        assert_eq!(unpad_pkcs7(&bad2, 8), Err(CipherError::BadPadding));
    }

    #[test]
    fn ecb_roundtrip() {
        let msg = b"attack at dawn -- bring snacks";
        let ct = ecb_encrypt(&aes(), msg);
        assert_eq!(ecb_decrypt(&aes(), &ct).unwrap(), msg);
    }

    #[test]
    fn ecb_leaks_equal_blocks_cbc_does_not() {
        let msg = [0x42u8; 32]; // two identical blocks
        let e = ecb_encrypt(&aes(), &msg);
        assert_eq!(e[0..16], e[16..32], "ECB encrypts equal blocks equally");
        let c = cbc_encrypt(&aes(), &[9u8; 16], &msg).unwrap();
        assert_ne!(c[0..16], c[16..32], "CBC chains state across blocks");
    }

    #[test]
    fn cbc_roundtrip_with_des() {
        let iv = [0x55u8; 8];
        let msg = b"the quick brown fox jumps over the lazy dog";
        let ct = cbc_encrypt(&des(), &iv, msg).unwrap();
        assert_eq!(cbc_decrypt(&des(), &iv, &ct).unwrap(), msg);
    }

    #[test]
    fn cbc_wrong_iv_fails_roundtrip() {
        let ct = cbc_encrypt(&aes(), &[1u8; 16], b"secret message!!").unwrap();
        let wrong = cbc_decrypt(&aes(), &[2u8; 16], &ct);
        // Either padding fails or the plaintext differs.
        if let Ok(pt) = wrong {
            assert_ne!(pt, b"secret message!!");
        }
    }

    #[test]
    fn cbc_iv_length_checked() {
        assert!(matches!(
            cbc_encrypt(&aes(), &[0u8; 8], b"x"),
            Err(CipherError::BadIv { len: 8, block: 16 })
        ));
    }

    #[test]
    fn ecb_rejects_ragged_ciphertext() {
        assert!(matches!(
            ecb_decrypt(&aes(), &[0u8; 17]),
            Err(CipherError::BadLength { len: 17, block: 16 })
        ));
    }

    #[test]
    fn ctr_is_its_own_inverse_and_length_preserving() {
        let nonce = [0xa5u8; 16];
        let msg = b"stream mode keeps exact length"; // 30 bytes
        let ct = ctr_xcrypt(&aes(), &nonce, msg).unwrap();
        assert_eq!(ct.len(), msg.len());
        assert_eq!(ctr_xcrypt(&aes(), &nonce, &ct).unwrap(), msg);
    }

    #[test]
    fn ctr_counter_advances_per_block() {
        let nonce = [0u8; 16];
        let zeros = [0u8; 48];
        let ks = ctr_xcrypt(&aes(), &nonce, &zeros).unwrap();
        assert_ne!(ks[0..16], ks[16..32]);
        assert_ne!(ks[16..32], ks[32..48]);
    }
}
