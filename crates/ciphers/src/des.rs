//! The Data Encryption Standard (FIPS 46-3).
//!
//! The implementation deliberately exposes its internal round structure
//! ([`Des::round_keys`], [`feistel_f`], [`initial_permutation`], …): these
//! are the "basic operations" the platform characterizes on the XR32
//! instruction-set simulator and accelerates with the `des_sbox` /
//! `des_perm` custom instructions, and the equivalence tests between the
//! native and XR32-assembly kernels are written against them.

use crate::bits::{join, permute, rotl, split};
use crate::BlockCipher;

/// Initial permutation IP.
pub const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, 62, 54, 46, 38, 30, 22, 14, 6,
    64, 56, 48, 40, 32, 24, 16, 8, 57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, 61,
    53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation IP⁻¹.
pub const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, 38, 6, 46, 14, 54, 22, 62, 30,
    37, 5, 45, 13, 53, 21, 61, 29, 36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion E (32 → 48 bits).
pub const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, 8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, 16, 17, 18,
    19, 20, 21, 20, 21, 22, 23, 24, 25, 24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P (32 → 32 bits) applied after the S-boxes.
pub const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, 2, 8, 24, 14, 32, 27, 3, 9, 19,
    13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (64-bit key → 56 bits).
pub const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, 10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60,
    52, 44, 36, 63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, 14, 6, 61, 53, 45, 37, 29,
    21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (56 bits → 48-bit round key).
pub const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, 23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, 41, 52,
    31, 37, 47, 55, 30, 40, 51, 45, 33, 48, 44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-rotation schedule for the 16 rounds.
pub const SHIFTS: [u32; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight DES S-boxes, each mapping a 6-bit input to a 4-bit output.
/// Indexed `SBOXES[box][row * 16 + column]` per FIPS 46-3.
pub const SBOXES: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, 0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12,
        11, 9, 5, 3, 8, 4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, 15, 12, 8, 2, 4, 9,
        1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, 3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1,
        10, 6, 9, 11, 5, 0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, 13, 8, 10, 1, 3, 15,
        4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, 13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5,
        14, 12, 11, 15, 1, 13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, 1, 10, 13, 0, 6,
        9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, 13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2,
        12, 1, 10, 14, 9, 10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, 3, 15, 0, 6, 10, 1,
        13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, 14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15,
        10, 3, 9, 8, 6, 4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, 11, 8, 12, 7, 1, 14,
        2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, 10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13,
        14, 0, 11, 3, 8, 9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, 4, 3, 2, 12, 9, 5,
        15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, 13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5,
        12, 2, 15, 8, 6, 1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, 6, 11, 13, 8, 1, 4,
        10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, 1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6,
        11, 0, 14, 9, 2, 7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, 2, 1, 14, 7, 4, 10,
        8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies the initial permutation IP to a 64-bit block.
pub fn initial_permutation(block: u64) -> u64 {
    permute(block, 64, &IP)
}

/// Applies the final permutation IP⁻¹ to a 64-bit block.
pub fn final_permutation(block: u64) -> u64 {
    permute(block, 64, &FP)
}

/// Expands a 32-bit half-block to 48 bits via table E.
pub fn expand(half: u32) -> u64 {
    permute(half as u64, 32, &E)
}

/// Runs all eight S-boxes over a 48-bit value, producing 32 bits.
pub fn sbox_substitute(x48: u64) -> u32 {
    let mut out = 0u32;
    for (i, sbox) in SBOXES.iter().enumerate() {
        let six = ((x48 >> (42 - 6 * i)) & 0x3f) as u8;
        let row = ((six >> 4) & 2) | (six & 1);
        let col = (six >> 1) & 0xf;
        out = (out << 4) | sbox[(row * 16 + col) as usize] as u32;
    }
    out
}

/// Applies permutation P to a 32-bit value.
pub fn permute_p(x: u32) -> u32 {
    permute(x as u64, 32, &P) as u32
}

/// The Feistel function `f(R, K)` of one DES round.
pub fn feistel_f(right: u32, round_key: u64) -> u32 {
    permute_p(sbox_substitute(expand(right) ^ round_key))
}

/// Derives the sixteen 48-bit round keys from a 64-bit key (parity bits
/// ignored per PC-1).
pub fn key_schedule(key: u64) -> [u64; 16] {
    let k56 = permute(key, 64, &PC1);
    let (mut c, mut d) = split(k56, 56);
    let mut round_keys = [0u64; 16];
    for (i, &s) in SHIFTS.iter().enumerate() {
        c = rotl(c, 28, s);
        d = rotl(d, 28, s);
        round_keys[i] = permute(join(c, d, 56), 56, &PC2);
    }
    round_keys
}

/// A DES key schedule ready for encryption and decryption.
///
/// # Examples
///
/// ```
/// use ciphers::{BlockCipher, Des};
///
/// let des = Des::new(0x1334_5779_9BBC_DFF1u64.to_be_bytes());
/// let mut block = 0x0123_4567_89AB_CDEFu64.to_be_bytes();
/// des.encrypt_block(&mut block);
/// assert_eq!(u64::from_be_bytes(block), 0x85E8_1354_0F0A_B405);
/// ```
#[derive(Debug, Clone)]
pub struct Des {
    round_keys: [u64; 16],
}

impl Des {
    /// Builds the key schedule from an 8-byte key.
    pub fn new(key: [u8; 8]) -> Self {
        Des {
            round_keys: key_schedule(u64::from_be_bytes(key)),
        }
    }

    /// The sixteen 48-bit round keys.
    pub fn round_keys(&self) -> &[u64; 16] {
        &self.round_keys
    }

    /// Encrypts a 64-bit block.
    pub fn encrypt_u64(&self, block: u64) -> u64 {
        self.crypt(block, false)
    }

    /// Decrypts a 64-bit block.
    pub fn decrypt_u64(&self, block: u64) -> u64 {
        self.crypt(block, true)
    }

    fn crypt(&self, block: u64, decrypt: bool) -> u64 {
        let ip = initial_permutation(block);
        let (l64, r64) = split(ip, 64);
        let (mut l, mut r) = (l64 as u32, r64 as u32);
        for i in 0..16 {
            let k = if decrypt {
                self.round_keys[15 - i]
            } else {
                self.round_keys[i]
            };
            let new_r = l ^ feistel_f(r, k);
            l = r;
            r = new_r;
        }
        // Note the final swap: R16 is the high half.
        final_permutation(join(r as u64, l as u64, 64))
    }
}

impl BlockCipher for Des {
    fn block_size(&self) -> usize {
        8
    }

    fn encrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "DES blocks are 8 bytes");
        let v = u64::from_be_bytes(block.try_into().expect("length checked"));
        block.copy_from_slice(&self.encrypt_u64(v).to_be_bytes());
    }

    fn decrypt_block(&self, block: &mut [u8]) {
        assert_eq!(block.len(), 8, "DES blocks are 8 bytes");
        let v = u64::from_be_bytes(block.try_into().expect("length checked"));
        block.copy_from_slice(&self.decrypt_u64(v).to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_classic_vector() {
        // The worked example from FIPS 46 / Stallings.
        let des = Des::new(0x1334_5779_9BBC_DFF1u64.to_be_bytes());
        assert_eq!(
            des.encrypt_u64(0x0123_4567_89AB_CDEF),
            0x85E8_1354_0F0A_B405
        );
        assert_eq!(
            des.decrypt_u64(0x85E8_1354_0F0A_B405),
            0x0123_4567_89AB_CDEF
        );
    }

    #[test]
    fn known_zero_output_vector() {
        let des = Des::new(0x0E32_9232_EA6D_0D73u64.to_be_bytes());
        assert_eq!(des.encrypt_u64(0x8787_8787_8787_8787), 0);
    }

    #[test]
    fn nbs_maintenance_vector() {
        // From the NBS test set: all-ones key.
        let des = Des::new([0xFF; 8]);
        assert_eq!(
            des.encrypt_u64(0xFFFF_FFFF_FFFF_FFFF),
            0x7359_B216_3E4E_DC58
        );
    }

    #[test]
    fn ip_and_fp_are_inverses() {
        for v in [0u64, 1, u64::MAX, 0x0123_4567_89AB_CDEF] {
            assert_eq!(final_permutation(initial_permutation(v)), v);
            assert_eq!(initial_permutation(final_permutation(v)), v);
        }
    }

    #[test]
    fn expand_duplicates_edge_bits() {
        // Bit 32 of the input (LSB) appears as output bits 1 and 47.
        let e = expand(1);
        assert_eq!(e >> 47, 1);
        assert_eq!((e >> 1) & 1, 1);
    }

    #[test]
    fn sbox_rows_are_permutations_of_0_to_15() {
        for (b, sbox) in SBOXES.iter().enumerate() {
            for row in 0..4 {
                let mut seen = [false; 16];
                for col in 0..16 {
                    seen[sbox[row * 16 + col] as usize] = true;
                }
                assert!(seen.iter().all(|&s| s), "sbox {b} row {row}");
            }
        }
    }

    #[test]
    fn key_schedule_produces_distinct_round_keys() {
        let ks = key_schedule(0x1334_5779_9BBC_DFF1);
        for i in 0..16 {
            for j in i + 1..16 {
                assert_ne!(ks[i], ks[j], "rounds {i} and {j}");
            }
        }
        // Known K1 for this key (Stallings worked example).
        assert_eq!(ks[0], 0x1B02_EFFC_7072);
    }

    #[test]
    fn encrypt_decrypt_roundtrip_via_trait() {
        use crate::BlockCipher;
        let des = Des::new(*b"K3ys3cr3");
        let mut block = *b"plaintxt";
        des.encrypt_block(&mut block);
        assert_ne!(&block, b"plaintxt");
        des.decrypt_block(&mut block);
        assert_eq!(&block, b"plaintxt");
    }

    #[test]
    fn complementation_property() {
        // DES(k̄, p̄) = DES(k, p)̄ — a classic structural property.
        let k = 0x0123_4567_89AB_CDEFu64;
        let p = 0x1122_3344_5566_7788u64;
        let c = Des::new(k.to_be_bytes()).encrypt_u64(p);
        let cc = Des::new((!k).to_be_bytes()).encrypt_u64(!p);
        assert_eq!(cc, !c);
    }
}
