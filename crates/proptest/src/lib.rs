//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of proptest it uses: the [`Strategy`]
//! trait, `any::<T>()`, `prop::collection::vec`, `prop::sample`,
//! tuple/range strategies, and the [`proptest!`]/`prop_assert*` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports the generated inputs via
//!   the panic message of the `prop_assert*` macros but is not
//!   minimized.
//! - **Deterministic seeding.** Each test function derives its RNG seed
//!   from its own name, so failures reproduce across runs; set
//!   `PROPTEST_SEED` to vary the seed explicitly.
//! - `ProptestConfig` only honors `cases`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run-time options for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f`, regenerating (bounded
    /// retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy produced by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Debug for Any<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "any::<{}>()", std::any::type_name::<T>())
    }
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Uniform over the whole domain, like real proptest's
                // `any::<int>()` — tests may rely on special values
                // (e.g. zero) being vanishingly rare.
                rng.random::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_strategy_for_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
impl_strategy_for_range_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_strategy_for_tuple!(A: 0);
impl_strategy_for_tuple!(A: 0, B: 1);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_strategy_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// A length specification for [`collection::vec`]: a fixed size or a
/// range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy for `Vec`s of values from `element` with a length drawn
    /// from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Arbitrary, Rng, Strategy, TestRng};

    /// Strategy choosing one element of a fixed list.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    /// Draws uniformly from `items`.
    ///
    /// # Panics
    ///
    /// Panics at generation time if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.0.is_empty(), "select over empty list");
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }

    /// An index usable with any collection length (`prop::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Projects the index into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.random::<u64>() as usize)
        }
    }
}

/// Error type a property-test case body may `return Err(...)` with
/// (cases are also allowed to `return Ok(())` to skip themselves, which
/// is how [`prop_assume!`] bails out).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Builds the per-test RNG. Seeds derive from the test name so each
/// test is deterministic in isolation; `PROPTEST_SEED` overrides.
#[doc(hidden)]
pub fn __new_test_rng(test_name: &str) -> TestRng {
    let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x100_0000_01b3);
    }
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            seed ^= v;
        }
    }
    TestRng::seed_from_u64(seed)
}

/// Defines property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running `body` over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    { ($config:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    } => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::__new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                    // Bodies may `return Ok(())` to skip a case (the
                    // proptest rejection protocol), so run each case in
                    // a Result-returning closure.
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    if let Err(e) = __outcome {
                        panic!("property case failed: {e}");
                    }
                }
            }
        )*
    };
}

/// Skips the current case when its precondition fails. Inside the
/// [`proptest!`] case loop this moves on to the next generated input;
/// unlike real proptest, skipped cases are not replaced.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// The glob-importable prelude, mirroring `proptest::prelude`.
pub mod prelude {
    /// `prop::…` paths (`prop::collection::vec`, `prop::sample::select`).
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn rng() -> super::TestRng {
        super::__new_test_rng("proptest::selftest")
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let v = (1u32..10).generate(&mut rng);
            assert!((1..10).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = rng();
        for _ in 0..100 {
            let v = prop::collection::vec(any::<u32>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = rng();
        let s = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn select_draws_members() {
        let mut rng = rng();
        let s = prop::sample::select(vec!['a', 'b', 'c']);
        for _ in 0..50 {
            assert!(['a', 'b', 'c'].contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn index_projects_into_len() {
        let mut rng = rng();
        for _ in 0..50 {
            let ix = any::<prop::sample::Index>().generate(&mut rng);
            assert!(ix.index(7) < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_generates_and_runs(a in any::<u32>(), b in 1u32..100) {
            prop_assert!((1..100).contains(&b));
            prop_assert_eq!(a.wrapping_add(b).wrapping_sub(b), a);
            prop_assert_ne!(b, 0);
        }
    }
}
