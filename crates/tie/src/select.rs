//! Global custom-instruction selection (the paper's Section 3.4).
//!
//! Leaf routines carry A-D curves from the formulation phase. The
//! selector propagates them bottom-up through the call graph: for each
//! node `f`, every point of the composite curve is
//! `local_cycles(f) + Σ_{g ∈ children(f)} calls(g) · cycles(g)` for some
//! combination of child design points, with instruction sharing and
//! dominance collapsing equivalent combinations. Pareto pruning and the
//! area budget are applied at the root.

use crate::adcurve::{AdCurve, AdPoint};
use crate::callgraph::{CallGraph, CallGraphError};
use std::collections::BTreeMap;

/// Controls point-count growth during propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectOptions {
    /// If a node's composite curve exceeds this many points after
    /// dedup, it is Pareto-pruned early. Sharing across *siblings* can
    /// in principle make an internally-dominated point globally useful,
    /// so early pruning is a heuristic — the paper similarly "contains
    /// the potential explosion using several techniques". `usize::MAX`
    /// disables it.
    pub max_points_per_node: usize,
}

impl Default for SelectOptions {
    fn default() -> Self {
        SelectOptions {
            max_points_per_node: 4096,
        }
    }
}

/// Bottom-up A-D-curve propagation and selection over a call graph.
///
/// # Examples
///
/// ```
/// use tie::adcurve::{AdCurve, AdPoint};
/// use tie::callgraph::CallGraph;
/// use tie::insn::CustomInsn;
/// use tie::select::Selector;
///
/// let mut g = CallGraph::new();
/// g.add_node("root", 10.0);
/// g.add_node("leaf_add", 0.0);
/// g.add_call("root", "leaf_add", 4.0)?;
///
/// let mut sel = Selector::new(g);
/// sel.set_leaf_curve("leaf_add", AdCurve::from_points(vec![
///     AdPoint::base(202.0),
///     AdPoint::new(vec![CustomInsn::new("add", 2, 1000)], 109.0),
/// ]));
/// let root = sel.root_curve("root")?;
/// assert_eq!(root.points()[0].cycles, 10.0 + 4.0 * 202.0);
/// let chosen = sel.select("root", 1500)?.expect("a point fits");
/// assert_eq!(chosen.cycles, 10.0 + 4.0 * 109.0);
/// # Ok::<(), tie::callgraph::CallGraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Selector {
    graph: CallGraph,
    leaf_curves: BTreeMap<String, AdCurve>,
    options: SelectOptions,
}

impl Selector {
    /// Creates a selector over a call graph.
    pub fn new(graph: CallGraph) -> Self {
        Selector {
            graph,
            leaf_curves: BTreeMap::new(),
            options: SelectOptions::default(),
        }
    }

    /// Sets propagation options.
    pub fn set_options(&mut self, options: SelectOptions) {
        self.options = options;
    }

    /// The underlying call graph.
    pub fn graph(&self) -> &CallGraph {
        &self.graph
    }

    /// Attaches the formulation-phase A-D curve of a routine. Nodes
    /// without a curve contribute only their local cycles.
    pub fn set_leaf_curve(&mut self, name: impl Into<String>, curve: AdCurve) {
        self.leaf_curves.insert(name.into(), curve);
    }

    /// Propagates curves bottom-up, returning the composite curve of
    /// every node.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError`] if the graph has a cycle.
    pub fn propagate(&self) -> Result<BTreeMap<String, AdCurve>, CallGraphError> {
        let order = self.graph.postorder()?;
        let mut curves: BTreeMap<String, AdCurve> = BTreeMap::new();
        for name in order {
            let curve = if let Some(leaf) = self.leaf_curves.get(name) {
                // A formulated routine: its curve already includes its
                // full cost (local + any interior calls).
                leaf.clone()
            } else {
                // Composite node: combine children per Equation (1).
                let mut acc = AdCurve::constant(0.0);
                for (child, calls) in self.graph.children(name) {
                    let child_curve = curves
                        .get(child)
                        .expect("postorder guarantees children first")
                        .map_cycles(|c| calls * c);
                    acc = acc.combine(&child_curve);
                    if acc.len() > self.options.max_points_per_node {
                        acc = acc.pareto();
                    }
                }
                let local = self.graph.local_cycles(name);
                acc.map_cycles(|c| c + local)
            };
            curves.insert(name.to_owned(), curve);
        }
        Ok(curves)
    }

    /// The Pareto-pruned composite curve at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError`] if `root` is unknown or the graph has a
    /// cycle.
    pub fn root_curve(&self, root: &str) -> Result<AdCurve, CallGraphError> {
        if !self.graph.contains(root) {
            return Err(CallGraphError::UnknownNode(root.to_owned()));
        }
        let curves = self.propagate()?;
        Ok(curves[root].pareto())
    }

    /// Selects the fastest root design point within `area_budget` gate
    /// equivalents. Returns `None` if even the zero-area point is absent
    /// (empty curve).
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError`] if `root` is unknown or the graph has a
    /// cycle.
    pub fn select(&self, root: &str, area_budget: u64) -> Result<Option<AdPoint>, CallGraphError> {
        Ok(self.root_curve(root)?.best_under_area(area_budget).cloned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::CustomInsn;

    fn add(level: u32) -> CustomInsn {
        CustomInsn::new("add", level, 400 * level as u64)
    }

    fn mul(level: u32) -> CustomInsn {
        CustomInsn::new("mul", level, 6000 * level as u64)
    }

    fn addn_curve() -> AdCurve {
        AdCurve::from_points(vec![
            AdPoint::base(202.0),
            AdPoint::new([add(2)], 109.0),
            AdPoint::new([add(4)], 75.0),
            AdPoint::new([add(8)], 60.0),
            AdPoint::new([add(16)], 53.0),
        ])
    }

    fn addmul_curve() -> AdCurve {
        AdCurve::from_points(vec![
            AdPoint::base(640.0),
            AdPoint::new([add(2), mul(1)], 280.0),
            AdPoint::new([add(4), mul(1)], 210.0),
            AdPoint::new([add(8), mul(1)], 180.0),
            AdPoint::new([add(16), mul(1)], 168.0),
        ])
    }

    /// The two-child example of Fig. 5(c): root calls the add leaf
    /// twice and the mac leaf once, plus 10 local cycles.
    fn fig5_selector() -> Selector {
        let mut g = CallGraph::new();
        g.add_node("root", 10.0);
        g.add_node("leaf_add", 0.0);
        g.add_node("leaf_mac", 0.0);
        g.add_call("root", "leaf_add", 2.0).unwrap();
        g.add_call("root", "leaf_mac", 1.0).unwrap();
        let mut sel = Selector::new(g);
        sel.set_leaf_curve("leaf_add", addn_curve());
        sel.set_leaf_curve("leaf_mac", addmul_curve());
        sel
    }

    #[test]
    fn base_point_matches_equation_1() {
        let sel = fig5_selector();
        let curves = sel.propagate().unwrap();
        let root = &curves["root"];
        let base = root
            .points()
            .iter()
            .find(|p| p.area() == 0)
            .expect("base point");
        assert!((base.cycles - (10.0 + 2.0 * 202.0 + 640.0)).abs() < 1e-9);
    }

    #[test]
    fn root_has_nine_reduced_points() {
        let sel = fig5_selector();
        let curves = sel.propagate().unwrap();
        assert_eq!(curves["root"].len(), 9, "Fig. 6 reduction applies");
    }

    #[test]
    fn pareto_root_curve_is_monotone() {
        let sel = fig5_selector();
        let curve = sel.root_curve("root").unwrap();
        let pts = curve.points();
        for w in pts.windows(2) {
            assert!(w[0].area() < w[1].area());
            assert!(w[0].cycles > w[1].cycles);
        }
    }

    #[test]
    fn selection_improves_with_budget() {
        let sel = fig5_selector();
        let no_hw = sel.select("root", 0).unwrap().unwrap();
        let small = sel.select("root", 7000).unwrap().unwrap();
        let large = sel.select("root", 100_000).unwrap().unwrap();
        assert!(no_hw.cycles > small.cycles);
        assert!(small.cycles >= large.cycles);
        assert!(no_hw.area() == 0);
        assert!(small.area() <= 7000);
    }

    #[test]
    fn shared_instruction_across_siblings_counted_once() {
        // Both children accelerated by the same add_16 + mul_1; budget
        // exactly equal to {add_16, mul_1} must suffice for the fastest
        // point.
        let sel = fig5_selector();
        let budget = add(16).area() + mul(1).area();
        let best = sel.select("root", budget).unwrap().unwrap();
        assert!((best.cycles - (10.0 + 2.0 * 53.0 + 168.0)).abs() < 1e-9);
    }

    #[test]
    fn deep_graph_propagates_through_interior_nodes() {
        let mut g = CallGraph::new();
        g.add_node("top", 5.0);
        g.add_node("mid", 7.0);
        g.add_node("leaf", 0.0);
        g.add_call("top", "mid", 3.0).unwrap();
        g.add_call("mid", "leaf", 2.0).unwrap();
        let mut sel = Selector::new(g);
        sel.set_leaf_curve(
            "leaf",
            AdCurve::from_points(vec![AdPoint::base(100.0), AdPoint::new([add(2)], 40.0)]),
        );
        let curve = sel.root_curve("top").unwrap();
        // base: 5 + 3*(7 + 2*100) = 626; accelerated: 5 + 3*(7+80) = 266.
        assert_eq!(curve.points()[0].cycles, 626.0);
        assert_eq!(curve.points()[1].cycles, 266.0);
    }

    #[test]
    fn unknown_root_is_an_error() {
        let sel = fig5_selector();
        assert!(sel.root_curve("nope").is_err());
    }

    #[test]
    fn explosion_contained_by_options() {
        // A node with many children each having many points; the cap
        // keeps the point count bounded.
        let mut g = CallGraph::new();
        g.add_node("root", 0.0);
        let mut sel_points = Vec::new();
        for i in 0..6 {
            let name = format!("leaf{i}");
            g.add_node(&name, 0.0);
            g.add_call("root", &name, 1.0).unwrap();
            let fam = format!("f{i}");
            let pts: Vec<AdPoint> = (0..6)
                .map(|l| {
                    if l == 0 {
                        AdPoint::base(100.0)
                    } else {
                        AdPoint::new(
                            [CustomInsn::new(fam.clone(), l, 100 * l as u64)],
                            100.0 / (l + 1) as f64,
                        )
                    }
                })
                .collect();
            sel_points.push((name, AdCurve::from_points(pts)));
        }
        let mut sel = Selector::new(g);
        for (name, curve) in sel_points {
            sel.set_leaf_curve(name, curve);
        }
        sel.set_options(SelectOptions {
            max_points_per_node: 50,
        });
        let curve = sel.root_curve("root").unwrap();
        assert!(!curve.is_empty());
        assert!(curve.len() <= 50 + 1);
    }
}
