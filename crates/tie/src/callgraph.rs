//! Annotated call graphs (the paper's Fig. 4).
//!
//! Nodes are functions with `local_cycles` (cycles spent outside any
//! call); edges carry call counts. The graph is a DAG — a function may
//! have several parents (`mpz_mul` is called by `decrypt`, `mod_mul`
//! and `mpz_gcdext` in the paper's example) — and propagation
//! ([`crate::select`]) processes it bottom-up.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Error for call-graph construction and traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallGraphError {
    /// An edge references a function that was never added.
    UnknownNode(String),
    /// The graph contains a cycle (recursion is not supported by the
    /// propagation algorithm).
    Cycle(String),
}

impl fmt::Display for CallGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallGraphError::UnknownNode(n) => write!(f, "unknown call-graph node {n:?}"),
            CallGraphError::Cycle(n) => write!(f, "call graph has a cycle through {n:?}"),
        }
    }
}

impl std::error::Error for CallGraphError {}

#[derive(Debug, Clone, Default)]
struct Node {
    local_cycles: f64,
    children: BTreeMap<String, f64>, // callee -> calls per invocation
}

/// A weighted, annotated call graph.
///
/// # Examples
///
/// ```
/// use tie::callgraph::CallGraph;
///
/// let mut g = CallGraph::new();
/// g.add_node("decrypt", 120.0);
/// g.add_node("mpz_mul", 900.0);
/// g.add_call("decrypt", "mpz_mul", 4.0)?;
/// assert_eq!(g.calls("decrypt", "mpz_mul"), 4.0);
/// # Ok::<(), tie::callgraph::CallGraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    nodes: BTreeMap<String, Node>,
}

impl CallGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a function node with its local cycle count.
    pub fn add_node(&mut self, name: impl Into<String>, local_cycles: f64) {
        let name = name.into();
        self.nodes.entry(name).or_default().local_cycles = local_cycles;
    }

    /// Adds a call edge: `caller` invokes `callee` `calls` times per
    /// invocation of `caller`.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError::UnknownNode`] if either endpoint has not
    /// been added.
    pub fn add_call(
        &mut self,
        caller: &str,
        callee: &str,
        calls: f64,
    ) -> Result<(), CallGraphError> {
        if !self.nodes.contains_key(callee) {
            return Err(CallGraphError::UnknownNode(callee.to_owned()));
        }
        let node = self
            .nodes
            .get_mut(caller)
            .ok_or_else(|| CallGraphError::UnknownNode(caller.to_owned()))?;
        *node.children.entry(callee.to_owned()).or_insert(0.0) += calls;
        Ok(())
    }

    /// Whether the graph contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.nodes.contains_key(name)
    }

    /// All node names (sorted).
    pub fn node_names(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(String::as_str)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for the empty graph.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A node's local cycles (0 if unknown).
    pub fn local_cycles(&self, name: &str) -> f64 {
        self.nodes.get(name).map_or(0.0, |n| n.local_cycles)
    }

    /// Call count on an edge (0 if absent).
    pub fn calls(&self, caller: &str, callee: &str) -> f64 {
        self.nodes
            .get(caller)
            .and_then(|n| n.children.get(callee).copied())
            .unwrap_or(0.0)
    }

    /// The children of a node with their call counts.
    pub fn children(&self, name: &str) -> impl Iterator<Item = (&str, f64)> {
        self.nodes
            .get(name)
            .into_iter()
            .flat_map(|n| n.children.iter().map(|(k, &v)| (k.as_str(), v)))
    }

    /// Leaf nodes (no children) — the routines custom instructions are
    /// formulated for.
    pub fn leaves(&self) -> impl Iterator<Item = &str> {
        self.nodes
            .iter()
            .filter(|(_, n)| n.children.is_empty())
            .map(|(k, _)| k.as_str())
    }

    /// Root nodes (never called by another node).
    pub fn roots(&self) -> Vec<&str> {
        let mut called: BTreeSet<&str> = BTreeSet::new();
        for node in self.nodes.values() {
            for callee in node.children.keys() {
                called.insert(callee);
            }
        }
        self.nodes
            .keys()
            .map(String::as_str)
            .filter(|n| !called.contains(n))
            .collect()
    }

    /// Post-order (children before parents) over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError::Cycle`] if the graph is not a DAG.
    pub fn postorder(&self) -> Result<Vec<&str>, CallGraphError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            Visiting,
            Done,
        }
        let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
        let mut order: Vec<&str> = Vec::new();

        // Iterative DFS with an explicit stack to avoid recursion limits.
        for start in self.nodes.keys() {
            if marks.contains_key(start.as_str()) {
                continue;
            }
            let mut stack: Vec<(&str, bool)> = vec![(start.as_str(), false)];
            while let Some((name, expanded)) = stack.pop() {
                if expanded {
                    marks.insert(name, Mark::Done);
                    order.push(name);
                    continue;
                }
                match marks.get(name) {
                    Some(Mark::Done) => continue,
                    Some(Mark::Visiting) => {
                        return Err(CallGraphError::Cycle(name.to_owned()));
                    }
                    None => {}
                }
                marks.insert(name, Mark::Visiting);
                stack.push((name, true));
                if let Some(node) = self.nodes.get(name) {
                    for child in node.children.keys() {
                        match marks.get(child.as_str()) {
                            Some(Mark::Done) => {}
                            Some(Mark::Visiting) => {
                                return Err(CallGraphError::Cycle(child.clone()));
                            }
                            None => stack.push((child.as_str(), false)),
                        }
                    }
                }
            }
        }
        Ok(order)
    }

    /// Total cycles of `root` with no custom instructions, by Equation
    /// (1): `cycles(f) = local(f) + Σ calls(g)·cycles(g)`.
    ///
    /// # Errors
    ///
    /// Returns [`CallGraphError`] if `root` is unknown or the graph has a
    /// cycle.
    pub fn total_cycles(&self, root: &str) -> Result<f64, CallGraphError> {
        if !self.contains(root) {
            return Err(CallGraphError::UnknownNode(root.to_owned()));
        }
        let order = self.postorder()?;
        let mut totals: BTreeMap<&str, f64> = BTreeMap::new();
        for name in order {
            let node = &self.nodes[name];
            let mut t = node.local_cycles;
            for (child, calls) in &node.children {
                t += calls * totals[child.as_str()];
            }
            totals.insert(name, t);
        }
        Ok(totals[root])
    }

    /// Renders the graph as `caller -> callee xN` lines plus
    /// `node (local cycles)` lines, for reports (cf. Fig. 4).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, node) in &self.nodes {
            out.push_str(&format!("{name} [local={:.1}]\n", node.local_cycles));
            for (child, calls) in &node.children {
                out.push_str(&format!("  {name} -> {child} x{calls}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The call-graph skeleton of the paper's Fig. 4.
    fn fig4() -> CallGraph {
        let mut g = CallGraph::new();
        for (n, local) in [
            ("decrypt", 100.0),
            ("mpz_mul", 50.0),
            ("mod_hw", 30.0),
            ("mpz_mod", 40.0),
            ("mpz_add", 10.0),
            ("mpz_sub", 10.0),
            ("leaf_add", 202.0),
            ("leaf_mac", 640.0),
        ] {
            g.add_node(n, local);
        }
        g.add_call("decrypt", "mpz_mul", 4.0).unwrap();
        g.add_call("decrypt", "mod_hw", 4.0).unwrap();
        g.add_call("decrypt", "mpz_mod", 2.0).unwrap();
        g.add_call("decrypt", "mpz_add", 2.0).unwrap();
        g.add_call("decrypt", "mpz_sub", 2.0).unwrap();
        g.add_call("mpz_mul", "leaf_mac", 32.0).unwrap();
        g.add_call("mpz_add", "leaf_add", 1.0).unwrap();
        g.add_call("mod_hw", "leaf_add", 3.0).unwrap();
        g
    }

    #[test]
    fn edges_accumulate() {
        let mut g = CallGraph::new();
        g.add_node("a", 1.0);
        g.add_node("b", 2.0);
        g.add_call("a", "b", 2.0).unwrap();
        g.add_call("a", "b", 3.0).unwrap();
        assert_eq!(g.calls("a", "b"), 5.0);
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let mut g = CallGraph::new();
        g.add_node("a", 1.0);
        assert!(matches!(
            g.add_call("a", "missing", 1.0),
            Err(CallGraphError::UnknownNode(_))
        ));
        assert!(matches!(
            g.add_call("missing", "a", 1.0),
            Err(CallGraphError::UnknownNode(_))
        ));
    }

    #[test]
    fn roots_and_leaves_of_fig4() {
        let g = fig4();
        assert_eq!(g.roots(), vec!["decrypt"]);
        let leaves: Vec<&str> = g.leaves().collect();
        assert!(leaves.contains(&"leaf_add"));
        assert!(leaves.contains(&"leaf_mac"));
        assert!(leaves.contains(&"mpz_mod"));
        assert!(!leaves.contains(&"decrypt"));
    }

    #[test]
    fn postorder_places_children_first() {
        let g = fig4();
        let order = g.postorder().unwrap();
        let pos = |n: &str| order.iter().position(|&x| x == n).unwrap();
        assert!(pos("leaf_mac") < pos("mpz_mul"));
        assert!(pos("mpz_mul") < pos("decrypt"));
        assert!(pos("leaf_add") < pos("mod_hw"));
        assert_eq!(order.len(), g.len());
    }

    #[test]
    fn cycle_detected() {
        let mut g = CallGraph::new();
        g.add_node("a", 1.0);
        g.add_node("b", 1.0);
        g.add_call("a", "b", 1.0).unwrap();
        g.add_call("b", "a", 1.0).unwrap();
        assert!(matches!(g.postorder(), Err(CallGraphError::Cycle(_))));
    }

    #[test]
    fn total_cycles_follow_equation_1() {
        let mut g = CallGraph::new();
        g.add_node("root", 100.0);
        g.add_node("leaf", 10.0);
        g.add_call("root", "leaf", 4.0).unwrap();
        assert_eq!(g.total_cycles("root").unwrap(), 140.0);
        // Diamond sharing: both paths contribute.
        let g4 = fig4();
        let total = g4.total_cycles("decrypt").unwrap();
        let by_hand = 100.0
            + 4.0 * (50.0 + 32.0 * 640.0)
            + 4.0 * (30.0 + 3.0 * 202.0)
            + 2.0 * 40.0
            + 2.0 * (10.0 + 202.0)
            + 2.0 * 10.0;
        assert!((total - by_hand).abs() < 1e-9);
    }

    #[test]
    fn render_mentions_nodes_and_edges() {
        let text = fig4().render();
        assert!(text.contains("decrypt"));
        assert!(text.contains("decrypt -> mpz_mul x4"));
    }

    #[test]
    fn multiple_parents_supported() {
        let g = fig4();
        // leaf_add has two parents: mpz_add and mod_hw.
        assert_eq!(g.calls("mpz_add", "leaf_add"), 1.0);
        assert_eq!(g.calls("mod_hw", "leaf_add"), 3.0);
    }
}
