//! Candidate custom-instruction identities and the dominance relation.
//!
//! Custom instructions come in *families* parameterized by a resource
//! level: `add_2`, `add_4`, `add_8`, `add_16` all belong to family
//! `add`, with 2–16 adder resources. A higher level of the same family
//! can perform everything a lower level can at equal or better
//! performance, so when two design points are combined, `add_2` next to
//! `add_4` **reduces** to just `add_4` — the mechanism behind the
//! paper's 25 → 9 reduction in Fig. 6.

use std::collections::BTreeMap;
use std::fmt;

/// One candidate custom instruction: a family name, a resource level,
/// and its structural area in gate equivalents.
///
/// # Examples
///
/// ```
/// use tie::insn::CustomInsn;
///
/// let a4 = CustomInsn::new("add", 4, 1800);
/// let a2 = CustomInsn::new("add", 2, 1000);
/// assert!(a4.dominates(&a2));
/// assert!(!a2.dominates(&a4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CustomInsn {
    family: String,
    level: u32,
    area: u64,
}

impl CustomInsn {
    /// Creates an instruction identity.
    pub fn new(family: impl Into<String>, level: u32, area: u64) -> Self {
        CustomInsn {
            family: family.into(),
            level,
            area,
        }
    }

    /// The family name (e.g. `"add"`).
    pub fn family(&self) -> &str {
        &self.family
    }

    /// The resource level within the family (e.g. number of adders).
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Structural area in gate equivalents.
    pub fn area(&self) -> u64 {
        self.area
    }

    /// True if `self` can substitute for `other` with equal or better
    /// performance: same family, same or higher resource level.
    pub fn dominates(&self, other: &CustomInsn) -> bool {
        self.family == other.family && self.level >= other.level
    }

    /// The assembler mnemonic of this candidate: family and level fused
    /// without a separator (`add_4` the design point is the `add4`
    /// instruction). This is the name used by `cust` operands in kernel
    /// sources and by `;! cust` signature annotations for the `xlint`
    /// custom-instruction operand checks.
    ///
    /// # Examples
    ///
    /// ```
    /// use tie::insn::CustomInsn;
    ///
    /// assert_eq!(CustomInsn::new("add", 4, 1800).mnemonic(), "add4");
    /// ```
    pub fn mnemonic(&self) -> String {
        format!("{}{}", self.family, self.level)
    }
}

impl fmt::Display for CustomInsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}_{}", self.family, self.level)
    }
}

/// A dominance-reduced set of custom instructions (at most one level per
/// family — always the highest seen).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InsnSet {
    // family -> instruction; keeping the map keyed by family enforces
    // the one-per-family invariant structurally.
    by_family: BTreeMap<String, CustomInsn>,
}

impl InsnSet {
    /// The empty set (the base processor, zero area overhead).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Builds a reduced set from any iterator of instructions.
    pub fn from_insns<I: IntoIterator<Item = CustomInsn>>(insns: I) -> Self {
        let mut set = Self::empty();
        for i in insns {
            set.insert(i);
        }
        set
    }

    /// Inserts an instruction, keeping only the dominant level of its
    /// family.
    pub fn insert(&mut self, insn: CustomInsn) {
        match self.by_family.get(insn.family()) {
            Some(existing) if existing.dominates(&insn) => {}
            _ => {
                self.by_family.insert(insn.family().to_owned(), insn);
            }
        }
    }

    /// The union of two sets, dominance-reduced. Shared instructions are
    /// counted once — the "instruction sharing" of the paper's Fig. 6.
    pub fn union(&self, other: &InsnSet) -> InsnSet {
        let mut out = self.clone();
        for insn in other.iter() {
            out.insert(insn.clone());
        }
        out
    }

    /// Total area of the set in gate equivalents.
    pub fn area(&self) -> u64 {
        self.by_family.values().map(CustomInsn::area).sum()
    }

    /// Number of instructions in the set.
    pub fn len(&self) -> usize {
        self.by_family.len()
    }

    /// True for the empty set.
    pub fn is_empty(&self) -> bool {
        self.by_family.is_empty()
    }

    /// Iterates over member instructions (sorted by family).
    pub fn iter(&self) -> impl Iterator<Item = &CustomInsn> {
        self.by_family.values()
    }

    /// True if this set contains an instruction dominating `insn`.
    pub fn covers(&self, insn: &CustomInsn) -> bool {
        self.by_family
            .get(insn.family())
            .is_some_and(|have| have.dominates(insn))
    }
}

impl fmt::Display for InsnSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "{{∅}}");
        }
        write!(f, "{{")?;
        for (i, insn) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{insn}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CustomInsn> for InsnSet {
    fn from_iter<T: IntoIterator<Item = CustomInsn>>(iter: T) -> Self {
        Self::from_insns(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(level: u32) -> CustomInsn {
        CustomInsn::new("add", level, 500 * level as u64)
    }

    fn mul(level: u32) -> CustomInsn {
        CustomInsn::new("mul", level, 7000 * level as u64)
    }

    #[test]
    fn dominance_within_family_only() {
        assert!(add(8).dominates(&add(2)));
        assert!(add(2).dominates(&add(2)));
        assert!(!add(2).dominates(&add(8)));
        assert!(!add(16).dominates(&mul(1)));
    }

    #[test]
    fn insert_keeps_dominant_level() {
        let mut s = InsnSet::empty();
        s.insert(add(2));
        s.insert(add(8));
        s.insert(add(4)); // dominated; ignored
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().next().unwrap().level(), 8);
    }

    #[test]
    fn union_shares_and_reduces() {
        // The shaded example from Fig. 6: {add_2, mul_1} ∪ {add_4}
        // reduces to {add_4, mul_1}.
        let a = InsnSet::from_insns([add(2), mul(1)]);
        let b = InsnSet::from_insns([add(4)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(u.covers(&add(4)));
        assert!(u.covers(&add(2)));
        assert!(u.covers(&mul(1)));
        assert_eq!(u.area(), add(4).area() + mul(1).area());
    }

    #[test]
    fn shared_instruction_counted_once() {
        let a = InsnSet::from_insns([add(4)]);
        let b = InsnSet::from_insns([add(4)]);
        assert_eq!(a.union(&b).area(), add(4).area());
    }

    #[test]
    fn area_sums_across_families() {
        let s = InsnSet::from_insns([add(2), mul(1)]);
        assert_eq!(s.area(), add(2).area() + mul(1).area());
    }

    #[test]
    fn mnemonic_matches_assembler_naming() {
        assert_eq!(add(2).mnemonic(), "add2");
        assert_eq!(CustomInsn::new("mac", 1, 9000).mnemonic(), "mac1");
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(InsnSet::empty().to_string(), "{∅}");
        let s = InsnSet::from_insns([add(4), mul(1)]);
        assert_eq!(s.to_string(), "{add_4, mul_1}");
    }

    #[test]
    fn cartesian_of_fig6_reduces_25_to_9() {
        // addmul_1 curve points: ∅ plus {add_k, mul_1} for k=2,4,8,16.
        // add_n curve points: ∅ plus {add_k}.
        let addmul: Vec<InsnSet> = std::iter::once(InsnSet::empty())
            .chain(
                [2u32, 4, 8, 16]
                    .iter()
                    .map(|&k| InsnSet::from_insns([add(k), mul(1)])),
            )
            .collect();
        let addn: Vec<InsnSet> = std::iter::once(InsnSet::empty())
            .chain(
                [2u32, 4, 8, 16]
                    .iter()
                    .map(|&k| InsnSet::from_insns([add(k)])),
            )
            .collect();
        let mut distinct = std::collections::BTreeSet::new();
        for x in &addmul {
            for y in &addn {
                distinct.insert(x.union(y));
            }
        }
        assert_eq!(distinct.len(), 9, "paper's Fig. 6 reduction");
    }
}
