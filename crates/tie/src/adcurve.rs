//! Area–delay (A-D) curves and their combination.
//!
//! An A-D curve records, for one routine or subgraph, the design points
//! reachable by different custom-instruction choices: each point is a
//! dominance-reduced [`InsnSet`] together with the routine's cycle count
//! under that set. Curves combine bottom-up through the call graph:
//! the Cartesian product of child points, with instruction sharing and
//! dominance collapsing equivalent entries (Fig. 6), and Pareto pruning
//! discarding inferior points (Fig. 5(c)).

use crate::insn::{CustomInsn, InsnSet};
use std::collections::BTreeMap;
use std::fmt;

/// Cartesian products at least this large are combined on a worker
/// pool; smaller ones stay serial (spawn overhead would dominate).
pub const PAR_COMBINE_THRESHOLD: usize = 1024;

/// One design point: a set of custom instructions and the resulting
/// cycle count.
#[derive(Debug, Clone, PartialEq)]
pub struct AdPoint {
    /// The custom instructions this point assumes (dominance-reduced).
    pub insns: InsnSet,
    /// Cycle count of the routine/subgraph under those instructions.
    pub cycles: f64,
}

impl AdPoint {
    /// A point with custom instructions.
    pub fn new<I: IntoIterator<Item = CustomInsn>>(insns: I, cycles: f64) -> Self {
        AdPoint {
            insns: InsnSet::from_insns(insns),
            cycles,
        }
    }

    /// The zero-area base point (original software implementation).
    pub fn base(cycles: f64) -> Self {
        AdPoint {
            insns: InsnSet::empty(),
            cycles,
        }
    }

    /// Area of the point's instruction set in gate equivalents.
    pub fn area(&self) -> u64 {
        self.insns.area()
    }
}

impl fmt::Display for AdPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} area={} cycles={:.1}",
            self.insns,
            self.area(),
            self.cycles
        )
    }
}

/// An A-D curve: design points for one routine or call-graph node,
/// deduplicated by instruction set (keeping the best cycles per set).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdCurve {
    points: Vec<AdPoint>,
}

impl AdCurve {
    /// A curve with a single zero-area point (an unaccelerated routine
    /// or a constant-cost leaf).
    pub fn constant(cycles: f64) -> Self {
        Self::from_points(vec![AdPoint::base(cycles)])
    }

    /// Builds a curve, deduplicating identical instruction sets (keeping
    /// the minimum cycles) and sorting by area then cycles.
    pub fn from_points(points: Vec<AdPoint>) -> Self {
        let mut best: BTreeMap<InsnSet, f64> = BTreeMap::new();
        for p in points {
            best.entry(p.insns)
                .and_modify(|c| *c = c.min(p.cycles))
                .or_insert(p.cycles);
        }
        let mut points: Vec<AdPoint> = best
            .into_iter()
            .map(|(insns, cycles)| AdPoint { insns, cycles })
            .collect();
        points.sort_by(|a, b| a.area().cmp(&b.area()).then(a.cycles.total_cmp(&b.cycles)));
        AdCurve { points }
    }

    /// The design points, sorted by area.
    pub fn points(&self) -> &[AdPoint] {
        &self.points
    }

    /// Number of design points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True for an empty curve.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Returns a new curve with every point's cycles transformed by
    /// `f` (used to apply Equation (1): weighting by call counts and
    /// adding local cycles).
    pub fn map_cycles(&self, f: impl Fn(f64) -> f64) -> AdCurve {
        AdCurve {
            points: self
                .points
                .iter()
                .map(|p| AdPoint {
                    insns: p.insns.clone(),
                    cycles: f(p.cycles),
                })
                .collect(),
        }
    }

    /// Combines two child curves: Cartesian product with instruction
    /// sharing and dominance reduction, keeping the best cycles per
    /// distinct reduced set. Cycle counts add.
    ///
    /// Products of [`PAR_COMBINE_THRESHOLD`] points or more are formed
    /// on an environment-sized worker pool (see [`AdCurve::combine_on`]);
    /// the result is identical either way.
    pub fn combine(&self, other: &AdCurve) -> AdCurve {
        if self.len() * other.len() >= PAR_COMBINE_THRESHOLD {
            return self.combine_on(other, &xpar::Pool::from_env());
        }
        let mut out = Vec::with_capacity(self.len() * other.len());
        for a in &self.points {
            for b in &other.points {
                out.push(AdPoint {
                    insns: a.insns.union(&b.insns),
                    cycles: a.cycles + b.cycles,
                });
            }
        }
        AdCurve::from_points(out)
    }

    /// [`AdCurve::combine`] on an explicit worker pool: each row of the
    /// Cartesian product is formed in parallel and the rows are merged
    /// in order. The dedup-by-instruction-set merge keeps the minimum
    /// cycles per set (order-independent), so the combined curve is
    /// bit-identical to the serial product for any thread count.
    pub fn combine_on(&self, other: &AdCurve, pool: &xpar::Pool) -> AdCurve {
        let rows = pool.par_map(&self.points, |_, a| {
            other
                .points
                .iter()
                .map(|b| AdPoint {
                    insns: a.insns.union(&b.insns),
                    cycles: a.cycles + b.cycles,
                })
                .collect::<Vec<AdPoint>>()
        });
        AdCurve::from_points(rows.into_iter().flatten().collect())
    }

    /// Removes Pareto-dominated points: a point survives only if no
    /// other point has both area ≤ and cycles ≤ (with at least one
    /// strict). Applied at the call-graph root (Fig. 5(c), where P1 is
    /// pruned by P2/P3).
    pub fn pareto(&self) -> AdCurve {
        let mut kept: Vec<AdPoint> = Vec::new();
        // Points are sorted by area then cycles; sweep keeping strictly
        // decreasing cycles.
        let mut best_cycles = f64::INFINITY;
        for p in &self.points {
            if p.cycles < best_cycles {
                kept.push(p.clone());
                best_cycles = p.cycles;
            }
        }
        AdCurve { points: kept }
    }

    /// The fastest point whose area does not exceed `area_budget`
    /// (the paper's final selection step).
    pub fn best_under_area(&self, area_budget: u64) -> Option<&AdPoint> {
        self.points
            .iter()
            .filter(|p| p.area() <= area_budget)
            .min_by(|a, b| a.cycles.total_cmp(&b.cycles))
    }

    /// Renders the curve as an aligned text table for reports.
    pub fn render(&self) -> String {
        let mut out = String::from("area(GE)   cycles      instructions\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:>8}   {:>9.1}   {}\n",
                p.area(),
                p.cycles,
                p.insns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add(level: u32) -> CustomInsn {
        CustomInsn::new("add", level, 400 * level as u64)
    }

    fn mul(level: u32) -> CustomInsn {
        CustomInsn::new("mul", level, 6000 * level as u64)
    }

    /// A curve shaped like the paper's mpn_add_n Fig. 5(a): base at 202
    /// cycles, then diminishing returns with more adders.
    fn addn_curve() -> AdCurve {
        AdCurve::from_points(vec![
            AdPoint::base(202.0),
            AdPoint::new([add(2)], 109.0),
            AdPoint::new([add(4)], 75.0),
            AdPoint::new([add(8)], 60.0),
            AdPoint::new([add(16)], 53.0),
        ])
    }

    fn addmul_curve() -> AdCurve {
        AdCurve::from_points(vec![
            AdPoint::base(640.0),
            AdPoint::new([add(2), mul(1)], 280.0),
            AdPoint::new([add(4), mul(1)], 210.0),
            AdPoint::new([add(8), mul(1)], 180.0),
            AdPoint::new([add(16), mul(1)], 168.0),
        ])
    }

    #[test]
    fn from_points_dedups_keeping_best() {
        let c = AdCurve::from_points(vec![
            AdPoint::new([add(2)], 120.0),
            AdPoint::new([add(2)], 100.0),
        ]);
        assert_eq!(c.len(), 1);
        assert_eq!(c.points()[0].cycles, 100.0);
    }

    #[test]
    fn points_sorted_by_area() {
        let c = addn_curve();
        let areas: Vec<u64> = c.points().iter().map(AdPoint::area).collect();
        let mut sorted = areas.clone();
        sorted.sort();
        assert_eq!(areas, sorted);
        assert_eq!(c.points()[0].area(), 0, "base point has zero area");
    }

    #[test]
    fn combine_reduces_cartesian_25_to_9() {
        let combined = addn_curve().combine(&addmul_curve());
        assert_eq!(combined.len(), 9, "Fig. 6: 25 candidates reduce to 9");
    }

    #[test]
    fn combine_adds_cycles_and_shares_area() {
        let a = AdCurve::from_points(vec![AdPoint::new([add(4)], 10.0)]);
        let b = AdCurve::from_points(vec![AdPoint::new([add(4)], 20.0)]);
        let c = a.combine(&b);
        assert_eq!(c.len(), 1);
        assert_eq!(c.points()[0].cycles, 30.0);
        assert_eq!(c.points()[0].area(), add(4).area(), "shared, not doubled");
    }

    #[test]
    fn parallel_combine_matches_serial() {
        // Big enough that combine() itself takes the pooled path
        // (40 × 40 = 1600 ≥ PAR_COMBINE_THRESHOLD).
        let big = |family: &str| {
            AdCurve::from_points(
                (1..=40u32)
                    .map(|k| {
                        AdPoint::new(
                            [CustomInsn::new(family, k, 100 * k as u64)],
                            1000.0 / k as f64,
                        )
                    })
                    .collect(),
            )
        };
        let (a, b) = (big("alpha"), big("beta"));
        let serial = {
            let mut out = Vec::new();
            for pa in a.points() {
                for pb in b.points() {
                    out.push(AdPoint {
                        insns: pa.insns.union(&pb.insns),
                        cycles: pa.cycles + pb.cycles,
                    });
                }
            }
            AdCurve::from_points(out)
        };
        assert_eq!(a.combine(&b), serial);
        assert_eq!(a.combine_on(&b, &xpar::Pool::new(1)), serial);
        assert_eq!(a.combine_on(&b, &xpar::Pool::new(7)), serial);
    }

    #[test]
    fn pareto_prunes_inferior_points() {
        // P1: expensive and slow; dominated by P2.
        let c = AdCurve::from_points(vec![
            AdPoint::base(100.0),
            AdPoint::new([add(2)], 90.0),         // P2
            AdPoint::new([add(2), mul(1)], 95.0), // P1: more area, more cycles
            AdPoint::new([add(4), mul(1)], 40.0), // P3
        ]);
        let p = c.pareto();
        assert_eq!(p.len(), 3);
        assert!(p.points().iter().all(|pt| pt.cycles != 95.0));
    }

    #[test]
    fn map_cycles_applies_equation_1() {
        // cycles(root) = local + calls * cycles(child)
        let child = addn_curve();
        let weighted = child.map_cycles(|c| 50.0 + 4.0 * c);
        assert_eq!(weighted.points()[0].cycles, 50.0 + 4.0 * 202.0);
        assert_eq!(weighted.len(), child.len());
    }

    #[test]
    fn best_under_area_respects_budget() {
        let c = addn_curve();
        assert_eq!(c.best_under_area(0).unwrap().cycles, 202.0);
        assert_eq!(c.best_under_area(add(2).area()).unwrap().cycles, 109.0);
        assert_eq!(c.best_under_area(u64::MAX).unwrap().cycles, 53.0);
        let empty = AdCurve::default();
        assert!(empty.best_under_area(100).is_none());
    }

    #[test]
    fn constant_curve_is_single_base_point() {
        let c = AdCurve::constant(42.0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.points()[0].area(), 0);
        assert_eq!(c.points()[0].cycles, 42.0);
    }

    #[test]
    fn render_contains_all_points() {
        let text = addn_curve().render();
        assert!(text.contains("202.0"));
        assert!(text.contains("add_16"));
    }
}
