//! Custom-instruction formulation and global selection (the paper's
//! Sections 3.3 and 3.4).
//!
//! The DAC 2002 methodology accelerates a security algorithm by adding
//! custom instructions to an extensible processor. Because each library
//! routine admits *several alternative* custom instructions (varying the
//! number of adders, multipliers, lookup tables…), every routine carries
//! an **area–delay (A-D) curve** rather than one number. This crate
//! implements:
//!
//! - [`insn`]: candidate custom-instruction identities with the
//!   *dominance* relation (`add_4` subsumes `add_2`) used to reduce
//!   combined design points;
//! - [`adcurve`]: A-D points/curves, instruction-sharing-aware
//!   combination (the Cartesian product of Fig. 6, reduced 25 → 9), and
//!   Pareto pruning (Fig. 5(c));
//! - [`callgraph`]: the annotated call graph (`local_cycles`, per-edge
//!   call counts) of Fig. 4;
//! - [`select`]: bottom-up propagation of A-D curves through the call
//!   graph per Equation (1) and area-constrained selection at the root.
//!
//! # Examples
//!
//! ```
//! use tie::adcurve::{AdCurve, AdPoint};
//! use tie::insn::CustomInsn;
//!
//! // A routine with a base implementation and one accelerated variant.
//! let curve = AdCurve::from_points(vec![
//!     AdPoint::base(202.0),
//!     AdPoint::new(vec![CustomInsn::new("add", 2, 1000)], 109.0),
//! ]);
//! assert_eq!(curve.len(), 2);
//! assert_eq!(curve.best_under_area(500).unwrap().cycles, 202.0);
//! assert_eq!(curve.best_under_area(2000).unwrap().cycles, 109.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adcurve;
pub mod callgraph;
pub mod insn;
pub mod select;

pub use adcurve::{AdCurve, AdPoint};
pub use callgraph::CallGraph;
pub use insn::{CustomInsn, InsnSet};
pub use select::Selector;
