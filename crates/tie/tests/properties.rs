//! Property-based tests for the A-D-curve machinery: dominance
//! soundness, combination invariants, and selection optimality.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tie::adcurve::{AdCurve, AdPoint};
use tie::callgraph::CallGraph;
use tie::insn::{CustomInsn, InsnSet};
use tie::select::Selector;

/// Strategy: a random A-D curve over up to three instruction families.
fn curve(seed: u64, families: u32) -> AdCurve {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = vec![AdPoint::base(rng.random_range(100.0..1000.0))];
    for f in 0..families {
        let fam = format!("f{f}");
        let mut cycles = points[0].cycles;
        for level in 1..=rng.random_range(1..4u32) {
            cycles *= rng.random_range(0.4..0.95);
            points.push(AdPoint::new(
                [CustomInsn::new(fam.clone(), level, 200 * level as u64)],
                cycles,
            ));
        }
    }
    AdCurve::from_points(points)
}

proptest! {
    #[test]
    fn union_is_commutative_associative_idempotent(
        s1 in prop::collection::vec((0u8..3, 1u32..5), 0..4),
        s2 in prop::collection::vec((0u8..3, 1u32..5), 0..4),
        s3 in prop::collection::vec((0u8..3, 1u32..5), 0..4),
    ) {
        let build = |v: &[(u8, u32)]| {
            InsnSet::from_insns(
                v.iter()
                    .map(|&(f, l)| CustomInsn::new(format!("fam{f}"), l, 100 * l as u64)),
            )
        };
        let a = build(&s1);
        let b = build(&s2);
        let c = build(&s3);
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        prop_assert_eq!(a.union(&a), a.clone());
    }

    #[test]
    fn union_area_never_exceeds_sum(
        s1 in prop::collection::vec((0u8..3, 1u32..5), 0..4),
        s2 in prop::collection::vec((0u8..3, 1u32..5), 0..4),
    ) {
        let build = |v: &[(u8, u32)]| {
            InsnSet::from_insns(
                v.iter()
                    .map(|&(f, l)| CustomInsn::new(format!("fam{f}"), l, 100 * l as u64)),
            )
        };
        let a = build(&s1);
        let b = build(&s2);
        let u = a.union(&b);
        prop_assert!(u.area() <= a.area() + b.area(), "sharing/dominance can only save area");
        prop_assert!(u.area() >= a.area().max(b.area()));
    }

    #[test]
    fn pareto_is_subset_and_undominated(seed in any::<u64>()) {
        let c = curve(seed, 3);
        let p = c.pareto();
        prop_assert!(p.len() <= c.len());
        for (i, a) in p.points().iter().enumerate() {
            for (j, b) in p.points().iter().enumerate() {
                if i != j {
                    let dominated = b.area() <= a.area() && b.cycles <= a.cycles;
                    prop_assert!(!dominated, "point {i} dominated by {j}");
                }
            }
        }
        // Best point under an infinite budget is preserved.
        let best_c = c.best_under_area(u64::MAX).expect("nonempty").cycles;
        let best_p = p.best_under_area(u64::MAX).expect("nonempty").cycles;
        prop_assert_eq!(best_c, best_p);
    }

    #[test]
    fn combine_cycles_are_sums(seed1 in any::<u64>(), seed2 in any::<u64>()) {
        let a = curve(seed1, 2);
        let b = curve(seed2, 2);
        let comb = a.combine(&b);
        // Base points sum exactly.
        let base_a = a.points()[0].cycles;
        let base_b = b.points()[0].cycles;
        let base = comb
            .points()
            .iter()
            .find(|p| p.area() == 0)
            .expect("base survives combination");
        prop_assert!((base.cycles - (base_a + base_b)).abs() < 1e-9);
        // Every combined point's cycles is at least the sum of both minima.
        let min_a = a.points().iter().map(|p| p.cycles).fold(f64::MAX, f64::min);
        let min_b = b.points().iter().map(|p| p.cycles).fold(f64::MAX, f64::min);
        for p in comb.points() {
            prop_assert!(p.cycles + 1e-9 >= min_a + min_b);
        }
    }

    #[test]
    fn selection_is_optimal_under_budget(seed in any::<u64>(), budget in 0u64..3000) {
        let c = curve(seed, 3);
        if let Some(best) = c.best_under_area(budget) {
            for p in c.points() {
                if p.area() <= budget {
                    prop_assert!(best.cycles <= p.cycles + 1e-9);
                }
            }
        }
    }

    #[test]
    fn propagation_base_matches_equation_1(
        local in 0.0f64..100.0,
        calls1 in 1.0f64..10.0,
        calls2 in 1.0f64..10.0,
        seed in any::<u64>(),
    ) {
        let c1 = curve(seed, 1);
        let c2 = curve(seed.wrapping_add(1), 1);
        let mut g = CallGraph::new();
        g.add_node("root", local);
        g.add_node("a", 0.0);
        g.add_node("b", 0.0);
        g.add_call("root", "a", calls1).expect("nodes exist");
        g.add_call("root", "b", calls2).expect("nodes exist");
        let mut sel = Selector::new(g);
        sel.set_leaf_curve("a", c1.clone());
        sel.set_leaf_curve("b", c2.clone());
        let curves = sel.propagate().expect("DAG");
        let base = curves["root"]
            .points()
            .iter()
            .find(|p| p.area() == 0)
            .expect("base point");
        let expect = local + calls1 * c1.points()[0].cycles + calls2 * c2.points()[0].cycles;
        prop_assert!((base.cycles - expect).abs() < 1e-6);
    }

    #[test]
    fn bigger_budget_never_hurts(seed in any::<u64>()) {
        let c = curve(seed, 3);
        let mut last = f64::MAX;
        for budget in [0u64, 200, 400, 800, 1600, u64::MAX] {
            if let Some(p) = c.best_under_area(budget) {
                prop_assert!(p.cycles <= last + 1e-9);
                last = p.cycles;
            }
        }
    }
}
