//! Service-layer integration and property tests.
//!
//! The integration test is the crate's core promise executed end to
//! end: a job submitted to a live daemon over a real socket produces
//! the same normalized report as the same [`JobSpec`] run directly
//! in-process (the CLI path). The property tests pin the two wire
//! encodings everything else rides on — spec canonical JSON and report
//! framing — across generated inputs.

use proptest::prelude::*;
use secproc::job::{JobEnv, JobKind, JobSpec};
use std::thread;
use xobs::frames::{split, Assembler};
use xobs::report::normalize;
use xpar::Pool;
use xserve::{Bind, Client, Server, ServerConfig};

#[test]
fn daemon_and_direct_runs_agree_byte_for_byte_after_normalization() {
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".into()));
    config.executors = 2;
    config.chunk = 512; // force multi-frame streaming
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("tcp server has an address");
    let serve = thread::spawn(move || server.run());

    // A small measurement job: real ISS work, quick enough for a test.
    let mut spec = JobSpec::new(JobKind::Measure);
    spec.kernels = vec![kreg::id::ADD_N, kreg::id::MUL_1];
    spec.limbs = 4;

    let mut client = Client::connect_tcp(addr).expect("connect");
    let served = client.run_job(&spec, 0).expect("daemon job");

    let pool = Pool::from_env();
    let direct = spec.run(&JobEnv::new(&pool)).expect("direct job");

    assert_eq!(
        normalize(&served).to_string_compact(),
        normalize(&direct.to_json()).to_string_compact(),
        "daemon and direct reports must be byte-identical once normalized"
    );

    client.shutdown().expect("shutdown");
    serve.join().expect("serve thread").expect("serve loop");
}

/// A generated-but-valid spec: every field the wire encoding carries,
/// drawn from the vocabulary the parsers accept.
#[allow(clippy::too_many_arguments)] // one argument per proptest-drawn field
fn arb_spec(
    kind_ix: usize,
    core_ix: usize,
    variant_ix: usize,
    bits: usize,
    limbs: usize,
    samples: usize,
    seed: u64,
    glue_tenths: u64,
) -> JobSpec {
    let kinds = [
        JobKind::Characterize,
        JobKind::Explore,
        JobKind::Curves,
        JobKind::Measure,
    ];
    let cores = ["io".to_owned(), xr32::config::CpuConfig::ooo().core_id()];
    let variants = ["base", "accel-a4m2"];
    let mut spec = JobSpec::new(kinds[kind_ix % kinds.len()]);
    spec.core = cores[core_ix % cores.len()].to_owned();
    spec.variant = variants[variant_ix % variants.len()].to_owned();
    spec.bits = bits;
    spec.limbs = limbs;
    spec.cosim_samples = samples;
    spec.seed = seed;
    spec.glue_cost = glue_tenths as f64 / 10.0;
    if kind_ix.is_multiple_of(2) {
        spec.kernels = vec![kreg::id::ADD_N];
    }
    spec
}

proptest! {
    #[test]
    fn job_specs_round_trip_through_wire_json(
        kind_ix in 0usize..4,
        core_ix in 0usize..2,
        variant_ix in 0usize..2,
        bits in 32usize..2048,
        limbs in 0usize..64,
        samples in 1usize..12,
        seed in any::<u64>(),
        glue_tenths in 0u64..1000,
    ) {
        let spec = arb_spec(kind_ix, core_ix, variant_ix, bits, limbs, samples, seed, glue_tenths);
        let wire = spec.to_json().to_string_compact();
        let back = JobSpec::parse(&wire).expect("canonical wire JSON reparses");
        prop_assert_eq!(&back, &spec, "wire {}", wire);
        // The digest is a function of the canonical encoding alone.
        prop_assert_eq!(back.digest(), spec.digest());
    }

    #[test]
    fn framed_documents_survive_any_chunking(
        bytes in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..256,
    ) {
        // 1-, 2-, 3- and 4-byte UTF-8 characters, so chunk caps land
        // inside multibyte sequences.
        const PALETTE: [char; 8] = ['a', '"', '{', '\n', '§', '×', '—', '𝛑'];
        let doc: String = bytes
            .iter()
            .map(|b| PALETTE[*b as usize % PALETTE.len()])
            .collect();
        let frames = split(&doc, chunk);
        prop_assert!(!frames.is_empty());
        prop_assert!(frames[frames.len() - 1].last);
        // Payloads may exceed the cap only by a partial char (< 4 bytes).
        for frame in &frames {
            prop_assert!(frame.data.len() < chunk + 4, "frame of {} bytes at cap {}", frame.data.len(), chunk);
        }
        let mut asm = Assembler::new();
        let mut out = None;
        for frame in &frames {
            prop_assert!(out.is_none());
            out = asm.push(frame).expect("in-order frames assemble");
        }
        prop_assert_eq!(out.as_deref(), Some(doc.as_str()));
    }
}
