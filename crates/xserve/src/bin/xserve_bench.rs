//! Serving-layer throughput/latency envelope (`xserve-bench`).
//!
//! ```text
//! xserve-bench [JOBS] [QUERIES] [--json]
//! ```
//!
//! Boots an in-process daemon on a loopback port and drives it from
//! eight pipelined client connections through two phases:
//!
//! 1. **Jobs** — `JOBS` (default 1000) single-kernel measurement jobs
//!    submitted concurrently; per job, the submit→first-frame latency
//!    is recorded client-side, yielding `p50_ms`/`p99_ms` and
//!    `jobs_per_s`.
//! 2. **Queries** — `QUERIES` (default 1 000 000) kernel-cycle lookups
//!    cycling over 64 distinct keys, so all but the first 64 are
//!    served from the shard-locked cache: `queries_per_s`.
//!
//! The throughput/latency numbers land in the report's volatile keys
//! (stripped by normalization, carried by the BENCH envelope); the
//! deterministic keys anchor the run's shape (counts, client fan-in,
//! distinct keys).

use secproc::job::{JobKind, JobSpec};
use std::time::Instant;
use xobs::{Registry, RunReport};
use xpar::Pool;
use xserve::{Bind, Client, Request, Response, Server, ServerConfig};

const CLIENTS: usize = 8;
const DISTINCT_QUERY_KEYS: u64 = 64;
/// Queries kept in flight per connection before reading replies back.
const QUERY_BATCH: usize = 512;

fn die(msg: &str) -> ! {
    eprintln!("xserve-bench: {msg}");
    std::process::exit(1);
}

/// The unit job of the throughput phase: one cheap kernel measurement,
/// distinct per (client, index) so every job does real scheduling and
/// real work.
fn job_spec(client: usize, index: usize) -> JobSpec {
    let mut spec = JobSpec::new(JobKind::Measure);
    spec.kernels = vec![kreg::id::ADD_N];
    spec.limbs = 4;
    spec.seed = 1_000 + (client * 1_000_000 + index) as u64;
    spec
}

/// Submit this client's share pipelined, then drain the stream,
/// timing submit→first-frame per job. Returns the latencies (ms).
fn job_worker(addr: std::net::SocketAddr, client: usize, share: usize) -> Vec<f64> {
    let mut c = Client::connect_tcp(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let mut submitted_at = Vec::with_capacity(share);
    for i in 0..share {
        c.send(&Request::Submit {
            id: Some(format!("b{client}-{i}")),
            priority: 0,
            spec: job_spec(client, i),
        })
        .unwrap_or_else(|e| die(&format!("submit: {e}")));
        submitted_at.push(Instant::now());
    }
    let mut first_frame_ms = vec![f64::NAN; share];
    let mut accepted = 0usize;
    let mut finished = 0usize;
    while accepted < share || finished < share {
        match c.next_response() {
            Ok(Response::Accepted { .. }) => accepted += 1,
            Ok(Response::JobFrame { id, frame }) => {
                let i: usize = id
                    .rsplit('-')
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die(&format!("unparseable job id `{id}`")));
                if first_frame_ms[i].is_nan() {
                    first_frame_ms[i] = submitted_at[i].elapsed().as_secs_f64() * 1e3;
                }
                if frame.last {
                    finished += 1;
                }
            }
            Ok(Response::JobError { id, code, detail }) => {
                die(&format!("job {id} failed ({code}): {detail}"))
            }
            Ok(other) => die(&format!("unexpected response: {other:?}")),
            Err(e) => die(&format!("stream: {e}")),
        }
    }
    first_frame_ms
}

/// Fire this client's share of cached queries in pipelined batches.
fn query_worker(addr: std::net::SocketAddr, share: usize) {
    let mut c = Client::connect_tcp(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let mut sent = 0usize;
    while sent < share {
        let batch = QUERY_BATCH.min(share - sent);
        for i in 0..batch {
            c.send(&Request::Query {
                core: "io".into(),
                variant: "base".into(),
                kernel: "mpn_add_n".into(),
                n: 4,
                seed: ((sent + i) as u64) % DISTINCT_QUERY_KEYS,
            })
            .unwrap_or_else(|e| die(&format!("query send: {e}")));
        }
        for _ in 0..batch {
            match c.next_response() {
                Ok(Response::QueryResult { .. }) => {}
                Ok(other) => die(&format!("unexpected query response: {other:?}")),
                Err(e) => die(&format!("query stream: {e}")),
            }
        }
        sent += batch;
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

fn main() {
    let mut json = false;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else {
            positional.push(arg);
        }
    }
    let pos = |i: usize, default: usize| -> usize {
        positional
            .get(i)
            .and_then(|s| s.parse().ok())
            .unwrap_or(default)
    };
    let jobs = pos(0, 1000).max(CLIENTS);
    let queries = pos(1, 1_000_000).max(CLIENTS);

    let pool_threads = Pool::from_env().threads();
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".into()));
    config.executors = pool_threads.max(4);
    let server = Server::bind(config).unwrap_or_else(|e| die(&format!("bind: {e}")));
    let addr = server.local_addr().expect("tcp server has an address");
    let serve = std::thread::spawn(move || server.run());
    let t_start = Instant::now();

    // Phase 1: concurrent jobs.
    let t_jobs = Instant::now();
    let mut workers = Vec::new();
    for client in 0..CLIENTS {
        let share = jobs / CLIENTS + usize::from(client < jobs % CLIENTS);
        workers.push(std::thread::spawn(move || job_worker(addr, client, share)));
    }
    let mut latencies: Vec<f64> = Vec::with_capacity(jobs);
    for worker in workers {
        latencies.extend(worker.join().unwrap_or_else(|_| die("job worker panicked")));
    }
    let jobs_wall_s = t_jobs.elapsed().as_secs_f64();
    latencies.sort_by(f64::total_cmp);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let jobs_per_s = jobs as f64 / jobs_wall_s;

    // Phase 2: cached kernel-cycle queries.
    let t_q = Instant::now();
    let mut workers = Vec::new();
    for client in 0..CLIENTS {
        let share = queries / CLIENTS + usize::from(client < queries % CLIENTS);
        workers.push(std::thread::spawn(move || query_worker(addr, share)));
    }
    for worker in workers {
        worker
            .join()
            .unwrap_or_else(|_| die("query worker panicked"));
    }
    let queries_wall_s = t_q.elapsed().as_secs_f64();
    let queries_per_s = queries as f64 / queries_wall_s;

    let mut control = Client::connect_tcp(addr).unwrap_or_else(|e| die(&format!("connect: {e}")));
    let stats = control
        .stats()
        .unwrap_or_else(|e| die(&format!("stats: {e}")));
    if stats.completed < jobs as u64 {
        die(&format!(
            "only {} of {jobs} jobs completed",
            stats.completed
        ));
    }
    if stats.queries < queries as u64 {
        die(&format!(
            "only {} of {queries} queries served",
            stats.queries
        ));
    }
    control
        .shutdown()
        .unwrap_or_else(|e| die(&format!("shutdown: {e}")));
    match serve.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => die(&format!("serve loop: {e}")),
        Err(_) => die("serve loop panicked"),
    }

    let metrics = Registry::new();
    metrics.gauge("xserve.jobs_per_s").set(jobs_per_s);
    metrics.gauge("xserve.p50_ms").set(p50);
    metrics.gauge("xserve.p99_ms").set(p99);
    metrics.gauge("xserve.queries_per_s").set(queries_per_s);
    let report = RunReport::new("xserve_bench")
        .result("jobs", jobs as u64)
        .result("queries", queries as u64)
        .result("clients", CLIENTS as u64)
        .result("distinct_query_keys", DISTINCT_QUERY_KEYS)
        .result("jobs_per_s", jobs_per_s)
        .result("p50_ms", p50)
        .result("p99_ms", p99)
        .result("queries_per_s", queries_per_s)
        .with_metrics(metrics.snapshot())
        .with_wall_ms(t_start.elapsed().as_secs_f64() * 1e3)
        .with_threads(pool_threads);

    if json {
        println!("{}", report.to_json().to_string_compact());
        return;
    }
    println!("xserve-bench — serving layer envelope\n");
    println!(
        "jobs:    {jobs} concurrent over {CLIENTS} connections in {:.2}s — {:.0} jobs/s",
        jobs_wall_s, jobs_per_s
    );
    println!("         submit→first-frame p50 {p50:.2} ms, p99 {p99:.2} ms");
    println!(
        "queries: {queries} over {DISTINCT_QUERY_KEYS} keys in {:.2}s — {:.0} queries/s",
        queries_wall_s, queries_per_s
    );
}
