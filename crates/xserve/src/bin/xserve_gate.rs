//! CI smoke gate for the serving layer (run by `scripts/ci.sh`).
//!
//! Boots an in-process daemon (one executor, in-memory cache) and
//! checks the three service invariants:
//!
//! 1. **Byte-identity** — a job run through the daemon and the same
//!    [`JobSpec`] run directly in-process produce identical normalized
//!    reports (volatile wall-clock/throughput keys stripped).
//! 2. **Cancellation** — a queued job cancelled before execution
//!    surfaces the stable `4004 PROTO_CANCELLED` code and counts in
//!    the scheduler's `cancelled` stat.
//! 3. **Query coherence** — concurrent clients hammering the cached
//!    kernel-cycle query path all observe the same cycle count per
//!    key, and the daemon serves ≥ 1000 of them.
//!
//! Exits 0 and prints `xserve-gate: PASS` on success; exits 1 with a
//! diagnostic on the first violated invariant.

use secproc::error::codes;
use secproc::job::{JobEnv, JobKind, JobSpec};
use std::collections::BTreeMap;
use std::thread;
use xobs::report::normalize;
use xpar::Pool;
use xserve::{Bind, Client, Response, Server, ServerConfig};

fn fail(msg: &str) -> ! {
    eprintln!("xserve-gate: FAIL: {msg}");
    std::process::exit(1);
}

/// A characterization spec small enough for a smoke gate.
fn charact_spec() -> JobSpec {
    let mut spec = JobSpec::new(JobKind::Characterize);
    spec.limbs = 8;
    spec.train_samples = 8;
    spec.validation_points = 4;
    spec
}

/// A measurement spec heavy enough to hold the single executor busy
/// while the cancellation races in behind it.
fn blocker_spec() -> JobSpec {
    let mut spec = JobSpec::new(JobKind::Measure);
    spec.kernels = kreg::id::MPN.to_vec();
    spec.limbs = 8;
    spec
}

fn main() {
    let mut config = ServerConfig::new(Bind::Tcp("127.0.0.1:0".into()));
    config.executors = 1; // deterministic cancel-while-queued ordering
    let server = Server::bind(config).unwrap_or_else(|e| fail(&format!("bind: {e}")));
    let addr = server.local_addr().expect("tcp server has an address");
    let serve = thread::spawn(move || server.run());

    // 1. Byte-identity: daemon run vs direct in-process run.
    let spec = charact_spec();
    let mut client = Client::connect_tcp(addr).unwrap_or_else(|e| fail(&format!("connect: {e}")));
    let served = client
        .run_job(&spec, 0)
        .unwrap_or_else(|e| fail(&format!("daemon job: {e}")));
    let pool = Pool::from_env();
    let direct = spec
        .run(&JobEnv::new(&pool))
        .unwrap_or_else(|e| fail(&format!("direct job: {e}")));
    let (served_n, direct_n) = (normalize(&served), normalize(&direct.to_json()));
    if served_n != direct_n {
        eprintln!("--- daemon ---\n{}", served_n.to_string_pretty());
        eprintln!("--- direct ---\n{}", direct_n.to_string_pretty());
        fail("daemon and direct reports differ after normalization");
    }
    println!("xserve-gate: byte-identity holds (daemon == direct, normalized)");

    // 2. Cancellation: queue a job behind a blocker, cancel it, and
    // expect the stable 4004 code on its stream.
    let (blocker_id, _) = client
        .submit(&blocker_spec(), 1, Some("blocker"))
        .unwrap_or_else(|e| fail(&format!("submit blocker: {e}")));
    let (victim_id, _) = client
        .submit(&charact_spec(), 0, Some("victim"))
        .unwrap_or_else(|e| fail(&format!("submit victim: {e}")));
    client
        .cancel(&victim_id)
        .unwrap_or_else(|e| fail(&format!("cancel: {e}")));
    let mut saw_cancel = false;
    let mut blocker_last = false;
    while !(saw_cancel && blocker_last) {
        match client.next_response() {
            Ok(Response::JobError { id, code, .. }) if id == victim_id => {
                if code != codes::PROTO_CANCELLED {
                    fail(&format!("victim ended with code {code}, want 4004"));
                }
                saw_cancel = true;
            }
            Ok(Response::JobFrame { id, frame }) if id == blocker_id => {
                blocker_last |= frame.last;
            }
            Ok(other) => fail(&format!("unexpected response: {other:?}")),
            Err(e) => fail(&format!("stream: {e}")),
        }
    }
    println!("xserve-gate: cancellation surfaces code 4004");

    // 3. Query coherence: 8 clients x 128 queries over 16 keys.
    let mut workers = Vec::new();
    for _ in 0..8 {
        workers.push(thread::spawn(move || {
            let mut c = Client::connect_tcp(addr)?;
            let mut seen = BTreeMap::new();
            for i in 0..128u64 {
                let seed = i % 16;
                let cycles = c.query("io", "base", "mpn_add_n", 4, seed)?;
                seen.insert(seed, cycles);
            }
            Ok::<_, secproc::Error>(seen)
        }));
    }
    let mut reference: Option<BTreeMap<u64, f64>> = None;
    for worker in workers {
        let seen = worker
            .join()
            .unwrap_or_else(|_| fail("query worker panicked"))
            .unwrap_or_else(|e| fail(&format!("query: {e}")));
        match &reference {
            None => reference = Some(seen),
            Some(reference) if *reference != seen => {
                fail("clients observed different cycle counts for the same key")
            }
            Some(_) => {}
        }
    }
    println!("xserve-gate: 8 clients agree on all cached query points");

    let stats = client
        .stats()
        .unwrap_or_else(|e| fail(&format!("stats: {e}")));
    if stats.cancelled < 1 {
        fail("scheduler counted no cancellations");
    }
    if stats.queries < 1000 {
        fail(&format!(
            "served only {} queries, want >= 1000",
            stats.queries
        ));
    }
    if stats.completed < 2 {
        fail(&format!("completed {} jobs, want >= 2", stats.completed));
    }

    client
        .shutdown()
        .unwrap_or_else(|e| fail(&format!("shutdown: {e}")));
    match serve.join() {
        Ok(Ok(())) => {}
        Ok(Err(e)) => fail(&format!("serve loop: {e}")),
        Err(_) => fail("serve loop panicked"),
    }
    println!(
        "xserve-gate: PASS ({} jobs, {} queries, {} cancelled)",
        stats.completed, stats.queries, stats.cancelled
    );
}
