//! The methodology daemon.
//!
//! ```text
//! xserve [--tcp ADDR | --unix PATH] [--executors N] [--chunk BYTES]
//! ```
//!
//! Defaults: `--tcp 127.0.0.1:7444`, four executors, 8 KiB frames.
//! The worker pool is sized by `WSP_THREADS` (else host parallelism)
//! and the kernel-cycle cache persists at `$WSP_KCACHE` (default
//! `target/kcache.json`) — the same environment contract as the CLI
//! harnesses, so a daemon and a CLI run share warm starts. Runs until
//! a client sends `{"op":"shutdown"}`; queued jobs drain as `4005`
//! job errors and the cache is flushed before exit.

use secproc::kcache::KCache;
use std::path::PathBuf;
use xserve::{Bind, Server, ServerConfig};

fn main() {
    let mut bind = Bind::Tcp("127.0.0.1:7444".into());
    let mut executors = 4usize;
    let mut chunk = xobs::frames::DEFAULT_CHUNK;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("xserve: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--tcp" => bind = Bind::Tcp(value("--tcp")),
            "--unix" => bind = Bind::Unix(PathBuf::from(value("--unix"))),
            "--executors" => {
                executors = value("--executors").parse().unwrap_or_else(|_| {
                    eprintln!("xserve: --executors needs an integer");
                    std::process::exit(2);
                })
            }
            "--chunk" => {
                chunk = value("--chunk").parse().unwrap_or_else(|_| {
                    eprintln!("xserve: --chunk needs an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("xserve: unknown argument `{other}`");
                eprintln!(
                    "usage: xserve [--tcp ADDR | --unix PATH] [--executors N] [--chunk BYTES]"
                );
                std::process::exit(2);
            }
        }
    }

    let mut config = ServerConfig::new(bind.clone());
    config.executors = executors;
    config.chunk = chunk;
    config.kcache = KCache::open_default();

    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("xserve: cannot bind {bind:?}: {e}");
            std::process::exit(1);
        }
    };
    match (&bind, server.local_addr()) {
        (_, Some(addr)) => eprintln!("xserve: listening on tcp {addr}"),
        (Bind::Unix(path), None) => eprintln!("xserve: listening on unix {}", path.display()),
        _ => {}
    }
    if let Err(e) = server.run() {
        eprintln!("xserve: serve loop failed: {e}");
        std::process::exit(1);
    }
}
