//! Methodology-as-a-service: the serving layer (DESIGN §18).
//!
//! Every methodology the workspace implements — kernel
//! characterization, §4.3 design-space exploration with the
//! cross-product lattice, area/delay curve extraction, direct
//! measurement, fault campaigns — is reachable two ways that produce
//! the same answer:
//!
//! * **CLI**: a bench binary parses its arguments into a
//!   [`secproc::job::JobSpec`] and calls `run` in-process.
//! * **Service**: the `xserve` daemon accepts the *same* serialized
//!   spec over a line-delimited JSON socket ([`proto`]), schedules it
//!   onto the shared worker pool with priorities, per-job fault
//!   policies and cooperative cancellation ([`server`]), and streams
//!   the schema-8 run report back as bounded frames ([`xobs::frames`]).
//!
//! Because the spec is the single entry point and `JobSpec::run`
//! assembles the complete report (fresh metrics/span sinks per job),
//! the two paths are byte-identical for every deterministic field; only
//! volatile wall-clock/throughput keys differ, and `xobs::report::
//! normalize` strips exactly those. The daemon additionally serves
//! point lookups of kernel-cycle measurements from the shard-locked
//! [`secproc::kcache::KCache`] (`query` op), so downstream tools can
//! treat a warm daemon as a cycle oracle.
//!
//! Binaries: `xserve` (the daemon), `xserve-gate` (CI smoke: daemon ≡
//! CLI byte-identity, cancellation, concurrent queries),
//! `xserve-bench` (throughput/latency envelope numbers).

pub mod client;
pub mod proto;
pub mod server;

pub use client::Client;
pub use proto::{Request, Response, StatsBody};
pub use server::{Bind, Server, ServerConfig};
