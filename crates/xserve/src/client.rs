//! A blocking line-JSON client for the daemon.
//!
//! The client is synchronous and single-connection: requests go out as
//! one line each, responses come back in arrival order. Job reports
//! arrive as interleaved frames; [`Client::run_job`] hides the
//! reassembly for the common submit-and-wait case, while
//! [`Client::send`]/[`Client::next_response`] expose the raw stream
//! for pipelined harnesses that keep many jobs or queries in flight.
//!
//! Transport failures surface as the protocol's `4001` code so every
//! client-visible failure — local or remote — carries one stable
//! numeric code.

use crate::proto::{Request, Response, StatsBody};
use crate::server::Bind;
use secproc::error::{codes, Error};
use secproc::job::JobSpec;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::os::unix::net::UnixStream;
use std::path::Path;
use xobs::{Assembler, Json};

/// A connected client.
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    /// Job traffic (frames, job errors) read past while waiting for a
    /// request's direct reply; replayed by [`Client::next_response`].
    backlog: VecDeque<Response>,
}

impl Client {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// `4001` on connection failure.
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> Result<Client, Error> {
        let stream = TcpStream::connect(addr).map_err(io_error)?;
        let w = stream.try_clone().map_err(io_error)?;
        Ok(Client {
            reader: Box::new(BufReader::new(stream)),
            writer: Box::new(BufWriter::new(w)),
            backlog: VecDeque::new(),
        })
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// `4001` on connection failure.
    pub fn connect_unix(path: impl AsRef<Path>) -> Result<Client, Error> {
        let stream = UnixStream::connect(path).map_err(io_error)?;
        let w = stream.try_clone().map_err(io_error)?;
        Ok(Client {
            reader: Box::new(BufReader::new(stream)),
            writer: Box::new(BufWriter::new(w)),
            backlog: VecDeque::new(),
        })
    }

    /// Connects to either transport.
    ///
    /// # Errors
    ///
    /// `4001` on connection failure.
    pub fn connect(bind: &Bind) -> Result<Client, Error> {
        match bind {
            Bind::Tcp(addr) => Client::connect_tcp(addr.as_str()),
            Bind::Unix(path) => Client::connect_unix(path),
        }
    }

    /// Writes one request line (flushed immediately).
    ///
    /// # Errors
    ///
    /// `4001` on write failure.
    pub fn send(&mut self, req: &Request) -> Result<(), Error> {
        writeln!(self.writer, "{}", req.to_json().to_string_compact()).map_err(io_error)?;
        self.writer.flush().map_err(io_error)
    }

    /// The next response: backlogged job traffic first (see
    /// [`Client::next_reply`]'s skimming), then the wire.
    ///
    /// # Errors
    ///
    /// `4001` on read failure, EOF, or an unparseable line.
    pub fn next_response(&mut self) -> Result<Response, Error> {
        if let Some(resp) = self.backlog.pop_front() {
            return Ok(resp);
        }
        self.read_response()
    }

    /// The next *direct reply*, skimming interleaved job traffic into
    /// the backlog — request/reply methods stay usable while jobs
    /// stream on the same connection.
    fn next_reply(&mut self) -> Result<Response, Error> {
        loop {
            match self.read_response()? {
                resp @ (Response::JobFrame { .. } | Response::JobError { .. }) => {
                    self.backlog.push_back(resp);
                }
                resp => return Ok(resp),
            }
        }
    }

    fn read_response(&mut self) -> Result<Response, Error> {
        let mut line = String::new();
        loop {
            line.clear();
            let n = self.reader.read_line(&mut line).map_err(io_error)?;
            if n == 0 {
                return Err(io_error(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed",
                )));
            }
            if !line.trim().is_empty() {
                return Response::parse(line.trim_end());
            }
        }
    }

    /// Submits a job and returns `(id, digest)` once the server
    /// accepts it.
    ///
    /// # Errors
    ///
    /// The server's error code on rejection, `4001` on transport
    /// failure.
    pub fn submit(
        &mut self,
        spec: &JobSpec,
        priority: i64,
        id: Option<&str>,
    ) -> Result<(String, String), Error> {
        self.send(&Request::Submit {
            id: id.map(str::to_owned),
            priority,
            spec: spec.clone(),
        })?;
        match self.next_reply()? {
            Response::Accepted { id, digest } => Ok((id, digest)),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a job and blocks until its full report document
    /// arrives, reassembling the frames. Assumes this connection has
    /// no other job in flight.
    ///
    /// # Errors
    ///
    /// The job's error code (`4004` when cancelled) if it ends without
    /// a report, `4001` on transport failure.
    pub fn run_job(&mut self, spec: &JobSpec, priority: i64) -> Result<Json, Error> {
        let (id, _digest) = self.submit(spec, priority, None)?;
        let mut asm = Assembler::new();
        loop {
            match self.next_response()? {
                Response::JobFrame { id: fid, frame } if fid == id => {
                    let done = asm.push(&frame).map_err(|e| Error::Protocol {
                        code: codes::PROTO_BAD_REQUEST,
                        detail: format!("frame stream corrupt: {e}"),
                    })?;
                    if let Some(doc) = done {
                        return xobs::json::parse(&doc).map_err(|e| Error::Protocol {
                            code: codes::PROTO_BAD_REQUEST,
                            detail: format!("report document corrupt: {e}"),
                        });
                    }
                }
                Response::JobError {
                    id: fid,
                    code,
                    detail,
                } if fid == id => {
                    return Err(Error::Protocol { code, detail });
                }
                _ => {} // another job's traffic on a shared connection
            }
        }
    }

    /// One kernel-cycle query.
    ///
    /// # Errors
    ///
    /// The server's error code on failure, `4001` on transport
    /// failure.
    pub fn query(
        &mut self,
        core: &str,
        variant: &str,
        kernel: &str,
        n: usize,
        seed: u64,
    ) -> Result<f64, Error> {
        self.send(&Request::Query {
            core: core.to_owned(),
            variant: variant.to_owned(),
            kernel: kernel.to_owned(),
            n,
            seed,
        })?;
        match self.next_reply()? {
            Response::QueryResult { cycles } => Ok(cycles),
            other => Err(unexpected(&other)),
        }
    }

    /// Cancels a live job.
    ///
    /// # Errors
    ///
    /// The server's error code when the id is unknown, `4001` on
    /// transport failure.
    pub fn cancel(&mut self, id: &str) -> Result<(), Error> {
        self.send(&Request::Cancel { id: id.to_owned() })?;
        match self.next_reply()? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the scheduler counters.
    ///
    /// # Errors
    ///
    /// `4001` on transport failure.
    pub fn stats(&mut self) -> Result<StatsBody, Error> {
        self.send(&Request::Stats)?;
        match self.next_reply()? {
            Response::Stats(body) => Ok(body),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the server to shut down gracefully.
    ///
    /// # Errors
    ///
    /// `4001` on transport failure.
    pub fn shutdown(&mut self) -> Result<(), Error> {
        self.send(&Request::Shutdown)?;
        match self.next_reply()? {
            Response::Ok => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

fn io_error(e: std::io::Error) -> Error {
    Error::Protocol {
        code: codes::PROTO_BAD_REQUEST,
        detail: format!("connection i/o failed: {e}"),
    }
}

fn unexpected(resp: &Response) -> Error {
    match resp {
        Response::Error { code, detail } => Error::Protocol {
            code: *code,
            detail: detail.clone(),
        },
        other => Error::Protocol {
            code: codes::PROTO_BAD_REQUEST,
            detail: format!("unexpected response: {:?}", other),
        },
    }
}
