//! The line-delimited JSON wire protocol.
//!
//! Every request and every response is one compact JSON object on one
//! line. The request vocabulary is deliberately tiny — `submit`,
//! `cancel`, `query`, `stats`, `shutdown` — because the real API
//! surface is the [`JobSpec`] carried inside `submit`: the daemon runs
//! exactly the spec a CLI harness would run, so the protocol only has
//! to move specs in and framed reports out.
//!
//! Malformed traffic maps onto the workspace error vocabulary
//! ([`secproc::error::codes`]): an unparseable or incomplete request is
//! `4001 PROTO_BAD_REQUEST`, an unknown op is `4002 PROTO_UNKNOWN`, and
//! spec-level problems keep their own codes (`5002 JOB_SPEC`, …), so a
//! client can tell "you spoke garbage" from "that job can never run".

use secproc::error::{codes, Error};
use secproc::job::JobSpec;
use xobs::{Frame, Json};

/// A client request, as parsed from one line of wire JSON.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue a job. `id` defaults to a server-assigned one;
    /// `priority` defaults to 0 (higher runs earlier; ties run in
    /// submission order).
    Submit {
        /// Client-chosen job id (must be unused among live jobs).
        id: Option<String>,
        /// Scheduling priority; higher pops first.
        priority: i64,
        /// The job to run — the single public entry point.
        spec: JobSpec,
    },
    /// Fire the cancellation token of a queued or running job.
    Cancel {
        /// The job to cancel.
        id: String,
    },
    /// One kernel-cycle point from the shard-locked cache (computed on
    /// first touch).
    Query {
        /// Core spec string (e.g. `io`, `ooo`, `io+mul3`).
        core: String,
        /// Kernel variant tag (e.g. `base`, `mac2`).
        variant: String,
        /// Kernel name (e.g. `mpn_add_n`).
        kernel: String,
        /// Operand size in limbs.
        n: usize,
        /// Stimulus seed.
        seed: u64,
    },
    /// Scheduler and cache counters.
    Stats,
    /// Stop accepting work, fail queued jobs with `4005`, flush the
    /// cache and exit the serve loop.
    Shutdown,
}

impl Request {
    /// Renders the request as its wire JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Request::Submit { id, priority, spec } => {
                let mut obj = Json::obj().set("op", "submit");
                if let Some(id) = id {
                    obj = obj.set("id", id.clone());
                }
                obj.set("priority", *priority).set("spec", spec.to_json())
            }
            Request::Cancel { id } => Json::obj().set("op", "cancel").set("id", id.clone()),
            Request::Query {
                core,
                variant,
                kernel,
                n,
                seed,
            } => Json::obj()
                .set("op", "query")
                .set("core", core.clone())
                .set("variant", variant.clone())
                .set("kernel", kernel.clone())
                .set("n", *n)
                .set("seed", *seed),
            Request::Stats => Json::obj().set("op", "stats"),
            Request::Shutdown => Json::obj().set("op", "shutdown"),
        }
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// `PROTO_BAD_REQUEST` for non-JSON or missing/ill-typed fields,
    /// `PROTO_UNKNOWN` for an unknown `op`, and the spec's own error
    /// for an invalid embedded [`JobSpec`].
    pub fn parse(line: &str) -> Result<Request, Error> {
        let v = xobs::json::parse(line).map_err(|e| bad_request(format!("bad JSON: {e}")))?;
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("missing string field `op`"))?;
        match op {
            "submit" => {
                let spec = v
                    .get("spec")
                    .ok_or_else(|| bad_request("submit without `spec`"))?;
                Ok(Request::Submit {
                    id: v.get("id").and_then(Json::as_str).map(str::to_owned),
                    priority: v
                        .get("priority")
                        .and_then(Json::as_f64)
                        .map_or(0, |p| p as i64),
                    spec: JobSpec::from_json(spec)?,
                })
            }
            "cancel" => Ok(Request::Cancel {
                id: str_field(&v, "id")?,
            }),
            "query" => Ok(Request::Query {
                core: str_field(&v, "core")?,
                variant: str_field(&v, "variant")?,
                kernel: str_field(&v, "kernel")?,
                n: num_field(&v, "n")? as usize,
                seed: num_field(&v, "seed")? as u64,
            }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(Error::Protocol {
                code: codes::PROTO_UNKNOWN,
                detail: format!("unknown op `{other}`"),
            }),
        }
    }
}

/// Scheduler counters, as reported by the `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsBody {
    /// Jobs accepted over the daemon's lifetime.
    pub submitted: u64,
    /// Jobs that finished with a streamed report.
    pub completed: u64,
    /// Jobs that surfaced the `4004` cancellation code.
    pub cancelled: u64,
    /// Jobs that failed with any other code.
    pub failed: u64,
    /// Kernel-cycle queries served.
    pub queries: u64,
    /// Jobs currently waiting in the priority queue.
    pub queue_depth: u64,
    /// Worker threads in the shared measurement pool.
    pub threads: u64,
    /// Entries in the kernel-cycle cache.
    pub cache_entries: u64,
}

/// A server response, as written to one wire line.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A submit was queued.
    Accepted {
        /// The job's id (server-assigned when the submit had none).
        id: String,
        /// The spec digest, `{:016x}` — equal for equal specs.
        digest: String,
    },
    /// One slice of a job's framed report document.
    JobFrame {
        /// The job this frame belongs to.
        id: String,
        /// The frame (`seq`/`last`/`data`).
        frame: Frame,
    },
    /// A job ended without a report (cancelled jobs carry `4004`,
    /// shutdown-drained jobs `4005`).
    JobError {
        /// The job that ended.
        id: String,
        /// Stable numeric error code.
        code: u32,
        /// Human-readable detail.
        detail: String,
    },
    /// A query's kernel-cycle count.
    QueryResult {
        /// Measured (or cache-served) cycles.
        cycles: f64,
    },
    /// Scheduler counters.
    Stats(StatsBody),
    /// A request with no payload succeeded (cancel, shutdown).
    Ok,
    /// A request failed before doing anything.
    Error {
        /// Stable numeric error code.
        code: u32,
        /// Human-readable detail.
        detail: String,
    },
}

impl Response {
    /// Renders the response as its wire JSON object.
    pub fn to_json(&self) -> Json {
        match self {
            Response::Accepted { id, digest } => Json::obj()
                .set("type", "accepted")
                .set("id", id.clone())
                .set("digest", digest.clone()),
            Response::JobFrame { id, frame } => Json::obj()
                .set("type", "frame")
                .set("id", id.clone())
                .set("seq", frame.seq)
                .set("last", frame.last)
                .set("data", frame.data.clone()),
            Response::JobError { id, code, detail } => Json::obj()
                .set("type", "job_error")
                .set("id", id.clone())
                .set("code", *code)
                .set("detail", detail.clone()),
            Response::QueryResult { cycles } => {
                Json::obj().set("type", "result").set("cycles", *cycles)
            }
            Response::Stats(s) => Json::obj()
                .set("type", "stats")
                .set("submitted", s.submitted)
                .set("completed", s.completed)
                .set("cancelled", s.cancelled)
                .set("failed", s.failed)
                .set("queries", s.queries)
                .set("queue_depth", s.queue_depth)
                .set("threads", s.threads)
                .set("cache_entries", s.cache_entries),
            Response::Ok => Json::obj().set("type", "ok"),
            Response::Error { code, detail } => Json::obj()
                .set("type", "error")
                .set("code", *code)
                .set("detail", detail.clone()),
        }
    }

    /// Parses one wire line (the client side of [`Response::to_json`]).
    ///
    /// # Errors
    ///
    /// `PROTO_BAD_REQUEST` when the line is not a response object.
    pub fn parse(line: &str) -> Result<Response, Error> {
        let v = xobs::json::parse(line).map_err(|e| bad_request(format!("bad JSON: {e}")))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_request("missing string field `type`"))?;
        match ty {
            "accepted" => Ok(Response::Accepted {
                id: str_field(&v, "id")?,
                digest: str_field(&v, "digest")?,
            }),
            "frame" => Ok(Response::JobFrame {
                id: str_field(&v, "id")?,
                frame: Frame {
                    seq: num_field(&v, "seq")? as u64,
                    last: matches!(v.get("last"), Some(Json::Bool(true))),
                    data: str_field(&v, "data")?,
                },
            }),
            "job_error" => Ok(Response::JobError {
                id: str_field(&v, "id")?,
                code: num_field(&v, "code")? as u32,
                detail: str_field(&v, "detail")?,
            }),
            "result" => Ok(Response::QueryResult {
                cycles: num_field(&v, "cycles")?,
            }),
            "stats" => {
                let n = |k: &str| v.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
                Ok(Response::Stats(StatsBody {
                    submitted: n("submitted"),
                    completed: n("completed"),
                    cancelled: n("cancelled"),
                    failed: n("failed"),
                    queries: n("queries"),
                    queue_depth: n("queue_depth"),
                    threads: n("threads"),
                    cache_entries: n("cache_entries"),
                }))
            }
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error {
                code: num_field(&v, "code")? as u32,
                detail: str_field(&v, "detail")?,
            }),
            other => Err(bad_request(format!("unknown response type `{other}`"))),
        }
    }
}

fn bad_request(detail: impl Into<String>) -> Error {
    Error::Protocol {
        code: codes::PROTO_BAD_REQUEST,
        detail: detail.into(),
    }
}

fn str_field(v: &Json, key: &str) -> Result<String, Error> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| bad_request(format!("missing string field `{key}`")))
}

fn num_field(v: &Json, key: &str) -> Result<f64, Error> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| bad_request(format!("missing numeric field `{key}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use secproc::job::JobKind;

    #[test]
    fn requests_round_trip_through_wire_json() {
        let reqs = vec![
            Request::Submit {
                id: Some("j1".into()),
                priority: 3,
                spec: JobSpec::new(JobKind::Characterize),
            },
            Request::Submit {
                id: None,
                priority: 0,
                spec: JobSpec::explore(512, 6),
            },
            Request::Cancel { id: "j1".into() },
            Request::Query {
                core: "io".into(),
                variant: "base".into(),
                kernel: "mpn_add_n".into(),
                n: 8,
                seed: 42,
            },
            Request::Stats,
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_json().to_string_compact();
            assert_eq!(Request::parse(&line).unwrap(), req, "line {line}");
        }
    }

    #[test]
    fn responses_round_trip_through_wire_json() {
        let resps = vec![
            Response::Accepted {
                id: "j1".into(),
                digest: format!("{:016x}", 0xdead_beefu64),
            },
            Response::JobFrame {
                id: "j1".into(),
                frame: Frame {
                    seq: 2,
                    last: true,
                    data: "tail".into(),
                },
            },
            Response::JobError {
                id: "j1".into(),
                code: codes::PROTO_CANCELLED,
                detail: "job cancelled".into(),
            },
            Response::QueryResult { cycles: 1234.5 },
            Response::Stats(StatsBody {
                submitted: 9,
                completed: 7,
                cancelled: 1,
                failed: 1,
                queries: 1000,
                queue_depth: 0,
                threads: 4,
                cache_entries: 64,
            }),
            Response::Ok,
            Response::Error {
                code: codes::PROTO_UNKNOWN,
                detail: "unknown op `frobnicate`".into(),
            },
        ];
        for resp in resps {
            let line = resp.to_json().to_string_compact();
            assert_eq!(Response::parse(&line).unwrap(), resp, "line {line}");
        }
    }

    #[test]
    fn malformed_traffic_gets_the_protocol_codes() {
        assert_eq!(Request::parse("not json").unwrap_err().code(), 4001);
        assert_eq!(Request::parse(r#"{"spec":{}}"#).unwrap_err().code(), 4001);
        assert_eq!(
            Request::parse(r#"{"op":"frobnicate"}"#).unwrap_err().code(),
            4002
        );
        // An embedded spec problem keeps its spec-level code.
        assert_eq!(
            Request::parse(r#"{"op":"submit","spec":{"kind":"nope"}}"#)
                .unwrap_err()
                .code(),
            5002
        );
        assert_eq!(Response::parse("{}").unwrap_err().code(), 4001);
    }
}
