//! The serving loop: listener, priority scheduler, executors.
//!
//! One [`Server`] owns the shared worker [`Pool`] and the shard-locked
//! kernel-cycle [`KCache`] for every job and query it ever runs — the
//! same sharing discipline the CLI harness uses, which is what makes a
//! daemon run of a [`JobSpec`] byte-identical (after normalization) to
//! a CLI run of the same spec.
//!
//! Threads: one accept loop, one reader thread per connection, and a
//! fixed set of executor threads draining a priority queue (higher
//! `priority` first, submission order within a priority). Executors
//! run jobs through [`JobSpec::run`] with a per-job [`CancelToken`];
//! results stream back as bounded frames interleaved with the
//! connection's other responses, each line written under the
//! connection's writer lock.
//!
//! Shutdown is graceful: the flag flips, queued jobs drain as `4005
//! PROTO_SHUTDOWN` job errors, executors finish their in-flight jobs,
//! the cache is persisted, and [`Server::run`] returns (no process
//! exit — in-process harnesses reuse the thread).

use crate::proto::{Request, Response, StatsBody};
use secproc::error::{codes, Error};
use secproc::job::{cached_kernel_cycles, JobEnv, JobKind, JobSpec};
use secproc::kcache::KCache;
use std::cmp::Ordering as CmpOrdering;
use std::collections::{BinaryHeap, HashMap};
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use xobs::frames;
use xpar::{CancelToken, Pool};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A TCP address, e.g. `127.0.0.1:7444` (port `0` picks a free
    /// port; see [`Server::local_addr`]).
    Tcp(String),
    /// A Unix-domain socket path (an existing socket file is
    /// replaced).
    Unix(PathBuf),
}

/// Server construction knobs. The pool and cache are owned here so a
/// harness can hand the server an in-memory cache or an explicitly
/// sized pool; the daemon binary passes the environment defaults.
pub struct ServerConfig {
    /// Listen address.
    pub bind: Bind,
    /// Executor threads draining the job queue (clamped to ≥ 1).
    pub executors: usize,
    /// Frame payload cap in bytes for streamed reports.
    pub chunk: usize,
    /// The shared measurement pool (jobs fan out onto it).
    pub pool: Pool,
    /// The shared kernel-cycle cache (in-memory by default; pass
    /// [`KCache::open_default`] for persistence).
    pub kcache: KCache,
}

impl ServerConfig {
    /// Defaults: environment-sized pool, in-memory cache, four
    /// executors, [`frames::DEFAULT_CHUNK`] frames.
    pub fn new(bind: Bind) -> Self {
        ServerConfig {
            bind,
            executors: 4,
            chunk: frames::DEFAULT_CHUNK,
            pool: Pool::from_env(),
            kcache: KCache::new(),
        }
    }
}

/// A bound, not-yet-serving daemon instance.
pub struct Server {
    listener: Listener,
    executors: usize,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and builds the shared state.
    ///
    /// # Errors
    ///
    /// Propagates socket binding failures.
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = match &config.bind {
            Bind::Tcp(addr) => Listener::Tcp(TcpListener::bind(addr.as_str())?),
            Bind::Unix(path) => {
                let _ = std::fs::remove_file(path);
                Listener::Unix(UnixListener::bind(path)?)
            }
        };
        // Re-resolve the bind so shutdown's unblocking self-connect
        // reaches the actual socket even when the caller asked for
        // port 0.
        let resolved = match (&listener, &config.bind) {
            (Listener::Tcp(l), _) => Bind::Tcp(l.local_addr()?.to_string()),
            (_, bind) => bind.clone(),
        };
        Ok(Server {
            listener,
            executors: config.executors.max(1),
            shared: Arc::new(Shared {
                pool: config.pool,
                kcache: config.kcache,
                chunk: config.chunk.max(1),
                bind: resolved,
                queue: Mutex::new(BinaryHeap::new()),
                queue_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                next_seq: AtomicU64::new(0),
                next_id: AtomicU64::new(0),
                jobs: Mutex::new(HashMap::new()),
                stats: Counters::default(),
            }),
        })
    }

    /// The bound TCP address (`None` for a Unix socket) — how a
    /// port-0 harness finds its server.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        match &self.listener {
            Listener::Tcp(l) => l.local_addr().ok(),
            Listener::Unix(_) => None,
        }
    }

    /// Serves until a `shutdown` request: accepts connections, runs
    /// jobs, then drains, persists the cache and returns.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures.
    pub fn run(self) -> io::Result<()> {
        let mut executors = Vec::new();
        for _ in 0..self.executors {
            let shared = Arc::clone(&self.shared);
            executors.push(thread::spawn(move || executor_loop(&shared)));
        }
        loop {
            let conn = self.listener.accept()?;
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let shared = Arc::clone(&self.shared);
            thread::spawn(move || handle_conn(&shared, conn));
        }
        for handle in executors {
            let _ = handle.join();
        }
        if let Bind::Unix(path) = &self.shared.bind {
            let _ = std::fs::remove_file(path);
        }
        let _ = self.shared.kcache.save();
        Ok(())
    }
}

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => Ok(Conn::Tcp(l.accept()?.0)),
            Listener::Unix(l) => Ok(Conn::Unix(l.accept()?.0)),
        }
    }
}

/// One accepted connection, transport-erased.
enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    fn split(self) -> io::Result<(Box<dyn BufRead + Send>, Box<dyn Write + Send>)> {
        Ok(match self {
            Conn::Tcp(s) => {
                let w = s.try_clone()?;
                (
                    Box::new(BufReader::new(s)),
                    Box::new(BufWriter::new(w)) as Box<dyn Write + Send>,
                )
            }
            Conn::Unix(s) => {
                let w = s.try_clone()?;
                (
                    Box::new(BufReader::new(s)),
                    Box::new(BufWriter::new(w)) as Box<dyn Write + Send>,
                )
            }
        })
    }
}

/// A connection's write half, shared between its reader thread (acks,
/// query results) and the executors streaming its jobs' frames. Every
/// response is one line written and flushed under the lock, so frames
/// from concurrent jobs interleave but never tear.
#[derive(Clone)]
struct SharedWriter(Arc<Mutex<Box<dyn Write + Send>>>);

impl SharedWriter {
    fn send(&self, resp: &Response) -> io::Result<()> {
        let mut w = self.0.lock().expect("connection writer poisoned");
        writeln!(w, "{}", resp.to_json().to_string_compact())?;
        w.flush()
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    queries: AtomicU64,
}

struct Shared {
    pool: Pool,
    kcache: KCache,
    chunk: usize,
    bind: Bind,
    queue: Mutex<BinaryHeap<QueuedJob>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    next_seq: AtomicU64,
    next_id: AtomicU64,
    jobs: Mutex<HashMap<String, Arc<CancelToken>>>,
    stats: Counters,
}

struct QueuedJob {
    priority: i64,
    seq: u64,
    id: String,
    spec: JobSpec,
    cancel: Arc<CancelToken>,
    out: SharedWriter,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for QueuedJob {}
impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedJob {
    // Max-heap: higher priority first, then earlier submission.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

fn executor_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("job queue poisoned");
            loop {
                if let Some(job) = q.pop() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                q = shared.queue_cv.wait(q).expect("job queue poisoned");
            }
        };
        let Some(job) = job else { return };
        if shared.shutdown.load(Ordering::SeqCst) {
            finish(shared, &job, codes::PROTO_SHUTDOWN, "server shutting down");
            continue; // keep draining the queue
        }
        run_one(shared, job);
    }
}

fn run_one(shared: &Shared, job: QueuedJob) {
    let env = JobEnv {
        cache: Some(&shared.kcache),
        cancel: Some(&job.cancel),
        ..JobEnv::new(&shared.pool)
    };
    let result = if job.cancel.is_cancelled() {
        Err(Error::Protocol {
            code: codes::PROTO_CANCELLED,
            detail: "job cancelled".into(),
        })
    } else {
        job.spec.run(&env)
    };
    match result {
        Ok(report) => {
            let doc = report.to_json().to_string_compact();
            for frame in frames::split(&doc, shared.chunk) {
                // A client that hung up mid-stream only costs its own
                // frames; the job's work (and cache warmth) stands.
                if job
                    .out
                    .send(&Response::JobFrame {
                        id: job.id.clone(),
                        frame,
                    })
                    .is_err()
                {
                    break;
                }
            }
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            shared
                .jobs
                .lock()
                .expect("job registry poisoned")
                .remove(&job.id);
        }
        Err(e) => finish(shared, &job, e.code(), &e.to_string()),
    }
}

/// Ends a job without a report: records the outcome and sends the
/// typed `job_error` line.
fn finish(shared: &Shared, job: &QueuedJob, code: u32, detail: &str) {
    if code == codes::PROTO_CANCELLED {
        shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
    }
    let _ = job.out.send(&Response::JobError {
        id: job.id.clone(),
        code,
        detail: detail.to_owned(),
    });
    shared
        .jobs
        .lock()
        .expect("job registry poisoned")
        .remove(&job.id);
}

fn handle_conn(shared: &Shared, conn: Conn) {
    let Ok((reader, writer)) = conn.split() else {
        return;
    };
    let out = SharedWriter(Arc::new(Mutex::new(writer)));
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match handle_request(shared, &out, &line) {
            Flow::Continue => {}
            Flow::Shutdown => break,
            Flow::Disconnect => break,
        }
    }
}

enum Flow {
    Continue,
    Shutdown,
    Disconnect,
}

fn handle_request(shared: &Shared, out: &SharedWriter, line: &str) -> Flow {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(e) => {
            return respond(
                out,
                &Response::Error {
                    code: e.code(),
                    detail: e.to_string(),
                },
            );
        }
    };
    match req {
        Request::Submit { id, priority, spec } => {
            let resp = submit(shared, out, id, priority, spec);
            respond(out, &resp)
        }
        Request::Cancel { id } => {
            let resp = match shared.jobs.lock().expect("job registry poisoned").get(&id) {
                Some(token) => {
                    token.cancel();
                    Response::Ok
                }
                None => Response::Error {
                    code: codes::PROTO_BAD_REQUEST,
                    detail: format!("no live job with id `{id}`"),
                },
            };
            respond(out, &resp)
        }
        Request::Query {
            core,
            variant,
            kernel,
            n,
            seed,
        } => {
            let resp = match query(shared, &core, &variant, &kernel, n, seed) {
                Ok(cycles) => {
                    shared.stats.queries.fetch_add(1, Ordering::Relaxed);
                    Response::QueryResult { cycles }
                }
                Err(e) => Response::Error {
                    code: e.code(),
                    detail: e.to_string(),
                },
            };
            respond(out, &resp)
        }
        Request::Stats => {
            let queue_depth = shared.queue.lock().expect("job queue poisoned").len() as u64;
            let s = &shared.stats;
            respond(
                out,
                &Response::Stats(StatsBody {
                    submitted: s.submitted.load(Ordering::Relaxed),
                    completed: s.completed.load(Ordering::Relaxed),
                    cancelled: s.cancelled.load(Ordering::Relaxed),
                    failed: s.failed.load(Ordering::Relaxed),
                    queries: s.queries.load(Ordering::Relaxed),
                    queue_depth,
                    threads: shared.pool.threads() as u64,
                    cache_entries: shared.kcache.len() as u64,
                }),
            )
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.queue_cv.notify_all();
            let _ = respond(out, &Response::Ok);
            // Unblock the accept loop so Server::run observes the flag.
            match &shared.bind {
                Bind::Tcp(addr) => {
                    let _ = TcpStream::connect(addr.as_str());
                }
                Bind::Unix(path) => {
                    let _ = UnixStream::connect(path);
                }
            }
            Flow::Shutdown
        }
    }
}

fn respond(out: &SharedWriter, resp: &Response) -> Flow {
    match out.send(resp) {
        Ok(()) => Flow::Continue,
        Err(_) => Flow::Disconnect,
    }
}

fn submit(
    shared: &Shared,
    out: &SharedWriter,
    id: Option<String>,
    priority: i64,
    spec: JobSpec,
) -> Response {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Response::Error {
            code: codes::PROTO_SHUTDOWN,
            detail: "server shutting down".into(),
        };
    }
    let id =
        id.unwrap_or_else(|| format!("job-{}", shared.next_id.fetch_add(1, Ordering::Relaxed)));
    let cancel = Arc::new(CancelToken::new());
    {
        let mut jobs = shared.jobs.lock().expect("job registry poisoned");
        if jobs.contains_key(&id) {
            return Response::Error {
                code: codes::PROTO_BAD_REQUEST,
                detail: format!("job id `{id}` is already live"),
            };
        }
        jobs.insert(id.clone(), Arc::clone(&cancel));
    }
    let digest = format!("{:016x}", spec.digest());
    let queued = QueuedJob {
        priority,
        seq: shared.next_seq.fetch_add(1, Ordering::Relaxed),
        id: id.clone(),
        spec,
        cancel,
        out: out.clone(),
    };
    shared
        .queue
        .lock()
        .expect("job queue poisoned")
        .push(queued);
    shared.queue_cv.notify_one();
    shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
    Response::Accepted { id, digest }
}

/// The query path: resolve the wire strings through the same parsers a
/// spec uses, then serve the point from the shared cache.
fn query(
    shared: &Shared,
    core: &str,
    variant: &str,
    kernel: &str,
    n: usize,
    seed: u64,
) -> Result<f64, Error> {
    let mut probe = JobSpec::new(JobKind::Measure);
    probe.core = core.to_owned();
    probe.variant = variant.to_owned();
    let config = probe.config()?;
    let var = probe.kernel_variant()?;
    let kernel = kreg::KernelId::parse(kernel)?;
    cached_kernel_cycles(&config, var, kernel, n, seed, Some(&shared.kcache))
}
