//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small API subset it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], and
//! [`rng()`]. The generator is xoshiro256++ seeded through SplitMix64 —
//! deterministic under [`SeedableRng::seed_from_u64`], which is all the
//! tests and benchmarks rely on.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types samplable uniformly over their whole domain (the
/// `StandardUniform` distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard, const N: usize> Standard for [T; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::sample(rng))
    }
}

/// Ranges a value can be drawn from (the `SampleRange` of real `rand`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (u128::sample(rng) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (u128::sample(rng) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators seedable from fixed state.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a 64-bit seed (expanded via
    /// SplitMix64).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = splitmix64(&mut state).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(xpar::SEED_STEP);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the workspace's deterministic standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *w = u64::from_le_bytes(chunk.try_into().expect("8 bytes"));
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                let mut st = 0x1234_5678_9abc_def0u64;
                for w in &mut s {
                    *w = splitmix64(&mut st);
                }
            }
            StdRng { s }
        }
    }

    /// A small alias kept for API compatibility.
    pub type SmallRng = StdRng;

    /// The generator returned by [`crate::rng()`]; freshly and
    /// unpredictably seeded per call site.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a generator seeded from OS-provided hasher entropy (the
/// analog of `rand::rng()` / the old `thread_rng()`).
pub fn rng() -> rngs::ThreadRng {
    use std::collections::hash_map::RandomState;
    use std::hash::{BuildHasher, Hasher};
    let a = RandomState::new().build_hasher().finish();
    let b = RandomState::new().build_hasher().finish();
    let mut seed = [0u8; 32];
    seed[..8].copy_from_slice(&a.to_le_bytes());
    seed[8..16].copy_from_slice(&b.to_le_bytes());
    seed[16..24].copy_from_slice(&a.rotate_left(31).to_le_bytes());
    seed[24..].copy_from_slice(&b.rotate_left(17).to_le_bytes());
    rngs::ThreadRng(rngs::StdRng::from_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(10..20);
            assert!((10..20).contains(&v));
            let w: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.random_range(100.0..1000.0);
            assert!((100.0..1000.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn generic_functions_accept_unsized_rng() {
        fn take<R: Rng + ?Sized>(rng: &mut R) -> u32 {
            rng.random()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let _ = take(&mut rng);
    }

    #[test]
    fn os_seeded_rng_produces_output() {
        let mut r = super::rng();
        let x: u64 = r.random();
        let y: u64 = r.random();
        // Not a randomness test — just exercise the path.
        let _ = (x, y);
    }
}
