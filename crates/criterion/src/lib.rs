//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the API subset its benches use: [`Criterion`],
//! [`BenchmarkId`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are intentionally simple: each benchmark runs a short
//! calibration pass, then a fixed number of timed samples, and prints
//! the median time per iteration — both human-readable and as a stable
//! machine line `BENCH,<name>,<median_ns>` that `scripts/bench_report.sh`
//! collects into `BENCH_2.json`. When the harness detects it is being
//! run by `cargo test` (no `--bench` argument), every closure executes
//! exactly once as a smoke test so the workspace test suite stays fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches may import either
/// this or `std::hint::black_box`).
pub use std::hint::black_box;

/// An identifier naming one parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Drives iteration of one benchmark body.
pub struct Bencher {
    smoke_only: bool,
    samples: usize,
    result: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration duration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.smoke_only {
            black_box(routine());
            return;
        }
        // Calibrate: find an iteration count that runs ≥ ~1 ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 4;
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            times.push(t0.elapsed() / iters as u32);
        }
        times.sort();
        self.result = Some(times[times.len() / 2]);
    }
}

/// The stable machine-readable result line: `BENCH,<name>,<median_ns>`.
/// `scripts/bench_report.sh` greps for this exact prefix, so the format
/// is a compatibility contract — change it only with the script.
fn machine_line(name: &str, median: Duration) -> String {
    format!("BENCH,{name},{}", median.as_nanos())
}

fn run_one(name: &str, sample_size: usize, smoke_only: bool, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        smoke_only,
        samples: sample_size.max(3),
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(t) => {
            println!("bench {name:<40} {t:>12.2?}/iter");
            println!("{}", machine_line(name, t));
        }
        None if smoke_only => {}
        None => println!("bench {name:<40} (no iter call)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.criterion.smoke_only,
            f,
        );
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.criterion.smoke_only,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
pub struct Criterion {
    smoke_only: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness=false targets;
        // `cargo test` does not. Without it, run in fast smoke mode.
        let smoke_only = !std::env::args().any(|a| a == "--bench");
        Criterion { smoke_only }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        run_one(&id.to_string(), 10, self.smoke_only, f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
        }
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; $($rest:tt)*) => {
        $crate::criterion_group!($name, $($rest)*);
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_smoke_mode_runs_once() {
        let mut count = 0;
        let mut b = Bencher {
            smoke_only: true,
            samples: 10,
            result: None,
        };
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.result.is_none());
    }

    #[test]
    fn bencher_timed_mode_records_median() {
        let mut b = Bencher {
            smoke_only: false,
            samples: 3,
            result: None,
        };
        b.iter(|| std::hint::black_box(17u64.wrapping_mul(31)));
        assert!(b.result.is_some());
    }

    #[test]
    fn machine_line_is_stable() {
        let line = machine_line("kernels/addmul_1/32", Duration::from_micros(12));
        assert_eq!(line, "BENCH,kernels/addmul_1/32,12000");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("add_n", 8).to_string(), "add_n/8");
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion { smoke_only: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_function("f", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("w", 3), &3, |b, &x| b.iter(|| x * 2));
        g.finish();
    }
}
