//! Performance characterization and macro-modeling of software library
//! routines (the paper's Section 3.2).
//!
//! A **performance macro-model** expresses the cycle count of a library
//! routine as a function of parameters characterizing its inputs (e.g.
//! the bit-widths of `mpn_add_n`'s operands). Models are fitted by
//! statistical regression over data gathered from cycle-accurate ISS
//! runs with pseudo-random stimuli; algorithm exploration then replaces
//! ISS runs with native execution plus model evaluation — in the paper,
//! 1407× faster on average with 11.8 % mean absolute error.
//!
//! - [`regress`]: ordinary least squares (normal equations, partial
//!   pivoting) — the replacement for the paper's S-Plus fits;
//! - [`model`]: monomial-basis macro-models and accuracy metrics;
//! - [`stimulus`]: bounded parameter-space sampling ("the input values
//!   used for characterization are generated to lie within a bounded
//!   super-space of the input space used by the application");
//! - [`charact`]: the end-to-end characterization driver.
//!
//! # Examples
//!
//! ```
//! use macromodel::charact::{characterize, CharactOptions};
//! use macromodel::model::Monomial;
//! use macromodel::stimulus::ParamSpace;
//!
//! // Characterize a routine whose true cost is 7 + 3n cycles.
//! let space = ParamSpace::new(vec![(1, 64)]);
//! let basis = vec![Monomial::constant(1), Monomial::linear(1, 0)];
//! let mut rng = rand::rng();
//! let outcome = characterize(
//!     &space,
//!     &basis,
//!     &CharactOptions::default(),
//!     &mut rng,
//!     |p| 7.0 + 3.0 * p[0] as f64,
//! )?;
//! assert!((outcome.model.predict(&[10]) - 37.0).abs() < 1e-6);
//! assert!(outcome.quality.r_squared > 0.999);
//! # Ok::<(), macromodel::regress::RegressError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod charact;
pub mod model;
pub mod regress;
pub mod stimulus;

pub use charact::{characterize, CharactOptions, Characterization};
pub use model::{MacroModel, ModelQuality, Monomial};
pub use stimulus::ParamSpace;
