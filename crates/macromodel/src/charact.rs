//! The end-to-end characterization driver.
//!
//! Given a parameter space, a monomial basis, and a `measure` closure
//! that runs the routine on the cycle-accurate simulator, this collects
//! `(params, cycles)` observations, fits the macro-model by least
//! squares, and evaluates its accuracy on a held-out deterministic
//! sweep — the paper's "performance characterization" phase
//! (one-time cost, amortized over the whole exploration).

use crate::model::{MacroModel, ModelQuality, Monomial};
use crate::regress::{fit, RegressError};
use crate::stimulus::ParamSpace;
use rand::Rng;

/// Options for a characterization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharactOptions {
    /// Random training samples (ISS invocations).
    pub train_samples: usize,
    /// Held-out validation points (deterministic sweep).
    pub validation_points: usize,
}

impl Default for CharactOptions {
    fn default() -> Self {
        CharactOptions {
            train_samples: 64,
            validation_points: 16,
        }
    }
}

/// The outcome of characterizing one routine.
#[derive(Debug, Clone)]
pub struct Characterization {
    /// The fitted macro-model.
    pub model: MacroModel,
    /// Accuracy on the held-out validation set.
    pub quality: ModelQuality,
    /// The training observations (for reports).
    pub observations: Vec<(Vec<u64>, f64)>,
}

/// A pre-drawn set of stimuli: the random training points (in draw
/// order) followed by the deterministic validation sweep.
///
/// Splitting planning from measurement lets a driver consume the shared
/// RNG serially (keeping the stimulus stream independent of scheduling)
/// while the measurements themselves run on a worker pool or come from
/// a memo cache — see [`plan_stimuli`] and [`fit_planned`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StimulusPlan {
    /// Random training stimuli, in the order they were drawn.
    pub train: Vec<Vec<u64>>,
    /// Held-out validation stimuli (deterministic sweep).
    pub validation: Vec<Vec<u64>>,
}

impl StimulusPlan {
    /// Total number of stimuli (training + validation).
    pub fn len(&self) -> usize {
        self.train.len() + self.validation.len()
    }

    /// Whether the plan contains no stimuli.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.validation.is_empty()
    }

    /// Every stimulus in measurement order: training first, then
    /// validation.
    pub fn points(&self) -> impl Iterator<Item = &[u64]> {
        self.train
            .iter()
            .chain(self.validation.iter())
            .map(Vec::as_slice)
    }
}

/// Draws the full stimulus plan for one characterization: random
/// training samples from `rng` plus the deterministic validation sweep.
/// Consumes exactly `options.train_samples` draws from `rng`.
pub fn plan_stimuli<R: Rng + ?Sized>(
    space: &ParamSpace,
    options: &CharactOptions,
    rng: &mut R,
) -> StimulusPlan {
    let train = (0..options.train_samples)
        .map(|_| space.sample(rng))
        .collect();
    let validation = space.sweep(options.validation_points.max(1));
    StimulusPlan { train, validation }
}

/// Fits a characterization from a stimulus plan and the cycle counts
/// measured for it, in plan order (training first, then validation) —
/// the second half of [`characterize`].
///
/// # Errors
///
/// Returns [`RegressError`] if the fit is degenerate.
///
/// # Panics
///
/// Panics if `basis` is empty or `cycles.len() != plan.len()`.
pub fn fit_planned(
    basis: &[Monomial],
    plan: &StimulusPlan,
    cycles: &[f64],
) -> Result<Characterization, RegressError> {
    assert!(!basis.is_empty(), "empty basis");
    assert_eq!(
        cycles.len(),
        plan.len(),
        "one cycle count per planned stimulus"
    );
    let (train_cycles, validation_cycles) = cycles.split_at(plan.train.len());

    let rows: Vec<Vec<f64>> = plan
        .train
        .iter()
        .map(|p| basis.iter().map(|m| m.eval(p)).collect())
        .collect();
    let coeffs = fit(&rows, train_cycles)?;
    let model = MacroModel::new("routine", basis.to_vec(), coeffs);

    let validation: Vec<(Vec<u64>, f64)> = plan
        .validation
        .iter()
        .cloned()
        .zip(validation_cycles.iter().copied())
        .collect();
    let quality = ModelQuality::evaluate(&model, &validation);

    Ok(Characterization {
        model,
        quality,
        observations: plan
            .train
            .iter()
            .cloned()
            .zip(train_cycles.iter().copied())
            .collect(),
    })
}

/// Characterizes a routine: samples the space, measures cycles through
/// `measure`, fits the basis, and validates on a sweep.
///
/// # Errors
///
/// Returns [`RegressError`] if the fit is degenerate (e.g. fewer samples
/// than basis terms, or a collinear basis over the sampled points).
///
/// # Panics
///
/// Panics if `basis` is empty or its dimensionality does not match the
/// space.
pub fn characterize<R: Rng + ?Sized>(
    space: &ParamSpace,
    basis: &[Monomial],
    options: &CharactOptions,
    rng: &mut R,
    mut measure: impl FnMut(&[u64]) -> f64,
) -> Result<Characterization, RegressError> {
    assert!(!basis.is_empty(), "empty basis");
    for m in basis {
        assert_eq!(m.dims(), space.dims(), "basis/space dimension mismatch");
    }
    let plan = plan_stimuli(space, options, rng);
    let cycles: Vec<f64> = plan.points().map(&mut measure).collect();
    fit_planned(basis, &plan, &cycles)
}

/// As [`characterize`], additionally publishing progress and fit
/// quality into a metrics registry when one is supplied:
/// `charact.stimuli_run` counts every simulator invocation (training
/// and validation), `charact.last_r_squared` / `charact.last_mae_pct`
/// hold the most recent fit's quality, and `charact.mae_pct` is a
/// histogram over all fits observed through the registry.
///
/// # Errors
///
/// Returns [`RegressError`] under the same conditions as
/// [`characterize`].
pub fn characterize_metered<R: Rng + ?Sized>(
    space: &ParamSpace,
    basis: &[Monomial],
    options: &CharactOptions,
    rng: &mut R,
    mut measure: impl FnMut(&[u64]) -> f64,
    metrics: Option<&xobs::Registry>,
) -> Result<Characterization, RegressError> {
    let reg = match metrics {
        Some(reg) => reg,
        None => return characterize(space, basis, options, rng, measure),
    };
    let stimuli = reg.counter("charact.stimuli_run");
    let ch = characterize(space, basis, options, rng, |p| {
        stimuli.inc();
        measure(p)
    })?;
    reg.gauge("charact.last_r_squared")
        .set(ch.quality.r_squared);
    reg.gauge("charact.last_mae_pct").set(ch.quality.mae_pct);
    reg.histogram("charact.mae_pct").observe(ch.quality.mae_pct);
    Ok(ch)
}

/// Renames a characterized model (the driver fits under a placeholder
/// name).
pub fn with_name(ch: Characterization, name: impl Into<String>) -> Characterization {
    Characterization {
        model: MacroModel::new(name, ch.model.basis().to_vec(), ch.model.coeffs().to_vec()),
        ..ch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2002)
    }

    #[test]
    fn linear_routine_recovered_exactly() {
        let space = ParamSpace::new(vec![(1, 64)]);
        let basis = vec![Monomial::constant(1), Monomial::linear(1, 0)];
        let ch = characterize(
            &space,
            &basis,
            &CharactOptions::default(),
            &mut rng(),
            |p| 12.0 + 6.25 * p[0] as f64,
        )
        .unwrap();
        assert!((ch.model.predict(&[32]) - 212.0).abs() < 1e-6);
        assert!(ch.quality.r_squared > 0.9999);
        assert!(ch.quality.mae_pct < 0.01);
    }

    #[test]
    fn quadratic_routine_needs_quadratic_basis() {
        let space = ParamSpace::new(vec![(1, 40)]);
        let measure = |p: &[u64]| 30.0 + 2.0 * p[0] as f64 + 1.5 * (p[0] * p[0]) as f64;
        // Linear basis underfits...
        let lin = characterize(
            &space,
            &[Monomial::constant(1), Monomial::linear(1, 0)],
            &CharactOptions::default(),
            &mut rng(),
            measure,
        )
        .unwrap();
        // ...quadratic basis nails it.
        let quad = characterize(
            &space,
            &Monomial::degree2_basis(1),
            &CharactOptions::default(),
            &mut rng(),
            measure,
        )
        .unwrap();
        assert!(quad.quality.mae_pct < 0.01);
        assert!(lin.quality.mae_pct > quad.quality.mae_pct);
    }

    #[test]
    fn noisy_routine_fits_within_tolerance() {
        // Cache effects etc. modeled as deterministic jitter ±3%.
        let space = ParamSpace::new(vec![(4, 64)]);
        let ch = characterize(
            &space,
            &[Monomial::constant(1), Monomial::linear(1, 0)],
            &CharactOptions {
                train_samples: 200,
                validation_points: 20,
            },
            &mut rng(),
            |p| {
                let base = 50.0 + 8.0 * p[0] as f64;
                let jitter = ((p[0] * 2654435761) % 7) as f64 - 3.0;
                base * (1.0 + jitter / 100.0)
            },
        )
        .unwrap();
        assert!(ch.quality.mae_pct < 5.0, "mae {}%", ch.quality.mae_pct);
        assert!(ch.quality.r_squared > 0.99);
    }

    #[test]
    fn two_parameter_cross_model() {
        // Schoolbook multiply: cycles ~ c0 + c1*(an*bn).
        let space = ParamSpace::new(vec![(1, 32), (1, 32)]);
        let basis = vec![Monomial::constant(2), Monomial::cross(2, 0, 1)];
        let ch = characterize(
            &space,
            &basis,
            &CharactOptions::default(),
            &mut rng(),
            |p| 40.0 + 3.0 * (p[0] * p[1]) as f64,
        )
        .unwrap();
        assert!((ch.model.predict(&[16, 16]) - (40.0 + 3.0 * 256.0)).abs() < 1e-6);
    }

    #[test]
    fn underdetermined_fit_reports_error() {
        let space = ParamSpace::new(vec![(1, 4)]);
        let basis = Monomial::degree2_basis(1);
        let r = characterize(
            &space,
            &basis,
            &CharactOptions {
                train_samples: 2,
                validation_points: 2,
            },
            &mut rng(),
            |p| p[0] as f64,
        );
        assert!(r.is_err());
    }

    #[test]
    fn metered_characterization_counts_stimuli() {
        let reg = xobs::Registry::new();
        let space = ParamSpace::new(vec![(1, 64)]);
        let opts = CharactOptions {
            train_samples: 10,
            validation_points: 4,
        };
        let ch = characterize_metered(
            &space,
            &[Monomial::constant(1), Monomial::linear(1, 0)],
            &opts,
            &mut rng(),
            |p| 5.0 + 2.0 * p[0] as f64,
            Some(&reg),
        )
        .unwrap();
        assert!(ch.quality.r_squared > 0.9999);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("charact.stimuli_run"), Some(14));
        assert!(snap.get("charact.last_r_squared").is_some());
        assert!(snap.get("charact.last_mae_pct").is_some());
    }

    #[test]
    fn planned_fit_matches_inline_characterization() {
        let space = ParamSpace::new(vec![(1, 64)]);
        let basis = vec![Monomial::constant(1), Monomial::linear(1, 0)];
        let opts = CharactOptions {
            train_samples: 16,
            validation_points: 6,
        };
        let measure = |p: &[u64]| 9.0 + 3.5 * p[0] as f64;
        let inline = characterize(&space, &basis, &opts, &mut rng(), measure).unwrap();
        let plan = plan_stimuli(&space, &opts, &mut rng());
        assert_eq!(plan.len(), 22);
        let cycles: Vec<f64> = plan.points().map(measure).collect();
        let planned = fit_planned(&basis, &plan, &cycles).unwrap();
        assert_eq!(planned.model.coeffs(), inline.model.coeffs());
        assert_eq!(planned.quality.mae_pct, inline.quality.mae_pct);
        assert_eq!(planned.observations, inline.observations);
    }

    #[test]
    #[should_panic(expected = "one cycle count per planned stimulus")]
    fn fit_planned_rejects_arity_mismatch() {
        let space = ParamSpace::new(vec![(1, 8)]);
        let plan = plan_stimuli(&space, &CharactOptions::default(), &mut rng());
        let _ = fit_planned(&[Monomial::constant(1)], &plan, &[1.0]);
    }

    #[test]
    fn with_name_renames() {
        let space = ParamSpace::new(vec![(1, 8)]);
        let ch = characterize(
            &space,
            &[Monomial::constant(1), Monomial::linear(1, 0)],
            &CharactOptions::default(),
            &mut rng(),
            |p| p[0] as f64,
        )
        .unwrap();
        let named = with_name(ch, "leaf_add");
        assert_eq!(named.model.name(), "leaf_add");
    }
}
