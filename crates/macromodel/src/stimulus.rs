//! Stimulus generation over bounded parameter spaces.
//!
//! Characterization exercises each routine "with a wide range of
//! pseudo-randomly generated input stimuli … generated to lie within a
//! bounded super-space of the input space used by the application"
//! (paper §3.2) — e.g. a 1024-bit RSA only needs `mpn` routines
//! characterized up to 32 limbs.

use rand::Rng;

/// An axis-aligned box of integer parameters: each dimension samples
/// uniformly from an inclusive `[lo, hi]` range.
///
/// # Examples
///
/// ```
/// use macromodel::stimulus::ParamSpace;
///
/// // mpn_add_n over 1..=32 limbs.
/// let space = ParamSpace::new(vec![(1, 32)]);
/// let mut rng = rand::rng();
/// let p = space.sample(&mut rng);
/// assert!(p[0] >= 1 && p[0] <= 32);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamSpace {
    ranges: Vec<(u64, u64)>,
}

impl ParamSpace {
    /// Builds a space from inclusive per-dimension ranges.
    ///
    /// # Panics
    ///
    /// Panics if any range has `lo > hi` or the space has no dimensions.
    pub fn new(ranges: Vec<(u64, u64)>) -> Self {
        assert!(!ranges.is_empty(), "parameter space needs a dimension");
        for &(lo, hi) in &ranges {
            assert!(lo <= hi, "bad range [{lo}, {hi}]");
        }
        ParamSpace { ranges }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.ranges.len()
    }

    /// The inclusive range of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn range(&self, d: usize) -> (u64, u64) {
        self.ranges[d]
    }

    /// Samples one parameter point uniformly.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        self.ranges
            .iter()
            .map(|&(lo, hi)| rng.random_range(lo..=hi))
            .collect()
    }

    /// Deterministic sweep: `count` points spread evenly across each
    /// dimension's range (grid over the diagonal for multi-dimensional
    /// spaces). Useful for validation sets disjoint from random training
    /// samples.
    pub fn sweep(&self, count: usize) -> Vec<Vec<u64>> {
        assert!(count >= 1);
        (0..count)
            .map(|i| {
                self.ranges
                    .iter()
                    .map(|&(lo, hi)| {
                        if count == 1 {
                            lo
                        } else {
                            lo + (hi - lo) * i as u64 / (count as u64 - 1)
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_bounds() {
        let s = ParamSpace::new(vec![(1, 32), (100, 100)]);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let p = s.sample(&mut rng);
            assert!(p[0] >= 1 && p[0] <= 32);
            assert_eq!(p[1], 100);
        }
    }

    #[test]
    fn samples_cover_the_range() {
        let s = ParamSpace::new(vec![(1, 4)]);
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[s.sample(&mut rng)[0] as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3] && seen[4]);
    }

    #[test]
    fn sweep_hits_endpoints() {
        let s = ParamSpace::new(vec![(10, 50)]);
        let pts = s.sweep(5);
        assert_eq!(pts.first().unwrap()[0], 10);
        assert_eq!(pts.last().unwrap()[0], 50);
        assert_eq!(pts.len(), 5);
        assert_eq!(s.sweep(1), vec![vec![10]]);
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn inverted_range_rejected() {
        let _ = ParamSpace::new(vec![(5, 1)]);
    }
}
