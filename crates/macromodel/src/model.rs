//! Macro-models: monomial-basis cycle-count predictors, plus accuracy
//! metrics.
//!
//! Arithmetic routines have "regular behavior (piecewise linear,
//! quadratic, etc.) over input bit-width subspaces" (paper §3.2), so a
//! small monomial basis over the input parameters fits them well.

use core::fmt;

/// One basis term: a product of integer powers of the input parameters,
/// e.g. `n₀·n₁` or `n₀²`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Monomial {
    exponents: Vec<u32>,
}

impl Monomial {
    /// Builds a monomial from per-parameter exponents.
    pub fn new(exponents: Vec<u32>) -> Self {
        Monomial { exponents }
    }

    /// The constant term (all exponents zero) over `dims` parameters.
    pub fn constant(dims: usize) -> Self {
        Monomial {
            exponents: vec![0; dims],
        }
    }

    /// The linear term in parameter `dim` of a `dims`-parameter space.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= dims`.
    pub fn linear(dims: usize, dim: usize) -> Self {
        assert!(dim < dims);
        let mut e = vec![0; dims];
        e[dim] = 1;
        Monomial { exponents: e }
    }

    /// The quadratic term in parameter `dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim >= dims`.
    pub fn quadratic(dims: usize, dim: usize) -> Self {
        assert!(dim < dims);
        let mut e = vec![0; dims];
        e[dim] = 2;
        Monomial { exponents: e }
    }

    /// The cross term `p[i]·p[j]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= dims` or `j >= dims`.
    pub fn cross(dims: usize, i: usize, j: usize) -> Self {
        assert!(i < dims && j < dims);
        let mut e = vec![0; dims];
        e[i] += 1;
        e[j] += 1;
        Monomial { exponents: e }
    }

    /// Number of parameters this monomial expects.
    pub fn dims(&self) -> usize {
        self.exponents.len()
    }

    /// Evaluates the monomial at a parameter point.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != self.dims()`.
    pub fn eval(&self, params: &[u64]) -> f64 {
        assert_eq!(params.len(), self.exponents.len());
        self.exponents
            .iter()
            .zip(params)
            .map(|(&e, &p)| (p as f64).powi(e as i32))
            .product()
    }

    /// A full polynomial basis of total degree ≤ 2 over `dims`
    /// parameters (constant, linears, squares, pairwise crosses).
    pub fn degree2_basis(dims: usize) -> Vec<Monomial> {
        let mut basis = vec![Monomial::constant(dims)];
        for d in 0..dims {
            basis.push(Monomial::linear(dims, d));
        }
        for d in 0..dims {
            basis.push(Monomial::quadratic(dims, d));
        }
        for i in 0..dims {
            for j in i + 1..dims {
                basis.push(Monomial::cross(dims, i, j));
            }
        }
        basis
    }
}

impl fmt::Display for Monomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exponents.iter().all(|&e| e == 0) {
            return write!(f, "1");
        }
        let mut first = true;
        for (i, &e) in self.exponents.iter().enumerate() {
            if e == 0 {
                continue;
            }
            if !first {
                write!(f, "*")?;
            }
            first = false;
            if e == 1 {
                write!(f, "n{i}")?;
            } else {
                write!(f, "n{i}^{e}")?;
            }
        }
        Ok(())
    }
}

/// A fitted macro-model: `cycles ≈ Σ coeffᵢ · monomialᵢ(params)`.
///
/// # Examples
///
/// ```
/// use macromodel::model::{MacroModel, Monomial};
///
/// // cycles = 12 + 6.25 n
/// let m = MacroModel::new(
///     "mpn_add_n",
///     vec![Monomial::constant(1), Monomial::linear(1, 0)],
///     vec![12.0, 6.25],
/// );
/// assert_eq!(m.predict(&[32]), 12.0 + 6.25 * 32.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MacroModel {
    name: String,
    basis: Vec<Monomial>,
    coeffs: Vec<f64>,
}

impl MacroModel {
    /// Builds a model from a basis and fitted coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `basis` and `coeffs` lengths differ or the basis is
    /// empty.
    pub fn new(name: impl Into<String>, basis: Vec<Monomial>, coeffs: Vec<f64>) -> Self {
        assert_eq!(basis.len(), coeffs.len(), "basis/coefficient mismatch");
        assert!(!basis.is_empty(), "empty basis");
        MacroModel {
            name: name.into(),
            basis,
            coeffs,
        }
    }

    /// The routine name the model describes.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The basis terms.
    pub fn basis(&self) -> &[Monomial] {
        &self.basis
    }

    /// The fitted coefficients.
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// Predicted cycle count at a parameter point.
    ///
    /// # Panics
    ///
    /// Panics if the parameter count does not match the basis.
    pub fn predict(&self, params: &[u64]) -> f64 {
        self.basis
            .iter()
            .zip(&self.coeffs)
            .map(|(m, &c)| c * m.eval(params))
            .sum()
    }
}

impl fmt::Display for MacroModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(…) ≈ ", self.name)?;
        for (i, (m, c)) in self.basis.iter().zip(&self.coeffs).enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c:.2}·{m}")?;
        }
        Ok(())
    }
}

/// Goodness-of-fit metrics for a model against observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelQuality {
    /// Coefficient of determination R².
    pub r_squared: f64,
    /// Mean absolute error in cycles.
    pub mae: f64,
    /// Mean absolute percentage error (the paper reports 11.8 %).
    pub mae_pct: f64,
    /// Worst-case absolute percentage error.
    pub max_err_pct: f64,
}

impl ModelQuality {
    /// Computes metrics of `model` over observation pairs
    /// `(params, cycles)`.
    ///
    /// # Panics
    ///
    /// Panics if `observations` is empty.
    pub fn evaluate(model: &MacroModel, observations: &[(Vec<u64>, f64)]) -> Self {
        assert!(!observations.is_empty(), "no observations");
        let n = observations.len() as f64;
        let mean_y: f64 = observations.iter().map(|(_, y)| y).sum::<f64>() / n;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        let mut abs_err_sum = 0.0;
        let mut pct_sum = 0.0;
        let mut pct_max: f64 = 0.0;
        for (params, y) in observations {
            let pred = model.predict(params);
            let e = pred - y;
            ss_res += e * e;
            ss_tot += (y - mean_y) * (y - mean_y);
            abs_err_sum += e.abs();
            if *y != 0.0 {
                let pct = (e.abs() / y.abs()) * 100.0;
                pct_sum += pct;
                pct_max = pct_max.max(pct);
            }
        }
        ModelQuality {
            r_squared: if ss_tot == 0.0 {
                1.0
            } else {
                1.0 - ss_res / ss_tot
            },
            mae: abs_err_sum / n,
            mae_pct: pct_sum / n,
            max_err_pct: pct_max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monomial_eval() {
        let m = Monomial::new(vec![2, 1]);
        assert_eq!(m.eval(&[3, 5]), 45.0);
        assert_eq!(Monomial::constant(2).eval(&[9, 9]), 1.0);
        assert_eq!(Monomial::cross(2, 0, 1).eval(&[4, 6]), 24.0);
    }

    #[test]
    fn degree2_basis_size() {
        // 1 + d + d + d(d-1)/2
        assert_eq!(Monomial::degree2_basis(1).len(), 3);
        assert_eq!(Monomial::degree2_basis(2).len(), 6);
        assert_eq!(Monomial::degree2_basis(3).len(), 10);
    }

    #[test]
    fn model_predicts_polynomial() {
        let m = MacroModel::new(
            "mul",
            vec![Monomial::constant(2), Monomial::cross(2, 0, 1)],
            vec![30.0, 2.5],
        );
        assert_eq!(m.predict(&[8, 8]), 30.0 + 2.5 * 64.0);
    }

    #[test]
    fn perfect_fit_has_r2_one_and_zero_error() {
        let m = MacroModel::new(
            "f",
            vec![Monomial::constant(1), Monomial::linear(1, 0)],
            vec![5.0, 2.0],
        );
        let obs: Vec<(Vec<u64>, f64)> = (1..20).map(|n| (vec![n], 5.0 + 2.0 * n as f64)).collect();
        let q = ModelQuality::evaluate(&m, &obs);
        assert!((q.r_squared - 1.0).abs() < 1e-12);
        assert!(q.mae < 1e-9);
        assert!(q.mae_pct < 1e-9);
    }

    #[test]
    fn biased_model_has_positive_error() {
        let m = MacroModel::new("f", vec![Monomial::constant(1)], vec![10.0]);
        let obs = vec![(vec![1u64], 20.0), (vec![2], 20.0)];
        let q = ModelQuality::evaluate(&m, &obs);
        assert_eq!(q.mae, 10.0);
        assert_eq!(q.mae_pct, 50.0);
        assert_eq!(q.max_err_pct, 50.0);
    }

    #[test]
    fn display_is_readable() {
        let m = MacroModel::new(
            "leaf_add",
            vec![Monomial::constant(1), Monomial::linear(1, 0)],
            vec![12.0, 6.25],
        );
        let s = m.to_string();
        assert!(s.contains("leaf_add"));
        assert!(s.contains("6.25·n0"));
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_coeffs_rejected() {
        let _ = MacroModel::new("x", vec![Monomial::constant(1)], vec![1.0, 2.0]);
    }
}
