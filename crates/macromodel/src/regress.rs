//! Ordinary least squares regression.
//!
//! Solves `min ‖Xβ − y‖²` through the normal equations
//! `(XᵀX)β = Xᵀy` with Gaussian elimination and partial pivoting — a
//! from-scratch replacement for the S-Plus fits the paper uses.

use core::fmt;

/// Error from a regression fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegressError {
    /// No observations were provided.
    Empty,
    /// Rows have inconsistent widths, or `y` length differs from the
    /// number of rows.
    Shape,
    /// Fewer observations than coefficients.
    Underdetermined {
        /// Number of observations.
        rows: usize,
        /// Number of coefficients requested.
        cols: usize,
    },
    /// The normal equations are singular (collinear features).
    Singular,
}

impl fmt::Display for RegressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegressError::Empty => write!(f, "no observations"),
            RegressError::Shape => write!(f, "inconsistent design-matrix shape"),
            RegressError::Underdetermined { rows, cols } => {
                write!(
                    f,
                    "underdetermined fit: {rows} observations, {cols} coefficients"
                )
            }
            RegressError::Singular => write!(f, "singular normal equations (collinear features)"),
        }
    }
}

impl std::error::Error for RegressError {}

/// Fits `y ≈ X β` by ordinary least squares.
///
/// `rows` are feature vectors (already including a constant column if an
/// intercept is wanted). Returns the coefficient vector `β`.
///
/// # Errors
///
/// Returns [`RegressError`] on shape mismatches, too few observations,
/// or singular normal equations.
///
/// # Examples
///
/// ```
/// use macromodel::regress::fit;
///
/// // y = 2 + 3x
/// let rows = vec![vec![1.0, 0.0], vec![1.0, 1.0], vec![1.0, 2.0]];
/// let y = vec![2.0, 5.0, 8.0];
/// let beta = fit(&rows, &y)?;
/// assert!((beta[0] - 2.0).abs() < 1e-9);
/// assert!((beta[1] - 3.0).abs() < 1e-9);
/// # Ok::<(), macromodel::regress::RegressError>(())
/// ```
pub fn fit(rows: &[Vec<f64>], y: &[f64]) -> Result<Vec<f64>, RegressError> {
    if rows.is_empty() {
        return Err(RegressError::Empty);
    }
    let n = rows.len();
    let k = rows[0].len();
    if k == 0 || y.len() != n || rows.iter().any(|r| r.len() != k) {
        return Err(RegressError::Shape);
    }
    if n < k {
        return Err(RegressError::Underdetermined { rows: n, cols: k });
    }

    // Normal equations: A = XᵀX (k×k), b = Xᵀy.
    let mut a = vec![vec![0.0f64; k]; k];
    let mut b = vec![0.0f64; k];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..k {
            b[i] += row[i] * yi;
            for j in i..k {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 1..k {
        let (upper, lower) = a.split_at_mut(i);
        for (j, urow) in upper.iter().enumerate() {
            lower[0][j] = urow[i];
        }
    }
    solve(a, b)
}

/// Solves the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, RegressError> {
    let k = b.len();
    for col in 0..k {
        // Pivot.
        let pivot = (col..k)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("nonempty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(RegressError::Singular);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..k {
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            let target = &mut rest[0];
            let f = target[col] / pivot_row[col];
            if f == 0.0 {
                continue;
            }
            for (t, &p) in target[col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0f64; k];
    for col in (0..k).rev() {
        let mut acc = b[col];
        for j in col + 1..k {
            acc -= a[col][j] * x[j];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_quadratic_recovered() {
        // y = 1 + 2n + 0.5 n^2
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|n| vec![1.0, n as f64, (n * n) as f64])
            .collect();
        let y: Vec<f64> = (0..20)
            .map(|n| 1.0 + 2.0 * n as f64 + 0.5 * (n * n) as f64)
            .collect();
        let beta = fit(&rows, &y).unwrap();
        assert!((beta[0] - 1.0).abs() < 1e-8);
        assert!((beta[1] - 2.0).abs() < 1e-8);
        assert!((beta[2] - 0.5).abs() < 1e-8);
    }

    #[test]
    fn noisy_fit_close_to_truth() {
        // Deterministic pseudo-noise.
        let rows: Vec<Vec<f64>> = (0..200).map(|n| vec![1.0, n as f64]).collect();
        let y: Vec<f64> = (0..200)
            .map(|n| {
                let noise = ((n * 37 + 11) % 13) as f64 - 6.0;
                10.0 + 4.0 * n as f64 + noise
            })
            .collect();
        let beta = fit(&rows, &y).unwrap();
        assert!((beta[1] - 4.0).abs() < 0.05, "slope {}", beta[1]);
        assert!((beta[0] - 10.0).abs() < 3.0, "intercept {}", beta[0]);
    }

    #[test]
    fn multivariate_fit() {
        // y = 3a + 5b with no intercept column.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for a in 0..10 {
            for b in 0..10 {
                rows.push(vec![a as f64, b as f64]);
                y.push(3.0 * a as f64 + 5.0 * b as f64);
            }
        }
        let beta = fit(&rows, &y).unwrap();
        assert!((beta[0] - 3.0).abs() < 1e-8);
        assert!((beta[1] - 5.0).abs() < 1e-8);
    }

    #[test]
    fn shape_errors() {
        assert_eq!(fit(&[], &[]), Err(RegressError::Empty));
        assert_eq!(
            fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]),
            Err(RegressError::Shape)
        );
        assert_eq!(
            fit(&[vec![1.0, 2.0]], &[3.0]).unwrap_err(),
            RegressError::Underdetermined { rows: 1, cols: 2 }
        );
    }

    #[test]
    fn collinear_features_detected() {
        // Second column is exactly twice the first.
        let rows: Vec<Vec<f64>> = (0..10).map(|n| vec![n as f64, 2.0 * n as f64]).collect();
        let y: Vec<f64> = (0..10).map(|n| n as f64).collect();
        assert_eq!(fit(&rows, &y), Err(RegressError::Singular));
    }
}
