//! Property-based tests for the regression and macro-model machinery.

use macromodel::charact::{characterize, CharactOptions};
use macromodel::model::{MacroModel, ModelQuality, Monomial};
use macromodel::regress::fit;
use macromodel::stimulus::ParamSpace;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn ols_recovers_exact_affine_models(
        c0 in -100.0f64..100.0,
        c1 in -10.0f64..10.0,
        n in 3usize..40,
    ) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![1.0, i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| c0 + c1 * i as f64).collect();
        let beta = fit(&rows, &y).expect("well-posed fit");
        prop_assert!((beta[0] - c0).abs() < 1e-6, "c0 {} vs {}", beta[0], c0);
        prop_assert!((beta[1] - c1).abs() < 1e-6);
    }

    #[test]
    fn ols_residual_is_orthogonal_to_features(
        coeffs in prop::collection::vec(-5.0f64..5.0, 2..4),
        seed in any::<u64>(),
    ) {
        // With noise, OLS residuals must be orthogonal to each feature
        // column (the normal equations).
        let k = coeffs.len();
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let n = 60;
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..k).map(|j| ((i * (j + 1)) % 17) as f64 + next()).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.iter().zip(&coeffs).map(|(x, c)| x * c).sum::<f64>() + next()
            })
            .collect();
        let beta = match fit(&rows, &y) {
            Ok(b) => b,
            Err(_) => return Ok(()), // degenerate random design; skip
        };
        for j in 0..k {
            let dot: f64 = rows
                .iter()
                .zip(&y)
                .map(|(r, yi)| {
                    let pred: f64 = r.iter().zip(&beta).map(|(x, b)| x * b).sum();
                    (yi - pred) * r[j]
                })
                .sum();
            prop_assert!(dot.abs() < 1e-5, "residual not orthogonal: {dot}");
        }
    }

    #[test]
    fn monomials_are_multiplicative(a in 1u64..50, b in 1u64..50) {
        let m = Monomial::cross(2, 0, 1);
        prop_assert_eq!(m.eval(&[a, b]), (a * b) as f64);
        let q = Monomial::quadratic(1, 0);
        prop_assert_eq!(q.eval(&[a]), (a * a) as f64);
    }

    #[test]
    fn characterization_nails_affine_ground_truth(
        c0 in 1.0f64..200.0,
        c1 in 0.5f64..50.0,
        seed in any::<u64>(),
    ) {
        let space = ParamSpace::new(vec![(1, 64)]);
        let basis = vec![Monomial::constant(1), Monomial::linear(1, 0)];
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = characterize(
            &space,
            &basis,
            &CharactOptions { train_samples: 24, validation_points: 6 },
            &mut rng,
            |p| c0 + c1 * p[0] as f64,
        )
        .expect("affine fits");
        prop_assert!(ch.quality.mae_pct < 1e-6);
        prop_assert!((ch.model.predict(&[10]) - (c0 + 10.0 * c1)).abs() < 1e-6);
    }

    #[test]
    fn quality_metrics_are_scale_consistent(offset in 1.0f64..1000.0) {
        // A model that is exactly 10% high everywhere has mae_pct = 10.
        let m = MacroModel::new(
            "f",
            vec![Monomial::linear(1, 0)],
            vec![1.1 * offset],
        );
        let obs: Vec<(Vec<u64>, f64)> =
            (1..20).map(|n| (vec![n], offset * n as f64)).collect();
        let q = ModelQuality::evaluate(&m, &obs);
        prop_assert!((q.mae_pct - 10.0).abs() < 1e-9);
        prop_assert!((q.max_err_pct - 10.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_sorted_and_in_bounds(lo in 1u64..50, span in 1u64..100, count in 2usize..20) {
        let space = ParamSpace::new(vec![(lo, lo + span)]);
        let pts = space.sweep(count);
        prop_assert_eq!(pts.len(), count);
        for w in pts.windows(2) {
            prop_assert!(w[0][0] <= w[1][0]);
        }
        prop_assert_eq!(pts[0][0], lo);
        prop_assert_eq!(pts[count - 1][0], lo + span);
    }
}
