//! Real-time video decryption — the scenario the paper's board-level
//! prototype demonstrated (Xtensa XT-2000 + LCD panel showing decrypted
//! video).
//!
//! A "video stream" of CBC-encrypted frames is decrypted through the
//! platform API while the measured per-byte cycle costs decide whether
//! each platform sustains the frame rate in real time at the core's
//! 188 MHz clock.
//!
//! Run with: `cargo run --release --example video_decrypt`

use wsp::secproc::platform::{Algorithm, PlatformKind, SecurityProcessor};

const FRAME_W: usize = 320;
const FRAME_H: usize = 240;
const BYTES_PER_PIXEL: usize = 2; // RGB565, as the prototype's LCD
const FPS: f64 = 15.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frame_bytes = FRAME_W * FRAME_H * BYTES_PER_PIXEL;
    let key = *b"video-session-k!"; // AES-128 session key
    let iv = [0u8; 16];

    // Produce a few encrypted "frames" (synthetic pattern payload).
    let encoder = SecurityProcessor::new(PlatformKind::Optimized);
    let mut frames = Vec::new();
    for f in 0..3u8 {
        let frame: Vec<u8> = (0..frame_bytes)
            .map(|i| (i as u8).wrapping_mul(f + 1))
            .collect();
        frames.push((
            frame.clone(),
            encoder.encrypt_cbc(Algorithm::Aes128, &key, &iv, &frame)?,
        ));
    }

    // Decrypt and verify.
    let decoder = SecurityProcessor::new(PlatformKind::Optimized);
    for (i, (plain, ct)) in frames.iter().enumerate() {
        let out = decoder.decrypt_cbc(Algorithm::Aes128, &key, &iv, ct)?;
        assert_eq!(&out, plain, "frame {i} corrupted");
    }
    println!(
        "decrypted {} QVGA frames ({} KiB each) correctly\n",
        frames.len(),
        frame_bytes / 1024
    );

    // Can each platform sustain the stream in real time?
    println!(
        "real-time budget: {FRAME_W}x{FRAME_H}x16bpp @ {FPS} fps = {:.2} MB/s",
        frame_bytes as f64 * FPS / 1.0e6
    );
    println!("\nplatform  | AES c/B | decrypt throughput | {FPS} fps feasible?");
    for kind in [PlatformKind::Baseline, PlatformKind::Optimized] {
        let mut proc = SecurityProcessor::with_config(kind, decoder.config().clone());
        let cpb = proc.symmetric_cycles_per_byte(Algorithm::Aes128);
        let bytes_per_sec = proc.config().clock_hz as f64 / cpb;
        let needed = frame_bytes as f64 * FPS;
        println!(
            "{:<9?} | {:>7.1} | {:>12.2} MB/s | {}",
            kind,
            cpb,
            bytes_per_sec / 1.0e6,
            if bytes_per_sec >= needed {
                "yes"
            } else {
                "no — drops frames"
            }
        );
    }
    println!(
        "\nThe custom AES round instruction is what turns the handset into a\n\
         real-time video decryption device — the paper's closing demo."
    );
    Ok(())
}
