//! SSL transaction acceleration (the paper's Fig. 8 scenario).
//!
//! Runs a functional SSL-style exchange through the platform API
//! (RSA handshake, 3DES bulk records, SHA-1 MACs), then prints the
//! measured speedup of whole transactions across session sizes.
//!
//! Run with: `cargo run --release --example ssl_transaction`

use rand::SeedableRng;
use wsp::mpint::Natural;
use wsp::secproc::platform::{Algorithm, PlatformKind, SecurityProcessor};
use wsp::secproc::ssl::{self, SslCostModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x55E);

    // --- the functional exchange (what the platform computes) ---
    let server = SecurityProcessor::new(PlatformKind::Optimized);
    let kp = server.rsa_generate(512, &mut rng);
    // Client encrypts a premaster secret under the server's public key.
    let premaster = Natural::random_below(&mut rng, &kp.public.n);
    let ct = server.rsa_encrypt(&kp, &premaster)?;
    assert_eq!(server.rsa_decrypt(&kp, &ct)?, premaster);
    // Session keys derive from the premaster; bulk data flows under 3DES.
    let session_key: Vec<u8> = premaster
        .to_bytes_be()
        .iter()
        .cycle()
        .take(24)
        .copied()
        .collect();
    let iv = [3u8; 8];
    let record = vec![0x42u8; 4096];
    let protected = server.encrypt_cbc(Algorithm::TripleDes, &session_key, &iv, &record)?;
    let mac = server.sha1(&protected);
    println!(
        "functional exchange ok: handshake + {}B record + MAC {:02x}{:02x}..",
        record.len(),
        mac[0],
        mac[1]
    );

    // --- measured transaction speedups (Fig. 8) ---
    println!("\nmeasuring component costs on the XR32 ISS (this takes a moment)...");
    let mut base_p = SecurityProcessor::new(PlatformKind::Baseline);
    let mut opt_p = SecurityProcessor::new(PlatformKind::Optimized);
    let tdes_base = base_p.symmetric_cycles_per_byte(Algorithm::TripleDes);
    let tdes_opt = opt_p.symmetric_cycles_per_byte(Algorithm::TripleDes);
    let sha_cpb = base_p.symmetric_cycles_per_byte(Algorithm::Sha1);

    // Handshake cost measured at a laptop-friendly 256-bit modulus,
    // extrapolated to the paper's RSA-1024 magnitude (schoolbook modexp
    // scales cubically in modulus size); the measured base/optimized
    // ratio is preserved.
    let (_, dec) = wsp::secproc::measure::measure_rsa(base_p.config(), 256)
        .expect("RSA co-simulation is infallible on the bundled platforms");
    let scale = (1024.0f64 / 256.0).powi(3);
    let base_model = SslCostModel {
        handshake_cycles: dec.base_cycles * scale,
        bulk_cycles_per_byte: tdes_base,
        misc_cycles_per_byte: sha_cpb,
        misc_fixed_cycles: 1.0e6,
    };
    let opt_model = SslCostModel {
        handshake_cycles: dec.opt_cycles * scale,
        bulk_cycles_per_byte: tdes_opt,
        misc_cycles_per_byte: sha_cpb, // misc stays unaccelerated
        misc_fixed_cycles: 1.0e6,
    };

    let sizes: Vec<u64> = (0..=5).map(|i| 1024u64 << i).collect();
    let series = ssl::speedup_series(&base_model, &opt_model, &sizes);
    println!();
    print!("{}", ssl::render_series(&series));
    println!(
        "\nsmall transactions ride the RSA speedup ({:.1}X here); large ones\n\
         fall toward the Amdahl limit set by the unaccelerated misc share.",
        dec.base_cycles / dec.opt_cycles
    );
    Ok(())
}
