//! Quickstart: the security processing platform's layered API.
//!
//! Creates the baseline and optimized platforms, runs bulk encryption
//! and an RSA exchange through the security-primitive API, and compares
//! the two platforms' measured performance — the paper's headline in
//! thirty lines.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use wsp::mpint::Natural;
use wsp::secproc::platform::{Algorithm, PlatformKind, SecurityProcessor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut baseline = SecurityProcessor::new(PlatformKind::Baseline);
    let mut optimized = SecurityProcessor::new(PlatformKind::Optimized);

    // --- bulk data through the symmetric API ---
    let key = *b"sixteen byte key";
    let iv = [0x24u8; 16];
    let message = b"Wireless clients are, and will always be, much more resource \
                    constrained than their wired counterparts.";
    let ciphertext = optimized.encrypt_cbc(Algorithm::Aes128, &key, &iv, message)?;
    let plaintext = optimized.decrypt_cbc(Algorithm::Aes128, &key, &iv, &ciphertext)?;
    assert_eq!(plaintext, message);
    println!("AES-128-CBC roundtrip: {} bytes ok", message.len());

    // --- an RSA exchange through the public-key API ---
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let kp = optimized.rsa_generate(512, &mut rng);
    let secret = Natural::from_u64(0x5EC2E7);
    let ct = optimized.rsa_encrypt(&kp, &secret)?;
    assert_eq!(optimized.rsa_decrypt(&kp, &ct)?, secret);
    println!("RSA-512 roundtrip ok (optimized algorithm configuration)");

    // --- what the custom instructions buy, measured on the ISS ---
    println!("\nmeasured platform performance (cycles/byte on the XR32 ISS):");
    println!("algorithm |  baseline | optimized | speedup | optimized throughput");
    for algo in [Algorithm::Des, Algorithm::Aes128] {
        let b = baseline.symmetric_cycles_per_byte(algo);
        let o = optimized.symmetric_cycles_per_byte(algo);
        println!(
            "{:<9?} | {:>9.1} | {:>9.1} | {:>6.1}X | {:>7.1} Mbps",
            algo,
            b,
            o,
            b / o,
            optimized.throughput_mbps(algo)
        );
    }
    println!(
        "\nThe optimized platform sustains 3G-class data rates (0.1–2 Mbps) \
         with plenty of headroom — the paper's design goal."
    );
    Ok(())
}
