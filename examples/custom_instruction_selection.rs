//! Custom-instruction formulation and global selection (the paper's
//! §3.3–3.4).
//!
//! Formulates the A-D curves of `mpn_add_n` and `mpn_addmul_1` by
//! measuring every resource level on the ISS, propagates them through
//! the modular-exponentiation call graph, and selects the best design
//! point under a sweep of area budgets.
//!
//! Run with: `cargo run --release --example custom_instruction_selection`

use wsp::secproc::FlowBuilder;
use wsp::xr32::config::CpuConfig;

fn main() {
    let config = CpuConfig::default();
    let ctx = FlowBuilder::new(&config).build().unwrap();
    let limbs = 32; // 1024-bit operands

    println!("phase 3: formulating A-D curves on the ISS ({limbs}-limb operands)\n");
    let curves = ctx.curves(limbs);
    for (name, curve) in &curves {
        println!("{name}:");
        print!("{}", curve.render());
        println!();
    }

    println!("phase 4: global selection over the modular-exponentiation call graph\n");
    let sel = ctx.selector(limbs);
    let root = sel
        .root_curve("decrypt")
        .expect("the example graph is a DAG");
    println!("Pareto-optimal root curve ({} points):", root.len());
    print!("{}", root.render());

    println!("\nselection under an area-budget sweep:");
    println!("budget (GE) | chosen instructions                | cycles    | speedup");
    let base = root.points()[0].cycles;
    for budget in [0u64, 2_000, 5_000, 15_000, 40_000, 100_000] {
        if let Some(pt) = sel.select("decrypt", budget).expect("graph is a DAG") {
            println!(
                "{:>11} | {:<35} | {:>9.0} | {:>5.2}X",
                budget,
                pt.insns.to_string(),
                pt.cycles,
                base / pt.cycles
            );
        }
    }
    println!(
        "\nThe knee of the curve is where the paper's designers stop: past it,\n\
         extra adders/multipliers buy little (memory bandwidth and Amdahl)."
    );
}
