//! Algorithm design space exploration (the paper's §3.2 and §4.3).
//!
//! Characterizes the `mpn` kernels on the cycle-accurate ISS, fits
//! performance macro-models by regression, then sweeps all 450
//! modular-exponentiation candidates natively — the workflow that
//! replaced months of ISS time in the paper.
//!
//! Run with: `cargo run --release --example design_space_exploration [bits]`

use wsp::macromodel::charact::CharactOptions;
use wsp::pubkey::space::ModExpConfig;
use wsp::secproc::FlowBuilder;
use wsp::xr32::config::CpuConfig;

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(256);
    let config = CpuConfig::default();

    // Phase 1: characterize the library kernels on the ISS.
    println!(
        "characterizing kernels on the XR32 ISS (operands up to {} limbs)...",
        bits / 32
    );
    let ctx = FlowBuilder::new(&config).build().unwrap();
    let models = ctx.characterize(
        (bits / 32).max(8),
        &CharactOptions {
            train_samples: 24,
            validation_points: 8,
        },
    );
    for op in wsp::pubkey::ops::opname::ALL {
        let q = models.quality[&(op, 32)];
        println!(
            "  {:<14} {:<46} R²={:.4} |err|={:.1}%",
            op,
            models.models32[op].to_string(),
            q.r_squared,
            q.mae_pct
        );
    }

    // Phase 2: explore the full 450-candidate lattice natively.
    println!(
        "\nexploring 5 mul-algos x 5 windows x 3 CRT x 2 radices x 3 caches = 450 candidates..."
    );
    let result = ctx
        .explore(&models, bits, 4.0)
        .expect("the whole lattice runs");
    println!(
        "evaluated {} candidates in {:.2?}\n",
        result.evaluated, result.elapsed
    );

    println!("top 10 (estimated cycles per {bits}-bit exponentiation):");
    for c in result.ranked.iter().take(10) {
        println!("  {:>12.4e}  {}", c.cycles, c.config);
    }
    println!("\nbottom 3 (what exploration saves you from):");
    for c in result.ranked.iter().rev().take(3) {
        println!("  {:>12.4e}  {}", c.cycles, c.config);
    }
    let baseline = result
        .ranked
        .iter()
        .find(|c| c.config == ModExpConfig::baseline())
        .expect("baseline in lattice");
    println!(
        "\nalgorithmic win over the naive baseline: {:.1}X before any custom hardware",
        baseline.cycles / result.best().cycles
    );
}
