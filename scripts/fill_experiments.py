#!/usr/bin/env python3
"""Fills EXPERIMENTS.md placeholders from captured harness outputs.

Usage: run each bench harness with its output captured under
/tmp/exp/<name>.txt, then execute this script from the repository root.
"""
import pathlib

MAP = {
    "<<TABLE1_OUTPUT>>": "/tmp/exp/table1.txt",
    "<<FIG1_OUTPUT>>": "/tmp/exp/fig1.txt",
    "<<FIG4_OUTPUT>>": "/tmp/exp/fig4.txt",
    "<<FIG5_OUTPUT>>": "/tmp/exp/fig5.txt",
    "<<FIG6_OUTPUT>>": "/tmp/exp/fig6.txt",
    "<<FIG8_OUTPUT>>": "/tmp/exp/fig8.txt",
    "<<SEC43_OUTPUT>>": "/tmp/exp/sec43.txt",
}

path = pathlib.Path("EXPERIMENTS.md")
text = path.read_text()
for placeholder, source in MAP.items():
    src = pathlib.Path(source)
    if placeholder in text and src.exists():
        text = text.replace(placeholder, src.read_text().strip())
        print(f"filled {placeholder} from {source}")
    elif placeholder in text:
        print(f"MISSING {source}; placeholder left in place")
path.write_text(text)
