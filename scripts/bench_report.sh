#!/usr/bin/env bash
# Collect every bench binary's structured `--json` run report into one
# machine-readable BENCH_10.json document. Each report is validated
# against the xobs schema (via `xr32-trace check-report`) before it is
# admitted. Set RUN_MICROBENCH=1 to also run the criterion suites and
# fold their stable `BENCH,<name>,<median_ns>` lines into the output.
#
# Compare two collected envelopes with `bench_diff old.json new.json`
# (ci.sh gates on the committed baseline this way).
#
# usage: scripts/bench_report.sh [out.json]
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_10.json}
BIN=target/release

cargo build --release -q --package bench --package xserve

# name + small arguments so a full collection pass stays quick; the
# report schema is size-independent.
RUNS=(
  "table1_speedups 256"
  "fig8_ssl 256"
  "fig1_gap"
  "fig4_callgraph 8"
  "fig5_adcurves 8"
  "fig6_cartesian"
  "sec43_exploration 128 2"
  "fastpath_gate 3"
  "xooo_gate"
  "xserve-bench 1000 1000000"
)

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

reports=()
for run in "${RUNS[@]}"; do
  # shellcheck disable=SC2086
  set -- $run
  name=$1
  shift
  echo "bench_report: $name $*" >&2
  "$BIN/$name" --json "$@" >"$tmp/$name.json"
  "$BIN/xr32-trace" check-report "$tmp/$name.json" >&2
  reports+=("$(cat "$tmp/$name.json")")
done

micro=""
if [[ "${RUN_MICROBENCH:-0}" == "1" ]]; then
  echo "bench_report: criterion microbenchmarks" >&2
  while IFS=, read -r _ bname ns; do
    [[ -n "$micro" ]] && micro+=","
    micro+="{\"name\":\"$bname\",\"median_ns\":$ns}"
  done < <(cargo bench 2>/dev/null | grep '^BENCH,' || true)
fi

{
  printf '{"schema_version":2,"reports":['
  first=1
  for r in "${reports[@]}"; do
    [[ $first == 1 ]] || printf ','
    first=0
    printf '%s' "$r"
  done
  printf '],"microbench":[%s]}\n' "$micro"
} >"$OUT"

echo "bench_report: wrote $OUT (${#reports[@]} reports)" >&2
