#!/usr/bin/env bash
# Full local CI: build, tests, formatting, lints. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings
