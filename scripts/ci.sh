#!/usr/bin/env bash
# Full local CI: build, tests, formatting, lints. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Observability smoke: trace a couple of base-AES blocks and assert the
# known kernel hot spots show up in the replayed attribution report.
cargo build --release -q --package bench
TRACE=$(mktemp /tmp/ci_aes.XXXXXX.xtrace)
trap 'rm -f "$TRACE"' EXIT
target/release/xr32-trace record aes "$TRACE" 2
SUMMARY=$(target/release/xr32-trace summary "$TRACE")
for hot in subshift mixcols addkey; do
  if ! grep -q "$hot" <<<"$SUMMARY"; then
    echo "ci: '$hot' missing from AES trace hot report" >&2
    exit 1
  fi
done

# Every bench binary's --json output must be a schema-valid run report.
target/release/table1_speedups --json 128 | target/release/xr32-trace check-report -
target/release/fig8_ssl --json 256 | target/release/xr32-trace check-report -
target/release/fig1_gap --json | target/release/xr32-trace check-report -
target/release/fig4_callgraph --json 8 | target/release/xr32-trace check-report -
target/release/fig5_adcurves --json 8 | target/release/xr32-trace check-report -
target/release/fig6_cartesian --json | target/release/xr32-trace check-report -
target/release/sec43_exploration --json 128 2 | target/release/xr32-trace check-report -
target/release/xopt_gate --json 8 | target/release/xr32-trace check-report -
target/release/xooo_gate --json | target/release/xr32-trace check-report -

# Determinism gate: the parallel methodology engine must produce
# byte-identical reports (modulo host-timing fields, stripped by
# `normalize-report`) at 1 thread and 8 threads, each from a cold
# kernel-cycle cache.
DET=$(mktemp -d /tmp/ci_det.XXXXXX)
trap 'rm -f "$TRACE"; rm -rf "$DET"' EXIT
for run in "sec43_exploration --json 128 2" "fig5_adcurves --json 8"; do
  # shellcheck disable=SC2086
  set -- $run
  name=$1
  WSP_THREADS=1 WSP_KCACHE="$DET/$name.t1.kcache" "target/release/$@" \
    | target/release/xr32-trace normalize-report - >"$DET/$name.t1.json"
  WSP_THREADS=8 WSP_KCACHE="$DET/$name.t8.kcache" "target/release/$@" \
    | target/release/xr32-trace normalize-report - >"$DET/$name.t8.json"
  if ! diff -u "$DET/$name.t1.json" "$DET/$name.t8.json"; then
    echo "ci: $name report differs between WSP_THREADS=1 and 8" >&2
    exit 1
  fi
  echo "ci: $name deterministic across thread counts"
done

# Span-smoke gate: schema-5 reports must carry a populated span tree
# (`xr32-trace spans` exits non-zero on an empty or missing one) whose
# Chrome export converts cleanly.
SPANS=$(target/release/fig5_adcurves --json 8)
target/release/xr32-trace spans - <<<"$SPANS" >/dev/null
target/release/xr32-trace chrome - <<<"$SPANS" | grep -q '"traceEvents"'
echo "ci: span smoke ok (fig5_adcurves emits a populated span tree)"

# Perf smoke: a small exploration must finish within a generous wall
# budget, and a warm re-run against the same kernel-cycle cache must
# actually hit it (memo_hit_rate > 0).
start=$SECONDS
WSP_KCACHE="$DET/perf.kcache" target/release/sec43_exploration --json 128 2 >/dev/null
elapsed=$((SECONDS - start))
if ((elapsed > 300)); then
  echo "ci: cold sec43_exploration took ${elapsed}s (budget 300s)" >&2
  exit 1
fi
WARM=$(WSP_KCACHE="$DET/perf.kcache" target/release/sec43_exploration --json 128 2)
hit_rate=$(grep -o '"memo_hit_rate": *[0-9.eE+-]*' <<<"$WARM" | head -1 | sed 's/.*: *//')
if [[ -z "$hit_rate" ]] || ! awk -v h="$hit_rate" 'BEGIN { exit !(h > 0) }'; then
  echo "ci: warm sec43_exploration memo_hit_rate '$hit_rate' not > 0" >&2
  exit 1
fi
echo "ci: perf smoke ok (cold ${elapsed}s, warm memo_hit_rate $hit_rate)"

# Registry gate: the kernel registry's invariants must hold (unique
# cache tags, stimulus space per kernel, annotated entry labels), and
# every assembly library it enumerates must pass xr32-lint — so a
# kernel cannot be registered without being characterizable and linted.
cargo build --release -q --package kreg --package xlint
KREG=$(mktemp -d /tmp/ci_kreg.XXXXXX)
trap 'rm -f "$TRACE"; rm -rf "$DET" "$KREG"' EXIT
target/release/kreg-audit --dump "$KREG" >"$KREG/units.txt"
# shellcheck disable=SC2046
target/release/xr32-lint $(cat "$KREG/units.txt")
echo "ci: kernel registry audit + lint gate ok ($(wc -l <"$KREG/units.txt") units)"

# Variant-generation gate: every accelerator level of every
# Generated-variant kernel must produce an xopt variant that passes the
# lint + golden admission gate and measures within 5% of (or better
# than) the hand-written variant. Non-zero exit on any rejection or
# slowdown. Run at two sizes: one where the blocked loop covers the
# whole operand, and one that exercises the scalar tail.
target/release/xopt_gate 32
target/release/xopt_gate 37
echo "ci: xopt variant-generation gate ok"

# Deprecation gate: nothing in the workspace (bins, benches, tests,
# examples) may introduce or use deprecated items — the legacy flow
# shims are gone and must stay gone.
RUSTFLAGS="-D deprecated" cargo check -q --workspace --all-targets
echo "ci: deprecation gate ok (workspace is deprecation-free)"

# Serving-layer gate: a job run through the xserve daemon must produce
# a byte-identical normalized report to the same JobSpec run directly
# in-process, cancellation must surface the stable 4004 code (and count
# in the scheduler stats), and concurrent clients hammering the cached
# kernel-cycle query path must all observe the same values.
cargo build --release -q --package xserve
target/release/xserve-gate
echo "ci: serving-layer gate ok (daemon == direct, cancellation typed, queries coherent)"

# Fault-smoke gate: a fixed-seed injection campaign must (a) satisfy its
# own detection/recovery contract (non-zero exit otherwise), and (b)
# produce byte-identical reports at 1 and 8 worker threads — fault
# streams are keyed by unit submission index, never by scheduling.
FAULT=$(mktemp -d /tmp/ci_fault.XXXXXX)
trap 'rm -f "$TRACE"; rm -rf "$DET" "$KREG" "$FAULT"' EXIT
WSP_THREADS=1 target/release/xr32-fault --json 4 2000 16 \
  | target/release/xr32-trace normalize-report - >"$FAULT/t1.json"
WSP_THREADS=8 target/release/xr32-fault --json 4 2000 16 \
  | target/release/xr32-trace normalize-report - >"$FAULT/t8.json"
if ! diff -u "$FAULT/t1.json" "$FAULT/t8.json"; then
  echo "ci: xr32-fault campaign differs between WSP_THREADS=1 and 8" >&2
  exit 1
fi
target/release/xr32-trace check-report - <"$FAULT/t1.json"
# Resilient flow: fig8 under an aggressive data-memory campaign must
# still complete and must report what it degraded.
DEGRADED=$(WSP_FAULTS="seed=5,rate=300000,sites=data" WSP_THREADS=4 \
  target/release/fig8_ssl --json 256)
target/release/xr32-trace check-report - <<<"$DEGRADED"
if ! grep -q '"degradations"' <<<"$DEGRADED"; then
  echo "ci: faulted fig8_ssl run reported no degradations" >&2
  exit 1
fi
echo "ci: fault smoke ok (campaign deterministic, fig8 degrades gracefully)"

# Dual-fidelity gates. Co-sim smoke: the pre-decoded fast path must be
# architecturally bit-identical to the cycle-accurate pipeline across
# the full kreg golden-verification workload. Speedup smoke: it must
# also beat the cycle-accurate engine by at least 3x wall clock, so a
# regression that silently de-optimizes the fast path (or routes it
# back through the pipeline) fails CI.
target/release/fastpath_gate 3
target/release/fastpath_gate --json 3 | target/release/xr32-trace check-report -
echo "ci: dual-fidelity gates ok (co-sim bit-identical, fast path >= 3x)"

# Core-model gate: the scoreboarded out-of-order pipeline must be
# ArchState-bit-identical to the in-order pipeline and the fast path
# across the full kreg golden workload, must win the aggregate cycle
# count, and its IPC must sit in the sanity window (above in-order, at
# most the issue width). A timing bug that leaks architectural state,
# loses the out-of-order win, or over-issues fails CI.
target/release/xooo_gate
echo "ci: core-model gate ok (three-engine co-sim bit-identical, OoO wins)"

# Bench-envelope regression gates. First the historical diff: the
# committed BENCH_10 envelope must not regress any deterministic metric
# against the committed BENCH_2 baseline beyond the documented 3%
# legacy drift (model/registry evolution across the intervening
# changes). Then the reproducibility diff: a freshly collected
# envelope must match the committed BENCH_10 *exactly* once normalized
# — any deterministic delta is a regression introduced by the working
# tree.
target/release/bench_diff --tol 3 BENCH_2.json BENCH_10.json >/dev/null
FRESH=$(mktemp /tmp/ci_bench.XXXXXX.json)
trap 'rm -f "$TRACE" "$FRESH"; rm -rf "$DET" "$KREG" "$FAULT"' EXIT
scripts/bench_report.sh "$FRESH" >/dev/null 2>&1
target/release/bench_diff BENCH_10.json "$FRESH"
echo "ci: bench envelope gates ok (BENCH_2 -> BENCH_10 within drift, fresh run exact)"
