#!/usr/bin/env bash
# Full local CI: build, tests, formatting, lints. Run from anywhere.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo test -q --workspace
cargo fmt --check
cargo clippy --workspace --all-targets -- -D warnings

# Observability smoke: trace a couple of base-AES blocks and assert the
# known kernel hot spots show up in the replayed attribution report.
cargo build --release -q --package bench
TRACE=$(mktemp /tmp/ci_aes.XXXXXX.xtrace)
trap 'rm -f "$TRACE"' EXIT
target/release/xr32-trace record aes "$TRACE" 2
SUMMARY=$(target/release/xr32-trace summary "$TRACE")
for hot in subshift mixcols addkey; do
  if ! grep -q "$hot" <<<"$SUMMARY"; then
    echo "ci: '$hot' missing from AES trace hot report" >&2
    exit 1
  fi
done

# Every bench binary's --json output must be a schema-valid run report.
target/release/table1_speedups --json 128 | target/release/xr32-trace check-report -
target/release/fig8_ssl --json 256 | target/release/xr32-trace check-report -
target/release/fig1_gap --json | target/release/xr32-trace check-report -
target/release/fig4_callgraph --json 8 | target/release/xr32-trace check-report -
target/release/fig5_adcurves --json 8 | target/release/xr32-trace check-report -
target/release/fig6_cartesian --json | target/release/xr32-trace check-report -
target/release/sec43_exploration --json 128 2 | target/release/xr32-trace check-report -
